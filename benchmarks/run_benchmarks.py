#!/usr/bin/env python
"""Run the substrate and end-to-end benchmarks and write ``BENCH_substrate.json``.

The file tracks the performance trajectory of the simulated external-memory
substrate across PRs.  Each invocation measures the current working tree and
stores the results under a label (``--label before`` / ``--label after`` for
an optimisation PR, or a PR number for longer series); when both ``before``
and ``after`` are present the script also records their speedup.

Wall-clock time is measured with a fresh machine per repetition and the best
(minimum) time is kept; the simulated I/O counters are recorded alongside so
that perf work can be checked against the model (the counters must not move
when only the data path changes).

Usage::

    python benchmarks/run_benchmarks.py --label after
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.model import MachineParams  # noqa: E402
from repro.core.cache_aware import cache_aware_randomized  # noqa: E402
from repro.core.emit import CountingSink  # noqa: E402
from repro.extmem.machine import Machine  # noqa: E402
from repro.extmem.stats import IOStats  # noqa: E402
from repro.graph.generators import erdos_renyi_gnm  # noqa: E402
from repro.graph.io import graph_to_file  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"


def _io_dict(stats: IOStats) -> dict[str, int]:
    return {"reads": stats.reads, "writes": stats.writes, "operations": stats.operations}


def bench_substrate_sort(num_records: int = 20_000, repeats: int = 5) -> dict:
    """External merge sort of random integers (mirrors ``bench_substrate.py``)."""
    data = [random.Random(0).randrange(10**6) for _ in range(num_records)]
    params = MachineParams(512, 16)
    times: list[float] = []
    stats = IOStats()
    for _ in range(repeats):
        machine = Machine(params, IOStats())
        file = machine.file_from_records(data)
        started = time.perf_counter()
        machine.sort(file)
        times.append(time.perf_counter() - started)
        stats = machine.stats
    return {
        "records": num_records,
        "machine": {"M": params.memory_words, "B": params.block_words},
        "wall_seconds": min(times),
        "io": _io_dict(stats),
    }


def bench_cache_aware(num_edges: int = 50_000, repeats: int = 3) -> dict:
    """End-to-end randomized cache-aware run on a seeded G(n, m) graph."""
    graph = erdos_renyi_gnm(15_000, num_edges, seed=7)
    params = MachineParams(2048, 32)
    times: list[float] = []
    stats = IOStats()
    triangles = 0
    for _ in range(repeats):
        machine = Machine(params, IOStats())
        edge_file, _order = graph_to_file(machine, graph)
        sink = CountingSink()
        started = time.perf_counter()
        cache_aware_randomized(machine, edge_file, sink, seed=0)
        times.append(time.perf_counter() - started)
        stats = machine.stats
        triangles = sink.count
    return {
        "edges": num_edges,
        "machine": {"M": params.memory_words, "B": params.block_words},
        "wall_seconds": min(times),
        "triangles": triangles,
        "io": _io_dict(stats),
    }


def run_all(num_edges: int, repeats: int) -> dict[str, dict]:
    return {
        "substrate_sort_20k": bench_substrate_sort(repeats=repeats),
        f"cache_aware_e{num_edges // 1000}k": bench_cache_aware(num_edges, repeats=repeats),
    }


def _speedups(runs: dict) -> dict[str, dict[str, float]]:
    """Wall-clock speedup of ``after`` over ``before`` per shared benchmark."""
    if "before" not in runs or "after" not in runs:
        return {}
    before = runs["before"]["benchmarks"]
    after = runs["after"]["benchmarks"]
    speedups: dict[str, dict[str, float]] = {}
    for name in sorted(set(before) & set(after)):
        b, a = before[name]["wall_seconds"], after[name]["wall_seconds"]
        if a > 0:
            speedups[name] = {
                "before_seconds": b,
                "after_seconds": a,
                "speedup": round(b / a, 2),
            }
    return speedups


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after", help="label for this run (e.g. before/after)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--edges", type=int, default=50_000, help="end-to-end edge count")
    parser.add_argument("--repeats", type=int, default=3, help="repetitions (best time kept)")
    args = parser.parse_args(argv)

    benchmarks = run_all(args.edges, args.repeats)

    data: dict = {}
    if args.output.exists():
        data = json.loads(args.output.read_text())
    runs = data.setdefault("runs", {})
    runs[args.label] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }
    data["speedup"] = _speedups(runs)
    args.output.write_text(json.dumps(data, indent=2) + "\n")

    print(f"[{args.label}] wrote {args.output}")
    for name, result in benchmarks.items():
        io = result["io"]
        print(
            f"  {name}: {result['wall_seconds'] * 1000:.1f} ms  "
            f"(reads={io['reads']}, writes={io['writes']}, operations={io['operations']})"
        )
    for name, entry in data["speedup"].items():
        print(f"  speedup {name}: {entry['speedup']}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
