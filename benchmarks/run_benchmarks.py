#!/usr/bin/env python
"""Run the substrate and end-to-end benchmarks and write ``BENCH_substrate.json``.

The file tracks the performance trajectory of the simulated external-memory
substrate across PRs.  Each invocation measures the current working tree and
stores the results under a label (``--label before`` / ``--label after`` for
an optimisation PR, or a PR number for longer series); when both ``before``
and ``after`` are present the script also records their speedup.

Wall-clock time is measured with a fresh machine per repetition and the best
(minimum) time is kept; the simulated I/O counters are recorded alongside so
that perf work can be checked against the model (the counters must not move
when only the data path changes).

Two additions support CI:

* ``--smoke`` shrinks the inputs so the whole run takes a few seconds.
* ``--check`` compares the measured simulated read/write/operation counters
  (and triangle counts) against the golden values pinned under ``"golden"``
  in ``BENCH_substrate.json`` and exits non-zero on any drift -- wall-clock
  time is deliberately *not* checked, only the deterministic counters.
  Re-pin after an intentional counter change with ``--pin-golden``.

Each benchmark result is also persisted as a ``repro-run/v1`` JSON artifact
in the experiment result store (``results/<spec_hash>.json``), the same
schema the experiment orchestrator uses.

Usage::

    python benchmarks/run_benchmarks.py --label after
    python benchmarks/run_benchmarks.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.model import MachineParams  # noqa: E402
from repro.core.api import enumerate_triangles  # noqa: E402
from repro.core.cache_aware import cache_aware_randomized  # noqa: E402
from repro.core.emit import CountingSink  # noqa: E402
from repro.core.engine import TriangleEngine  # noqa: E402
from repro.experiments.specs import make_spec  # noqa: E402
from repro.experiments.store import ResultStore, atomic_write_json  # noqa: E402
from repro.extmem.machine import Machine  # noqa: E402
from repro.extmem.stats import IOStats  # noqa: E402
from repro.graph.generators import erdos_renyi_gnm  # noqa: E402
from repro.graph.io import graph_to_file  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

#: Input sizes per mode; smoke is sized for a CI job, full for perf tracking.
#: ``shards``/``jobs`` configure the shard-scaling benchmark;
#: ``fastpath_edges`` the vectorized-backend benchmark (ISSUE 5 pins the
#: full-mode comparison at E=100k).
SIZES = {
    "full": {
        "records": 20_000,
        "edges": 50_000,
        "repeats": 3,
        "shards": 4,
        "jobs": 4,
        "fastpath_edges": 100_000,
    },
    "smoke": {
        "records": 2_000,
        "edges": 4_000,
        "repeats": 1,
        "shards": 2,
        "jobs": 2,
        "fastpath_edges": 8_000,
    },
}
#: Counters compared by ``--check`` (wall-clock time deliberately excluded).
CHECKED_FIELDS = ("reads", "writes", "operations")


def _io_dict(stats: IOStats) -> dict[str, int]:
    return {"reads": stats.reads, "writes": stats.writes, "operations": stats.operations}


def bench_substrate_sort(num_records: int, repeats: int) -> dict:
    """External merge sort of random integers (mirrors ``bench_substrate.py``)."""
    data = [random.Random(0).randrange(10**6) for _ in range(num_records)]
    params = MachineParams(512, 16)
    times: list[float] = []
    stats = IOStats()
    for _ in range(repeats):
        machine = Machine(params, IOStats())
        file = machine.file_from_records(data)
        started = time.perf_counter()
        machine.sort(file)
        times.append(time.perf_counter() - started)
        stats = machine.stats
    return {
        "records": num_records,
        "machine": {"M": params.memory_words, "B": params.block_words},
        "wall_seconds": min(times),
        "io": _io_dict(stats),
    }


def bench_cache_aware(num_edges: int, repeats: int) -> dict:
    """End-to-end randomized cache-aware run on a seeded G(n, m) graph."""
    graph = erdos_renyi_gnm(max(64, num_edges * 3 // 10), num_edges, seed=7)
    params = MachineParams(2048, 32)
    times: list[float] = []
    stats = IOStats()
    triangles = 0
    for _ in range(repeats):
        machine = Machine(params, IOStats())
        edge_file, _order = graph_to_file(machine, graph)
        sink = CountingSink()
        started = time.perf_counter()
        cache_aware_randomized(machine, edge_file, sink, seed=0)
        times.append(time.perf_counter() - started)
        stats = machine.stats
        triangles = sink.count
    return {
        "edges": num_edges,
        "machine": {"M": params.memory_words, "B": params.block_words},
        "wall_seconds": min(times),
        "triangles": triangles,
        "io": _io_dict(stats),
    }


#: Algorithms swept by the engine-reuse benchmark (the ``compare`` path).
_ENGINE_SWEEP = ("cache_aware", "hu_tao_chung", "dementiev")


def bench_engine_reuse(num_edges: int, repeats: int) -> dict:
    """Engine reuse vs per-run canonicalisation on the compare/sweep path.

    Runs the same three algorithms on one seeded graph twice per repetition:
    once through a shared :class:`TriangleEngine` (the graph is
    canonicalised once) and once through the one-shot
    ``enumerate_triangles`` wrapper (which re-canonicalises per call, the
    pre-engine behaviour of ``repro compare``).  The simulated counters of
    the engine path are pinned as golden; the reuse speedup tracks the
    wall-clock win of hoisting canonicalisation.
    """
    graph = erdos_renyi_gnm(max(64, num_edges * 3 // 10), num_edges, seed=7)
    params = MachineParams(2048, 32)
    reuse_times: list[float] = []
    one_shot_times: list[float] = []
    io = {"reads": 0, "writes": 0, "operations": 0}
    triangles = 0
    for _ in range(repeats):
        started = time.perf_counter()
        engine = TriangleEngine(graph, params=params)
        results = [engine.run(algorithm, seed=0) for algorithm in _ENGINE_SWEEP]
        reuse_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        for algorithm in _ENGINE_SWEEP:
            enumerate_triangles(graph, algorithm=algorithm, params=params, seed=0, collect=False)
        one_shot_times.append(time.perf_counter() - started)

        io = {
            "reads": sum(result.io.reads for result in results),
            "writes": sum(result.io.writes for result in results),
            "operations": sum(result.io.operations for result in results),
        }
        triangles = results[0].triangle_count
    reuse_best, one_shot_best = min(reuse_times), min(one_shot_times)
    return {
        "edges": num_edges,
        "algorithms": list(_ENGINE_SWEEP),
        "machine": {"M": params.memory_words, "B": params.block_words},
        "wall_seconds": reuse_best,
        "one_shot_seconds": one_shot_best,
        "reuse_speedup": round(one_shot_best / reuse_best, 2) if reuse_best > 0 else None,
        "triangles": triangles,
        "io": io,
    }


def bench_fastpath(num_edges: int, repeats: int) -> dict:
    """Vectorized in-memory backend versus the pure-Python oracle.

    Measured through the public engine API in its documented usage: one
    :class:`TriangleEngine` per graph, many count-only runs against it.
    Three legs per repetition (best time kept): ``in_memory`` (the
    reference oracle, which rebuilds its dict-of-sets adjacency every run),
    ``vector_count`` (the registered count-only adapter over the per-engine
    cached CSR) and ``vector_enum`` (full enumeration into a counting
    sink).  ``cold_count_seconds`` records the first ``vector_count`` run
    separately -- it pays the one-time array packing + CSR build that every
    later run of the same engine skips.

    No simulated machine is involved, so the ``io`` triple is identically
    zero and the pinned golden reduces to the triangle count; the quantity
    tracked across PRs is ``count_speedup``.  Falls back to the pure-Python
    path (speedup ~1x) when NumPy is not installed -- the counters stay
    identical either way.
    """
    from repro.fastpath import HAVE_NUMPY

    graph = erdos_renyi_gnm(max(64, num_edges * 3 // 10), num_edges, seed=7)
    edges = graph.degree_order().edges
    engine = TriangleEngine.from_canonical_edges(edges, validate=False)
    started = time.perf_counter()
    triangles = engine.count("vector_count")
    cold_seconds = time.perf_counter() - started
    oracle_times: list[float] = []
    count_times: list[float] = []
    enum_times: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        oracle = engine.count("in_memory")
        oracle_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        counted = engine.count("vector_count")
        count_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        enumerated = engine.count("vector_enum")
        enum_times.append(time.perf_counter() - started)
        assert counted == oracle == enumerated == triangles, "fastpath drifted from the oracle"
    oracle_best = min(oracle_times)
    count_best = min(count_times)
    enum_best = min(enum_times)
    return {
        "edges": num_edges,
        "backend": "numpy" if HAVE_NUMPY else "python",
        "machine": {"M": 0, "B": 0},  # in-memory: no simulated machine
        "wall_seconds": count_best,
        "oracle_seconds": oracle_best,
        "enum_seconds": enum_best,
        "cold_count_seconds": round(cold_seconds, 6),
        "count_speedup": round(oracle_best / count_best, 2) if count_best > 0 else None,
        "enum_speedup": round(oracle_best / enum_best, 2) if enum_best > 0 else None,
        "triangles": triangles,
        "io": {"reads": 0, "writes": 0, "operations": 0},
    }


def _lpt_makespan(durations: list[float], workers: int) -> float:
    """Longest-processing-time-first makespan of ``durations`` on ``workers``."""
    loads = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)


def bench_shard_scaling(num_edges: int, repeats: int, shards: int, jobs: int) -> dict:
    """Serial vs colour-sharded cache-aware run (same colouring, same counters).

    The serial leg runs ``cache_aware`` with ``num_colors=shards`` (the
    identical algorithm instance); the sharded legs distribute its colour
    triples over ``jobs`` workers.  Aggregated simulated counters are
    bit-identical by construction (``counters_match_serial`` asserts it), so
    only wall-clock moves.  The machine is the paper's regime of interest
    (``E >> M``: M=512, B=16, as in the substrate sort bench), where the
    triple-enumeration phase dominates the run.

    Four legs, best time kept: serial; sharded ``jobs=1`` (clean,
    uncontended per-shard wall times plus the counter-parity check);
    sharded ``jobs=N`` on a fresh spawn pool per run (``spawn_seconds``,
    the PR 4 execution tier); and sharded ``jobs=N`` on the *persistent*
    pool (``wall_seconds``, the headline leg) -- one untimed warm-up run
    pays worker startup and publishes the graph segment, then every timed
    repetition rides the warm workers and the deduplicated shared-memory
    segment.  ``speedup_vs_serial`` is the measured persistent ratio on
    this host, the number the CI shard-scaling job gates
    (``--gate-shard-speedup``).  A single-core container (see
    ``cpu_cores``) cannot beat serial with process parallelism, so
    ``projected_speedup`` gives a multi-core estimate built entirely from
    single-core measurements: serial time divided by (the serial remainder
    outside the triples phase + the ``jobs``-worker LPT makespan of the
    jobs=1 per-shard times).  No startup term: the warm pool has already
    paid it (``worker_startup_seconds`` and the full serialised
    ``pool_spawn_seconds`` are still reported for the spawn leg).
    """
    graph = erdos_renyi_gnm(max(64, num_edges * 3 // 10), num_edges, seed=7)
    params = MachineParams(512, 16)
    engine = TriangleEngine(graph, params=params)
    serial_times: list[float] = []
    inline_times: list[float] = []
    spawn_times: list[float] = []
    warm_times: list[float] = []
    io = {"reads": 0, "writes": 0, "operations": 0}
    triangles = 0
    counters_match = True
    shard_seconds: list[float] = []
    # Untimed warm-up: boots the persistent workers and publishes the edge
    # segment, so the timed persistent runs measure steady state.
    engine.run("cache_aware", seed=0, shards=shards, jobs=jobs, pool="persistent")
    for _ in range(repeats):
        started = time.perf_counter()
        serial = engine.run("cache_aware", seed=0, options={"num_colors": shards})
        serial_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        inline = engine.run("cache_aware", seed=0, shards=shards, jobs=1)
        inline_wall = time.perf_counter() - started

        started = time.perf_counter()
        spawned = engine.run("cache_aware", seed=0, shards=shards, jobs=jobs, pool="spawn")
        spawn_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        warm = engine.run("cache_aware", seed=0, shards=shards, jobs=jobs, pool="persistent")
        warm_times.append(time.perf_counter() - started)

        counters_match = counters_match and serial.io == inline.io == spawned.io == warm.io
        io = {
            "reads": warm.io.reads,
            "writes": warm.io.writes,
            "operations": warm.io.operations,
        }
        triangles = warm.triangle_count
        # Keep the shard timings of the *best* inline repetition, matching
        # the best-time-kept convention of every benchmark in this file.
        if not inline_times or inline_wall < min(inline_times):
            shard_seconds = list(inline.sharding.shard_seconds)
        inline_times.append(inline_wall)
    engine.close()  # unlink the published segments before the next benchmark
    serial_best, warm_best = min(serial_times), min(warm_times)
    spawn_best = min(spawn_times)
    pool_spawn = min(_pool_spawn_seconds(jobs) for _ in range(repeats))
    worker_startup = min(_pool_spawn_seconds(1) for _ in range(repeats))
    serial_remainder = max(serial_best - sum(shard_seconds), 0.0)
    projected_wall = serial_remainder + _lpt_makespan(shard_seconds, jobs)
    return {
        "edges": num_edges,
        "shards": shards,
        "jobs": jobs,
        "cpu_cores": _available_cores(),
        "machine": {"M": params.memory_words, "B": params.block_words},
        "wall_seconds": warm_best,
        "serial_seconds": serial_best,
        "sharded_inline_seconds": min(inline_times),
        "spawn_seconds": spawn_best,
        "speedup_vs_serial": round(serial_best / warm_best, 2) if warm_best > 0 else None,
        "spawn_speedup_vs_serial": (
            round(serial_best / spawn_best, 2) if spawn_best > 0 else None
        ),
        "projected_speedup": round(serial_best / projected_wall, 2) if projected_wall > 0 else None,
        "pool_spawn_seconds": round(pool_spawn, 3),
        "worker_startup_seconds": round(worker_startup, 3),
        "num_shards": len(shard_seconds),
        "counters_match_serial": counters_match,
        "triangles": triangles,
        "io": io,
    }


def _available_cores() -> int:
    """CPU cores available to this process (affinity-aware where supported)."""
    if hasattr(os, "sched_getaffinity"):  # Linux; absent on macOS/Windows
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _pool_spawn_seconds(jobs: int) -> float:
    """Measured cost of standing up (and tearing down) a spawn pool of ``jobs``."""
    import multiprocessing

    context = multiprocessing.get_context("spawn")
    started = time.perf_counter()
    with context.Pool(processes=jobs) as pool:
        pool.map(int, range(jobs))
    return time.perf_counter() - started


def run_all(
    num_records: int,
    num_edges: int,
    repeats: int,
    shards: int,
    jobs: int,
    fastpath_edges: int,
    only: str | None = None,
) -> dict[str, dict]:
    """Run the benchmarks (lazily), optionally filtered by name substring."""
    thunks: dict[str, Any] = {
        f"substrate_sort_{num_records // 1000}k": lambda: bench_substrate_sort(
            num_records, repeats
        ),
        f"cache_aware_e{num_edges // 1000}k": lambda: bench_cache_aware(num_edges, repeats),
        f"engine_reuse_e{num_edges // 5}": lambda: bench_engine_reuse(num_edges // 5, repeats),
        f"shard_scaling_e{num_edges // 1000}k": lambda: bench_shard_scaling(
            num_edges, repeats, shards, jobs
        ),
        f"fastpath_e{fastpath_edges // 1000}k": lambda: bench_fastpath(fastpath_edges, repeats),
    }
    selected = {name: thunk for name, thunk in thunks.items() if only is None or only in name}
    if not selected:
        raise SystemExit(f"--only {only!r} matches no benchmark; available: {', '.join(thunks)}")
    return {name: thunk() for name, thunk in selected.items()}


def _speedups(runs: dict) -> dict[str, dict[str, float]]:
    """Wall-clock speedup of ``after`` over ``before`` per shared benchmark."""
    if "before" not in runs or "after" not in runs:
        return {}
    before = runs["before"]["benchmarks"]
    after = runs["after"]["benchmarks"]
    speedups: dict[str, dict[str, float]] = {}
    for name in sorted(set(before) & set(after)):
        b, a = before[name]["wall_seconds"], after[name]["wall_seconds"]
        if a > 0:
            speedups[name] = {
                "before_seconds": b,
                "after_seconds": a,
                "speedup": round(b / a, 2),
            }
    return speedups


def _golden_entry(result: dict) -> dict:
    """The deterministic subset of a benchmark result worth pinning."""
    entry = {"io": dict(result["io"])}
    if "triangles" in result:
        entry["triangles"] = result["triangles"]
    return entry


def check_against_golden(benchmarks: dict[str, dict], golden: dict[str, dict]) -> list[str]:
    """Compare measured counters against pinned ones; returns drift messages."""
    problems: list[str] = []
    for name, result in benchmarks.items():
        if name not in golden:
            problems.append(f"{name}: no golden counters pinned")
            continue
        pinned = golden[name]
        for field in CHECKED_FIELDS:
            measured = result["io"][field]
            expected = pinned["io"].get(field)
            if measured != expected:
                problems.append(f"{name}: {field} drifted (golden {expected}, measured {measured})")
        if "triangles" in pinned and pinned["triangles"] != result.get("triangles"):
            problems.append(
                f"{name}: triangles drifted (golden {pinned['triangles']}, "
                f"measured {result.get('triangles')})"
            )
    return problems


def persist_artifacts(benchmarks: dict[str, dict], results_dir: str, mode: str) -> None:
    """Store each benchmark result as a ``repro-run/v1`` artifact."""
    store = ResultStore(results_dir)
    for name, result in benchmarks.items():
        spec = make_spec(
            "bench",
            name=name,
            mode=mode,
            machine=result["machine"],
            records=result.get("records"),
            edges=result.get("edges"),
        )
        store.put(spec, result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after", help="label for this run (e.g. before/after)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--edges", type=int, help="override the end-to-end edge count")
    parser.add_argument("--records", type=int, help="override the sort record count")
    parser.add_argument("--repeats", type=int, help="repetitions (best time kept)")
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized inputs (a few seconds total)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare counters against the pinned golden values and exit non-zero on drift "
        "(does not update the runs section)",
    )
    parser.add_argument(
        "--pin-golden",
        action="store_true",
        help="(re)pin the golden counters for this mode from the current measurement",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="experiment result store to mirror benchmark artifacts into ('' disables)",
    )
    parser.add_argument(
        "--only",
        help="run only benchmarks whose name contains this substring "
        "(e.g. --only fastpath); --pin-golden merges rather than replaces, "
        "so a filtered pin never drops other benchmarks' golden counters",
    )
    parser.add_argument(
        "--gate-shard-speedup",
        type=float,
        metavar="X",
        help="exit non-zero unless the shard-scaling benchmark's measured "
        "persistent-pool speedup_vs_serial is at least X (the CI "
        "shard-scaling job gates 1.3 on a 4-core runner); the results "
        "file is still written first so the artifact records the miss",
    )
    args = parser.parse_args(argv)
    if args.check and args.pin_golden:
        parser.error("--check and --pin-golden are mutually exclusive; pin first, then check")

    mode = "smoke" if args.smoke else "full"
    sizes = SIZES[mode]
    num_records = args.records if args.records is not None else sizes["records"]
    num_edges = args.edges if args.edges is not None else sizes["edges"]
    repeats = args.repeats if args.repeats is not None else sizes["repeats"]

    benchmarks = run_all(
        num_records,
        num_edges,
        repeats,
        sizes["shards"],
        sizes["jobs"],
        sizes["fastpath_edges"],
        only=args.only,
    )
    if args.results_dir:
        persist_artifacts(benchmarks, args.results_dir, mode)

    for name, result in benchmarks.items():
        io = result["io"]
        print(
            f"  {name}: {result['wall_seconds'] * 1000:.1f} ms  "
            f"(reads={io['reads']}, writes={io['writes']}, operations={io['operations']})"
        )

    data: dict = {}
    if args.output.exists():
        data = json.loads(args.output.read_text())

    if args.check:
        golden = data.get("golden", {}).get(mode, {})
        problems = check_against_golden(benchmarks, golden)
        if problems:
            for problem in problems:
                print(f"DRIFT {problem}", file=sys.stderr)
            print(
                f"counter regression against BENCH_substrate.json golden[{mode!r}]; "
                "if intentional, re-pin with --pin-golden",
                file=sys.stderr,
            )
            return 1
        print(f"counters match golden[{mode!r}] ({len(benchmarks)} benchmarks)")
        return 0

    if args.pin_golden:
        # Merge, not replace: a --only-filtered pin must never drop the
        # golden counters of benchmarks that did not run.
        data.setdefault("golden", {}).setdefault(mode, {}).update(
            {name: _golden_entry(result) for name, result in benchmarks.items()}
        )
    else:
        # Merge into an existing label (same semantics as --pin-golden): a
        # --only-filtered run must never drop the label's other recorded
        # benchmarks from the cross-PR trajectory.
        runs = data.setdefault("runs", {})
        entry = runs.setdefault(args.label, {"benchmarks": {}})
        entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        entry["python"] = platform.python_version()
        entry.setdefault("benchmarks", {}).update(benchmarks)
        data["speedup"] = _speedups(runs)
    atomic_write_json(args.output, data)

    print(f"[{'golden:' + mode if args.pin_golden else args.label}] wrote {args.output}")
    for name, entry in data.get("speedup", {}).items():
        print(f"  speedup {name}: {entry['speedup']}x")

    if args.gate_shard_speedup is not None:
        return _gate_shard_speedup(benchmarks, args.gate_shard_speedup)
    return 0


def _gate_shard_speedup(benchmarks: dict[str, dict], floor: float) -> int:
    """CI gate: the measured persistent-pool shard speedup must clear ``floor``."""
    scaling = {n: r for n, r in benchmarks.items() if n.startswith("shard_scaling")}
    if not scaling:
        print(
            "GATE --gate-shard-speedup given but no shard_scaling benchmark ran "
            "(check --only)",
            file=sys.stderr,
        )
        return 1
    status = 0
    for name, result in scaling.items():
        speedup = result.get("speedup_vs_serial")
        if not result.get("counters_match_serial"):
            print(f"GATE {name}: sharded counters diverged from serial", file=sys.stderr)
            status = 1
        elif speedup is None or speedup < floor:
            print(
                f"GATE {name}: persistent-pool speedup {speedup}x is below the "
                f"{floor}x floor (serial {result['serial_seconds']:.3f}s, "
                f"persistent {result['wall_seconds']:.3f}s, "
                f"{result['cpu_cores']} cores)",
                file=sys.stderr,
            )
            status = 1
        else:
            print(f"GATE {name}: {speedup}x >= {floor}x ({result['cpu_cores']} cores)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
