"""EXP1 benchmark: I/O versus E for every algorithm (the headline comparison)."""

from repro.experiments import exp_e_scaling


def test_exp1_e_scaling(run_experiment):
    table = run_experiment(exp_e_scaling)

    edge_counts = table.column("E")
    ours = table.column("cache_aware")
    hu_tao_chung = table.column("hu_tao_chung")

    # Shape check: Hu-Tao-Chung grows faster than our algorithm, so the
    # ratio ours/htc must shrink as E grows (the sqrt(E/M) separation).
    first_ratio = ours[0] / hu_tao_chung[0]
    last_ratio = ours[-1] / hu_tao_chung[-1]
    assert last_ratio < first_ratio

    # The cubic BNLJ baseline must be far worse than everything else at the
    # largest size it was run on.
    bnlj_values = [value for value in table.column("bnlj") if value != "-"]
    assert bnlj_values[-1] > 10 * ours[len(bnlj_values) - 1]

    assert edge_counts == sorted(edge_counts)
