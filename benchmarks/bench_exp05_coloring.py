"""EXP5 benchmark: colour-coding balance (Lemma 3 and the derandomization)."""

from repro.experiments import exp_coloring


def test_exp5_coloring(run_experiment):
    table = run_experiment(exp_coloring)

    # Lemma 3: the seed-averaged collision statistic stays at or below E*M
    # (value 1.0 in the table's normalised units), with a little slack for
    # the finite number of seeds.
    assert all(value <= 1.2 for value in table.column("mean X/EM (random)"))

    # Section 4: the deterministic colouring stays below e * E * M and the
    # greedy construction certified its potential at every level.
    assert all(value <= 2.72 for value in table.column("X/EM (deterministic)"))
    assert all(table.column("certified"))
