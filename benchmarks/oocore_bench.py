#!/usr/bin/env python
"""Benchmark the out-of-core backend: real bytes moved vs the simulated model.

Two sections, merged into ``BENCH_substrate.json`` under ``--label`` (same
merge semantics as ``run_benchmarks.py``):

``oocore_model_check``
    The cross-check the substrate exists for.  One canonical graph is run
    through the *simulated* ``cache_aware`` algorithm at a given ``(M, B)``
    -- whose I/O counters are block transfers of ``B`` words -- and through
    the *real* out-of-core backend at the matching chunk budget.  The real
    side's traffic is measured from ``/proc/self/io`` (``rchar``/``wchar``
    deltas: the backend's sequential passes use buffered ``fromfile`` /
    ``tofile`` precisely so their bytes are syscall-visible; memmaps are
    reserved for random-access structures).  Simulated block transfers are
    converted at 8 bytes/word so the two sit in one unit.  The numbers are
    *models of different machines* -- the point is recording both and the
    ratio, not equality.

``oocore_scale``
    The headline capability: an E >= 1M edge stream is canonicalised and
    counted in a **subprocess** (so the measurement starts from a cold
    interpreter), which reports wall time, ``/proc/self/io`` deltas, peak
    RSS (``VmHWM`` from ``/proc/self/status``) and spill volume.  With
    ``--rss-cap-mb`` the run becomes a gate: peak RSS must stay under the
    cap while the spill volume exceeds it (the graph genuinely did not fit
    the budget it was processed in).  With ``--parity`` the parent
    regenerates the identical stream and checks the subprocess count
    against the in-memory vectorized kernels bit-for-bit.

``--expect-unavailable`` inverts the whole harness for the no-NumPy CI
leg: exit 0 iff the backend raises ``FastPathUnavailableError`` cleanly.

Usage::

    python benchmarks/oocore_bench.py                   # full (E=1.5M)
    python benchmarks/oocore_bench.py --smoke           # CI-sized
    python benchmarks/oocore_bench.py --smoke --rss-cap-mb 220 --parity
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

#: Word size used to convert simulated block transfers into bytes: the
#: substrate's records are integers, stored int64 by the real backend.
WORD_BYTES = 8

#: Model-check machine: matches the CLI default (M=512, B=16 words).
MODEL_MACHINE = {"memory": 512, "block": 16}

SIZES = {
    "full": {"scale_edges": 1_500_000, "model_edges": 20_000},
    "smoke": {"scale_edges": 300_000, "model_edges": 4_000},
}

#: Vertex budget of the synthetic stream: E/4 keeps average degree ~8, so
#: the stream has real triangles and real duplicate edges to merge.
VERTEX_DIVISOR = 4

#: Generation batch: parent and worker must use the identical value or the
#: seeded streams (and therefore the parity check) diverge.
GEN_CHUNK = 65_536


def edge_chunk_stream(num_edges: int, num_vertices: int, seed: int):
    """Deterministic ``(k, 2)`` int64 chunks of a random multigraph stream.

    Self-loops are dropped at the source (the backend rejects them by
    contract); duplicates and reversed orientations stay in -- collapsing
    them is part of the work being measured.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    remaining = num_edges
    while remaining > 0:
        size = min(GEN_CHUNK, remaining)
        pairs = rng.integers(0, num_vertices, size=(size, 2), dtype=np.int64)
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        remaining -= size
        if pairs.shape[0]:
            yield pairs


def proc_io() -> dict[str, int]:
    """``/proc/self/io`` as a dict (zeroes where the file is unavailable)."""
    try:
        text = Path("/proc/self/io").read_text()
    except OSError:  # pragma: no cover - non-Linux
        return {}
    return {
        key: int(value)
        for key, _, value in (line.partition(": ") for line in text.splitlines())
        if value
    }


def peak_rss_bytes() -> int:
    """``VmHWM`` of this process in bytes (0 where unavailable)."""
    try:
        text = Path("/proc/self/status").read_text()
    except OSError:  # pragma: no cover - non-Linux
        return 0
    for line in text.splitlines():
        if line.startswith("VmHWM:"):
            return int(line.split()[1]) * 1024
    return 0


def run_worker(args: argparse.Namespace) -> int:
    """Subprocess body: build + count out-of-core, print one JSON line."""
    from repro.fastpath.oocore import build_store, count_triangles_store

    num_vertices = args.edges // VERTEX_DIVISOR
    io_before = proc_io()
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="oocore-bench-") as spill:
        stream = edge_chunk_stream(args.edges, num_vertices, args.seed)
        store = build_store(stream, spill_dir=spill, chunk_rows=args.chunk_rows)
        try:
            count = count_triangles_store(store)
            spill_bytes = store.spill_bytes
            unique_edges = store.num_edges
        finally:
            store.close()
    elapsed = time.perf_counter() - started
    io_after = proc_io()
    print(
        json.dumps(
            {
                "count": count,
                "unique_edges": unique_edges,
                "wall_seconds": round(elapsed, 4),
                "spill_bytes": spill_bytes,
                "peak_rss_bytes": peak_rss_bytes(),
                "io_bytes": {
                    key: io_after.get(key, 0) - io_before.get(key, 0)
                    for key in ("rchar", "wchar", "read_bytes", "write_bytes")
                },
            }
        )
    )
    return 0


def model_check(num_edges: int, chunk_rows: int) -> dict[str, Any]:
    """Simulated cache_aware vs measured oocore bytes on one canonical graph."""
    from repro.analysis.model import MachineParams
    from repro.core.engine import TriangleEngine
    from repro.fastpath.oocore import build_store, count_triangles_store
    from repro.experiments.workloads import sparse_random

    edges = sparse_random(num_edges, seed=13).edges
    params = MachineParams(MODEL_MACHINE["memory"], MODEL_MACHINE["block"])
    with TriangleEngine.from_canonical_edges(edges, params=params) as engine:
        simulated = engine.run("cache_aware", seed=0)
    simulated_bytes = simulated.io.total * MODEL_MACHINE["block"] * WORD_BYTES

    io_before = proc_io()
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="oocore-model-") as spill:
        with build_store(edges, spill_dir=spill, chunk_rows=chunk_rows) as store:
            measured_count = count_triangles_store(store)
            spill_bytes = store.spill_bytes
    elapsed = time.perf_counter() - started
    io_after = proc_io()
    measured_bytes = sum(
        io_after.get(key, 0) - io_before.get(key, 0) for key in ("rchar", "wchar")
    )
    assert measured_count == simulated.triangle_count, (
        f"oocore={measured_count} != simulated={simulated.triangle_count}"
    )
    return {
        "edges": num_edges,
        "machine": {"M": MODEL_MACHINE["memory"], "B": MODEL_MACHINE["block"]},
        "triangles": measured_count,
        "wall_seconds": round(elapsed, 4),
        "simulated": {
            "block_transfers": simulated.io.total,
            "reads": simulated.io.reads,
            "writes": simulated.io.writes,
            "bytes": simulated_bytes,
        },
        "measured": {
            "bytes": measured_bytes,
            "spill_bytes": spill_bytes,
        },
        "measured_over_simulated": (
            round(measured_bytes / simulated_bytes, 4) if simulated_bytes else None
        ),
        "io": {"reads": 0, "writes": 0, "operations": 0},  # real-I/O bench
    }


def scale_run(args: argparse.Namespace) -> tuple[dict[str, Any], list[str]]:
    """Launch the subprocess measurement; apply the RSS / spill / parity gates."""
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--worker",
        "--edges",
        str(args.edges),
        "--chunk-rows",
        str(args.chunk_rows),
        "--seed",
        str(args.seed),
    ]
    completed = subprocess.run(command, capture_output=True, text=True, timeout=1800)
    if completed.returncode != 0:
        raise RuntimeError(f"scale worker failed:\n{completed.stderr}")
    report = json.loads(completed.stdout.splitlines()[-1])
    report["edges"] = args.edges
    report["chunk_rows"] = args.chunk_rows
    report["io"] = {"reads": 0, "writes": 0, "operations": 0}  # real-I/O bench

    problems: list[str] = []
    if args.rss_cap_mb:
        cap_bytes = args.rss_cap_mb * 1024 * 1024
        report["rss_cap_mb"] = args.rss_cap_mb
        if report["peak_rss_bytes"] == 0:
            problems.append("GATE VmHWM unavailable on this platform; cannot enforce the cap")
        elif report["peak_rss_bytes"] > cap_bytes:
            problems.append(
                f"GATE peak RSS {report['peak_rss_bytes'] / 2**20:.1f} MiB "
                f"exceeds the {args.rss_cap_mb} MiB cap"
            )
        if report["spill_bytes"] <= cap_bytes:
            problems.append(
                f"GATE spill volume {report['spill_bytes'] / 2**20:.1f} MiB does not "
                f"exceed the {args.rss_cap_mb} MiB cap -- the graph fit in the budget, "
                "so the run proves nothing"
            )
    if args.parity:
        import numpy as np

        from repro.fastpath.arrays import canonicalize_edge_array
        from repro.fastpath.kernels import count_triangles_fast

        chunks = list(edge_chunk_stream(args.edges, args.edges // VERTEX_DIVISOR, args.seed))
        canonical = canonicalize_edge_array(np.concatenate(chunks))
        expected = count_triangles_fast(canonical.edges)
        report["parity_count"] = expected
        if expected != report["count"]:
            problems.append(
                f"GATE out-of-core count {report['count']} != in-memory count {expected}"
            )
    return report, problems


def expect_unavailable() -> int:
    """No-NumPy leg: the backend must fail with the typed error, nothing else."""
    from repro.exceptions import FastPathUnavailableError
    from repro.fastpath.oocore import build_store

    try:
        build_store([(0, 1), (0, 2), (1, 2)])
    except FastPathUnavailableError as error:
        print(f"ok: {error}")
        return 0
    except Exception as error:  # noqa: BLE001 - the wrong error is the failure
        print(f"FAIL: expected FastPathUnavailableError, got {type(error).__name__}: {error}")
        return 1
    print("FAIL: build_store succeeded; expected FastPathUnavailableError without NumPy")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--edges", type=int, default=None, help="scale-section edge count")
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--chunk-rows", type=int, default=1 << 16, help="rows per pass/window")
    parser.add_argument("--seed", type=int, default=7, help="stream seed")
    parser.add_argument(
        "--rss-cap-mb", type=int, default=None, help="gate: subprocess peak RSS cap (MiB)"
    )
    parser.add_argument(
        "--parity", action="store_true", help="gate: check the count against in-memory kernels"
    )
    parser.add_argument(
        "--expect-unavailable",
        action="store_true",
        help="no-NumPy leg: exit 0 iff the backend raises FastPathUnavailableError",
    )
    parser.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "--output",
        default=str(DEFAULT_OUTPUT),
        help="BENCH_substrate.json to merge oocore_* numbers into ('' disables)",
    )
    parser.add_argument("--label", default="oocore", help="runs[] label (default oocore)")
    args = parser.parse_args(argv)

    if args.expect_unavailable:
        return expect_unavailable()

    mode = "smoke" if args.smoke else "full"
    args.edges = args.edges or SIZES[mode]["scale_edges"]

    if args.worker:
        return run_worker(args)

    print(f"oocore bench [{mode}]: model check ({SIZES[mode]['model_edges']} edges)")
    model = model_check(SIZES[mode]["model_edges"], args.chunk_rows)
    print(
        f"  simulated {model['simulated']['block_transfers']} block transfers "
        f"(~{model['simulated']['bytes'] / 2**20:.1f} MiB) vs "
        f"measured {model['measured']['bytes'] / 2**20:.1f} MiB real traffic "
        f"(ratio {model['measured_over_simulated']})"
    )

    print(f"oocore bench [{mode}]: scale run ({args.edges} edges, subprocess)")
    scale, problems = scale_run(args)
    print(
        f"  {scale['unique_edges']} unique edges, {scale['count']} triangles "
        f"in {scale['wall_seconds']}s"
    )
    print(
        f"  peak RSS {scale['peak_rss_bytes'] / 2**20:.1f} MiB, "
        f"spill {scale['spill_bytes'] / 2**20:.1f} MiB, "
        f"read {scale['io_bytes'].get('rchar', 0) / 2**20:.1f} MiB, "
        f"wrote {scale['io_bytes'].get('wchar', 0) / 2**20:.1f} MiB"
    )
    if args.parity and not any(p.startswith("GATE out-of-core count") for p in problems):
        print(f"  parity: count matches in-memory kernels ({scale['parity_count']})")

    status = 0
    for problem in problems:
        print(problem, file=sys.stderr)
        status = 1
    if args.rss_cap_mb and not problems:
        print(
            f"  gate: RSS under the {args.rss_cap_mb} MiB cap, spill above it "
            "(the graph did not fit the budget it was processed in)"
        )

    if args.output:
        from repro.experiments.store import atomic_write_json

        output = Path(args.output)
        data: dict = {}
        if output.exists():
            data = json.loads(output.read_text())
        runs = data.setdefault("runs", {})
        entry = runs.setdefault(args.label, {"benchmarks": {}})
        entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        entry["python"] = platform.python_version()
        benchmarks = entry.setdefault("benchmarks", {})
        benchmarks[f"oocore_model_check_{mode}"] = model
        benchmarks[f"oocore_scale_{mode}"] = scale
        atomic_write_json(output, data)
        print(f"[{args.label}] merged oocore_model_check_{mode} + oocore_scale_{mode} into {output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
