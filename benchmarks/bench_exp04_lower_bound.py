"""EXP4 benchmark: optimality gap against the Theorem 3 lower bound on cliques."""

from repro.experiments import exp_lower_bound


def test_exp4_lower_bound(run_experiment):
    table = run_experiment(exp_lower_bound)

    ratios = table.column("ratio")
    # Never below the lower bound...
    assert all(ratio >= 1 for ratio in ratios)
    # ...and within a constant band across the sweep (tightness): the spread
    # between the best and worst ratio stays small even as t grows by ~10x.
    assert max(ratios) / min(ratios) < 3
