"""EXP7 benchmark: output sensitivity of the lower bound at comparable E."""

from repro.experiments import exp_output_sensitivity


def test_exp7_output_sensitivity(run_experiment):
    table = run_experiment(exp_output_sensitivity)

    triangles = table.column("t")
    ios = table.column("cache_aware I/O")
    ratios = [value for value in table.column("I/O / bound") if value != "-"]

    # The workloads span triangle-free to clique; the upper bound depends
    # only on E, so the measured I/Os stay within a small band...
    assert max(ios) / min(ios) < 3
    # ...while the gap to the output-sensitive lower bound shrinks
    # monotonically in t (comparing the extremes).
    assert ratios[-1] < ratios[0] / 10
    assert max(triangles) > 100 * max(1, min(t for t in triangles if t > 0))
