"""EXP11 benchmark: the k-clique extension (paper Section 6)."""

from repro.experiments import exp_kclique


def test_exp11_kclique(run_experiment):
    table = run_experiment(exp_kclique)

    rows = list(zip(table.column("E"), table.column("k"), table.column("I/Os")))
    by_k = {}
    for num_edges, k, ios in rows:
        by_k.setdefault(k, []).append((num_edges, ios))

    for k, series in by_k.items():
        series.sort()
        ios = [value for _, value in series]
        # I/Os grow with E but far more slowly than the naive E^k join.
        assert ios == sorted(ios)
        edge_growth = series[-1][0] / series[0][0]
        assert ios[-1] / ios[0] < edge_growth**3

    # 4-cliques are at least as expensive to find as triangles on the same input.
    for num_edges in set(table.column("E")):
        k3 = next(i for e, k, i in rows if e == num_edges and k == 3)
        k4 = next(i for e, k, i in rows if e == num_edges and k == 4)
        assert k4 >= k3
