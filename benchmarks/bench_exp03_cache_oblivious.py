"""EXP3 benchmark: the cache-oblivious algorithm under LRU cache simulation."""

from repro.experiments import exp_cache_oblivious


def test_exp3_cache_oblivious(run_experiment):
    e_table, m_table = run_experiment(exp_cache_oblivious)

    # E sweep: I/Os must grow strictly with E but far slower than quadratically
    # (the separation from the E^2/(MB) baseline is the whole point).
    ios = e_table.column("cache_oblivious")
    edges = e_table.column("E")
    assert ios == sorted(ios)
    growth = ios[-1] / ios[0]
    edge_growth = edges[-1] / edges[0]
    assert growth < edge_growth**2

    # M sweep: more cache never hurts, and the regularity-condition ratio
    # Q(M)/Q(2M) stays bounded by a small constant.
    m_ios = m_table.column("cache_oblivious")
    assert m_ios == sorted(m_ios, reverse=True)
    ratios = [value for value in m_table.column("Q(M)/Q(2M)") if value != "-"]
    assert all(ratio < 8 for ratio in ratios)
