"""EXP9 benchmark: work (RAM operations) versus E."""

from repro.experiments import exp_work


def test_exp9_work(run_experiment):
    table = run_experiment(exp_work)

    # The normalised work (operations / E^1.5) of the paper's cache-aware
    # algorithm stays within a small constant band across the sweep, i.e. its
    # work grows like E^{3/2} as claimed.
    normalised = [
        row_value
        for algorithm, row_value in zip(
            table.column("algorithm"), table.column("operations / E^1.5")
        )
        if algorithm == "cache_aware"
    ]
    assert max(normalised) / min(normalised) < 2.5
    assert all(value < 10 for value in normalised)
