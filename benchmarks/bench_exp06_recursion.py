"""EXP6 benchmark: subproblem-size decay in the cache-oblivious recursion."""

from repro.experiments import exp_recursion


def test_exp6_recursion(run_experiment):
    table = run_experiment(exp_recursion)

    means = table.column("mean size")
    # Lemma 4: the mean subproblem size decays strictly with depth, and from
    # level 2 onwards the per-level decay factor is well below 1/2.
    assert means == sorted(means, reverse=True)
    decays = [value for value in table.column("decay vs previous") if value != "-"]
    assert all(decay < 0.75 for decay in decays)
    assert all(decay < 0.5 for decay in decays[1:])
