"""EXP2 benchmark: I/O versus internal memory M (the sqrt(M) improvement factor)."""

from repro.experiments import exp_m_scaling


def test_exp2_m_scaling(run_experiment):
    table = run_experiment(exp_m_scaling)

    ours = table.column("cache_aware")
    hu_tao_chung = table.column("hu_tao_chung")

    # More memory never hurts either algorithm.
    assert ours == sorted(ours, reverse=True)
    assert hu_tao_chung == sorted(hu_tao_chung, reverse=True)

    # Hu-Tao-Chung benefits from memory about twice as fast (M^-1 vs M^-1/2):
    # going from the smallest to the largest M, its I/Os must shrink by a
    # larger factor than ours.
    ours_shrink = ours[0] / ours[-1]
    htc_shrink = hu_tao_chung[0] / hu_tao_chung[-1]
    assert htc_shrink > ours_shrink
