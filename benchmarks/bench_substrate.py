"""Micro-benchmarks of the external-memory substrate itself.

Not tied to a specific experiment; they keep an eye on the cost of the
simulator primitives (sorting and cache simulation) that every experiment
depends on, so substrate regressions are visible independently of the
algorithms.
"""

import random

from repro.analysis.model import MachineParams
from repro.extmem.co_sort import cache_oblivious_sort
from repro.extmem.machine import Machine
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats


def test_external_merge_sort_throughput(benchmark):
    data = [random.Random(0).randrange(10**6) for _ in range(20_000)]

    def run():
        machine = Machine(MachineParams(512, 16), IOStats())
        file = machine.file_from_records(data)
        machine.sort(file)
        return machine.stats.total

    total = benchmark(run)
    assert total > 0


def test_cache_oblivious_sort_throughput(benchmark):
    data = [random.Random(1).randrange(10**6) for _ in range(4_000)]

    def run():
        vm = ObliviousVM(MachineParams(512, 16), IOStats())
        vector = vm.input_vector(list(data))
        cache_oblivious_sort(vm, vector)
        return vm.stats.total

    total = benchmark(run)
    assert total > 0


def test_lru_cache_simulation_throughput(benchmark):
    vm = ObliviousVM(MachineParams(256, 16), IOStats())
    vector = vm.input_vector(range(50_000))

    def run():
        for index in range(0, 50_000, 7):
            vector.get(index)
        return vm.stats.reads

    reads = benchmark(run)
    assert reads > 0
