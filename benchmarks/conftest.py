"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one experiment of DESIGN.md Section 5 (the
paper's "tables and figures").  Wall-clock time is what pytest-benchmark
measures; the scientifically relevant output -- the result table with the
simulated I/O counts -- is attached to ``benchmark.extra_info`` so that
``--benchmark-json`` exports carry it.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Any

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment module once under pytest-benchmark and return its table(s)."""

    def runner(module: Any, quick: bool = True, **kwargs: Any):
        outcome = benchmark.pedantic(
            module.run, kwargs={"quick": quick, **kwargs}, rounds=1, iterations=1
        )
        tables = outcome if isinstance(outcome, list) else [outcome]
        benchmark.extra_info["experiment"] = module.EXPERIMENT_ID
        benchmark.extra_info["claim"] = module.CLAIM
        benchmark.extra_info["tables"] = [table.to_dict() for table in tables]
        return outcome

    return runner
