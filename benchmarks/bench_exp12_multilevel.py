"""EXP12 benchmark: per-level I/Os of one cache-oblivious run on a multilevel LRU hierarchy."""

from repro.experiments import exp_multilevel


def test_exp12_multilevel(run_experiment):
    table = run_experiment(exp_multilevel)

    # Every level of the multilevel replay must match its dedicated single-level run.
    assert all(table.column("match"))

    # Larger levels never see more I/Os (the LRU inclusion/stack property plus
    # the regularity of the algorithm).
    ios = table.column("I/Os (multilevel run)")
    memories = table.column("M (words)")
    ordered = [io for _, io in sorted(zip(memories, ios))]
    assert ordered == sorted(ordered, reverse=True)
