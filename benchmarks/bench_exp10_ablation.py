"""EXP10 benchmark: ablation of the high-degree phase on hub-heavy graphs."""

from repro.experiments import exp_ablation


def test_exp10_high_degree_ablation(run_experiment):
    table = run_experiment(exp_ablation)

    workloads = table.column("workload")
    full_phase = table.column("full algo colour-phase I/O")
    ablated_phase = table.column("ablated colour-phase I/O")
    full_x = table.column("full X/EM")
    ablated_x = table.column("ablated X/EM")

    # Correctness of the ablated variant is part of the experiment.
    assert all(table.column("triangles agree"))

    for name, full_io, ablated_io, fx, ax in zip(
        workloads, full_phase, ablated_phase, full_x, ablated_x
    ):
        if name.startswith("hub"):
            # On the hub workload, skipping the high-degree phase inflates
            # both the collision statistic and the colour-phase I/Os.
            assert ax > 1.5 * fx
            assert ablated_io > 1.5 * full_io
        else:
            # On a uniform random graph the phase is a no-op.
            assert abs(ax - fx) < 1e-9
