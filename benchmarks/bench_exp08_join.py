"""EXP8 benchmark: the 3-way cyclic join computed by triangle enumeration."""

from repro.experiments import exp_join


def test_exp8_triangle_join(run_experiment):
    table = run_experiment(exp_join)

    # The join computed via triangle enumeration matches the relational join.
    assert all(table.column("correct"))

    # The I/O-efficient enumeration beats the block-nested-loop join plan on
    # every instance, and the gap widens with the instance size.
    ours = table.column("cache_aware I/O")
    bnlj = table.column("bnlj I/O")
    gaps = [b / o for o, b in zip(ours, bnlj)]
    assert all(gap > 1 for gap in gaps)
    assert gaps[-1] > gaps[0]
