#!/usr/bin/env python
"""Concurrent load test for the triangle-analytics service (``repro serve``).

Many clients hammer one server with the paper's workload shape -- repeated
count/enum queries over registered graphs, mixed with idempotent graph
registrations and triangle-page fetches -- and the harness reports what
"heavy traffic" actually measures:

* throughput (requests/second across all clients),
* latency percentiles (p50/p90/p99/max, milliseconds),
* the cache-hit rate, and -- the load-bearing assertion -- that the
  measured phase re-executed **zero** jobs: every repeat query must be
  answered from the job memo / artifact store over the warm engine.
* bit-identical correctness: every count the service returned is compared
  against a direct in-process :class:`TriangleEngine` run of the same
  query (same triangles, same simulated I/O counters).

Results are merged into ``BENCH_substrate.json`` as ``service_*``
benchmarks under ``--label`` (same merge semantics as
``run_benchmarks.py``).  With ``--url`` the harness drives an external
server (the CI ``service-smoke`` job does this); without it, it starts an
in-process :class:`TriangleService` on a free port.

Usage::

    python benchmarks/load_test.py                  # self-hosted, full mix
    python benchmarks/load_test.py --quick --url http://127.0.0.1:8765 \
        --graph-file graph.txt --report report.json --output ''
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.core.registry import algorithm_specs
from repro.experiments.store import atomic_write_json
from repro.experiments.workloads import build_workload
from repro.graph.files import read_edge_list
from repro.service.client import ServiceClient

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

#: Machine configuration of every query in the mix (matches the CLI
#: defaults, so ``repro compare GRAPH`` reproduces the counts verbatim).
MACHINE = {"memory": 512, "block": 16, "seed": 0}

#: Workload the self-registered benchmark graph comes from.
SIZES = {
    "full": {"workload": ["sparse_random", {"num_edges": 1600, "seed": 11}]},
    "quick": {"workload": ["sparse_random", {"num_edges": 420, "seed": 11}]},
}


def machine_algorithms() -> list[str]:
    """The explicit-machine algorithms -- the shardable, comparable set."""
    return [spec.name for spec in algorithm_specs() if spec.substrate == "machine"]


def build_query_mix(quick: bool) -> list[dict[str, Any]]:
    """The distinct queries the clients repeat.

    Counts across every machine algorithm, one enumeration (exercises the
    stream/SSE path and triangle storage) and one sharded count on the
    persistent pool (exercises shared-memory segments, which the shutdown
    gate then checks for leaks).
    """
    algorithms = machine_algorithms()
    if quick:
        algorithms = algorithms[:2]
    mix: list[dict[str, Any]] = [
        {"mode": "count", "algorithm": algorithm, **MACHINE} for algorithm in algorithms
    ]
    mix.append({"mode": "enum", "algorithm": algorithms[0], **MACHINE})
    mix.append(
        {"mode": "count", "algorithm": algorithms[0], "shards": 2, "jobs": 2, **MACHINE}
    )
    return mix


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0 on empty input)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_clients(
    url: str,
    graph_id: str,
    mix: list[dict[str, Any]],
    workload: list,
    enum_job_id: str,
    num_clients: int,
    requests_per_client: int,
) -> tuple[list[float], list[str]]:
    """The measured phase: ``num_clients`` threads of mixed repeat traffic.

    Each client round-robins through its own rotation of the operation
    list (re-submit every query in the mix, re-register the graph, fetch a
    triangle page), so concurrent clients hit different endpoints at any
    instant.  Returns per-request latencies (seconds) and error strings.
    """
    operations: list[tuple[str, dict[str, Any]]] = [("submit", query) for query in mix]
    operations.append(("register", {}))
    operations.append(("page", {}))
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def client_loop(client_index: int) -> None:
        client = ServiceClient(url, timeout=60.0)
        local: list[float] = []
        for request_index in range(requests_per_client):
            kind, payload = operations[(client_index + request_index) % len(operations)]
            started = time.perf_counter()
            try:
                if kind == "submit":
                    response = client.submit(graph_id, **payload)
                    job = response["job"]
                    if job["state"] not in ("done", "failed"):
                        job = client.wait(job["id"], timeout=60.0)
                    if job["state"] != "done":
                        raise RuntimeError(f"job ended {job['state']}: {job.get('error')}")
                elif kind == "register":
                    client.register_graph(workload=workload)
                else:
                    client._request(
                        "GET", f"/v1/jobs/{enum_job_id}/triangles?limit=64"
                    )
            except Exception as error:  # collect, don't abort the fleet
                with lock:
                    errors.append(f"client {client_index} {kind}: {error}")
            local.append(time.perf_counter() - started)
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=client_loop, args=(index,), name=f"load-client-{index}")
        for index in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, errors


def verify_against_engine(
    graph, mix: list[dict[str, Any]], service_results: dict[str, dict[str, Any]]
) -> list[str]:
    """Re-run every count query in-process; service answers must match bit-for-bit."""
    problems: list[str] = []
    with TriangleEngine(graph) as engine:
        for query in mix:
            if query["mode"] != "count":
                continue
            key = json.dumps(query, sort_keys=True)
            served = service_results[key]
            result = engine.run(
                query["algorithm"],
                params=MachineParams(query["memory"], query["block"]),
                seed=query["seed"],
                shards=query.get("shards"),
                jobs=1,
            )
            expected = {
                "triangles": result.triangle_count,
                "total_ios": result.io.total,
                "reads": result.io.reads,
                "writes": result.io.writes,
            }
            measured = {field: served.get(field) for field in expected}
            if measured != expected:
                problems.append(f"{key}: service {measured} != engine {expected}")
    return problems


def count_file_graph(url: str, path: str) -> dict[str, dict[str, Any]]:
    """Register an edge-list file and count with every machine algorithm.

    The CI ``service-smoke`` job diffs this table against a direct
    ``repro compare`` run of the same file -- the same graph travelling
    through HTTP+JSON must produce the same triangles and counters as the
    serial CLI.
    """
    client = ServiceClient(url, timeout=60.0)
    graph = read_edge_list(path)
    graph_id = client.register_graph(edges=list(graph.edges()), name=Path(path).name)[
        "graph"
    ]["id"]
    table: dict[str, dict[str, Any]] = {}
    for algorithm in machine_algorithms():
        job = client.count(graph_id, algorithm=algorithm, **MACHINE)
        result = job["result"]
        table[algorithm] = {
            "triangles": result["triangles"],
            "total_ios": result["total_ios"],
            "reads": result["reads"],
            "writes": result["writes"],
        }
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None, help="server URL; default: self-host in-process")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients (default 8)")
    parser.add_argument(
        "--requests", type=int, default=None, help="requests per client (default 25; quick 10)"
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run (a few seconds)")
    parser.add_argument(
        "--graph-file",
        default=None,
        help="also register this edge-list file and report per-algorithm counts "
        "(CI diffs them against `repro compare`)",
    )
    parser.add_argument("--report", default=None, help="write the full JSON report here")
    parser.add_argument(
        "--output",
        default=str(DEFAULT_OUTPUT),
        help="BENCH_substrate.json to merge service_* numbers into ('' disables)",
    )
    parser.add_argument("--label", default="service", help="runs[] label (default service)")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    requests_per_client = args.requests or (10 if args.quick else 25)
    workload = SIZES[mode]["workload"]
    mix = build_query_mix(args.quick)

    service = None
    if args.url is None:
        # Self-hosted: an in-process server on a free port with a private
        # store, so the harness is one command with no external setup.
        from repro.experiments.store import ResultStore
        from repro.service.server import TriangleService

        store = ResultStore(Path(tempfile.mkdtemp(prefix="repro-load-")) / "results")
        service = TriangleService(port=0, store=store)
        service.start()
        url = service.url
    else:
        url = args.url.rstrip("/")

    try:
        client = ServiceClient(url, timeout=60.0)
        graph_id = client.register_graph(workload=workload, name=f"load-{mode}")["graph"]["id"]

        # Warm-up: execute each distinct query once.  Everything after this
        # must be a cache hit.
        service_results: dict[str, dict[str, Any]] = {}
        enum_job_id = ""
        for query in mix:
            response = client.submit(graph_id, **query)
            job = response["job"]
            if job["state"] != "done":
                job = client.wait(job["id"], timeout=120.0)
            service_results[json.dumps(query, sort_keys=True)] = job["result"]
            if query["mode"] == "enum":
                enum_job_id = job["id"]

        before = client.stats()["manager"]
        started = time.perf_counter()
        latencies, errors = run_clients(
            url, graph_id, mix, workload, enum_job_id, args.clients, requests_per_client
        )
        elapsed = time.perf_counter() - started
        after = client.stats()["manager"]

        executed_during_load = after["jobs_executed"] - before["jobs_executed"]
        total_requests = len(latencies)
        latencies.sort()
        result = {
            "mode": mode,
            "clients": args.clients,
            "requests_per_client": requests_per_client,
            "total_requests": total_requests,
            "wall_seconds": round(elapsed, 4),
            "throughput_rps": round(total_requests / elapsed, 1) if elapsed > 0 else None,
            "latency_ms": {
                "p50": round(percentile(latencies, 0.50) * 1000, 2),
                "p90": round(percentile(latencies, 0.90) * 1000, 2),
                "p99": round(percentile(latencies, 0.99) * 1000, 2),
                "max": round(percentile(latencies, 1.00) * 1000, 2),
            },
            "jobs_executed_during_load": executed_during_load,
            "cache_hit_rate": after["cache_hit_rate"],
            "cache_hits_memo": after["cache_hits_memo"],
            "cache_hits_store": after["cache_hits_store"],
            "distinct_queries": len(mix),
            "errors": len(errors),
            "io": {"reads": 0, "writes": 0, "operations": 0},  # service-level bench
        }

        # Correctness: every count the service returned must match a direct
        # engine run bit-for-bit.
        verification = verify_against_engine(build_workload(workload).graph, mix, service_results)

        report: dict[str, Any] = {"benchmark": result, "url": url}
        if args.graph_file:
            report["file_graph_counts"] = count_file_graph(url, args.graph_file)

        print(f"load test [{mode}]: {args.clients} clients x {requests_per_client} requests")
        print(
            f"  {total_requests} requests in {elapsed:.2f}s "
            f"({result['throughput_rps']} req/s)"
        )
        latency = result["latency_ms"]
        print(
            f"  latency ms: p50={latency['p50']} p90={latency['p90']} "
            f"p99={latency['p99']} max={latency['max']}"
        )
        print(
            f"  cache: hit_rate={result['cache_hit_rate']} "
            f"(memo={result['cache_hits_memo']}, store={result['cache_hits_store']})"
        )
        print(f"  jobs executed during measured phase: {executed_during_load}")

        status = 0
        for message in errors[:5]:
            print(f"ERROR {message}", file=sys.stderr)
            status = 1
        if executed_during_load != 0:
            print(
                f"GATE repeat queries re-executed {executed_during_load} jobs "
                "(expected 0: all traffic must be served from the cache)",
                file=sys.stderr,
            )
            status = 1
        else:
            print("  gate: 0 re-executions (warm cache served everything)")
        for problem in verification:
            print(f"MISMATCH {problem}", file=sys.stderr)
            status = 1
        if not verification:
            print("  verification: service counts bit-identical to direct engine runs")

        if args.report:
            atomic_write_json(Path(args.report), report)
        if args.output:
            output = Path(args.output)
            data: dict = {}
            if output.exists():
                data = json.loads(output.read_text())
            runs = data.setdefault("runs", {})
            entry = runs.setdefault(args.label, {"benchmarks": {}})
            entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
            entry["python"] = platform.python_version()
            entry.setdefault("benchmarks", {})[f"service_load_{mode}"] = result
            atomic_write_json(output, data)
            print(f"[{args.label}] merged service_load_{mode} into {output}")
        return status
    finally:
        if service is not None:
            service.close()
            from repro.poolexec.pool import shared_pool

            shared_pool().shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
