"""EXP8 -- the database motivation: a 3-way cyclic join as triangle enumeration.

Claim (Section 1): reconstructing a 5NF-decomposed ``Sells`` relation is a
triangle-enumeration instance on the union of three bipartite graphs, and an
I/O-efficient enumeration algorithm beats the pipelined block-nested-loop
join plan that a naive query processor would use (the paper notes BNLJ is
only competitive when the edge set almost fits in memory).
"""

from __future__ import annotations

from repro.analysis.model import MachineParams
from repro.experiments.tables import Table
from repro.experiments.workloads import join_instance
from repro.joins.fifth_normal_form import reconstruct_by_joins
from repro.joins.relation import Relation
from repro.joins.triangle_join import triangle_join

EXPERIMENT_ID = "EXP8"
TITLE = "3-way cyclic join: triangle enumeration versus nested-loop join plan"
CLAIM = "Triangle-join via the cache-aware algorithm needs far fewer I/Os than the BNLJ plan"

PARAMS = MachineParams(memory_words=128, block_words=16)
QUICK_PART_SIZES = (12, 20)
FULL_PART_SIZES = (12, 20, 32, 48)
PAIR_PROBABILITY = 0.35


def _relations(instance) -> tuple[Relation, Relation, Relation]:
    sb = Relation("SB", ("salesperson", "brand"), instance.sells_pairs)
    bt = Relation("BT", ("brand", "productType"), instance.brand_type_pairs)
    st = Relation("ST", ("salesperson", "productType"), instance.sells_types)
    return sb, bt, st


def run(quick: bool = True) -> Table:
    """Run the join comparison and return the result table."""
    part_sizes = QUICK_PART_SIZES if quick else FULL_PART_SIZES
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "domain size",
            "edges",
            "join tuples",
            "cache_aware I/O",
            "hu_tao_chung I/O",
            "bnlj I/O",
            "correct",
        ),
    )
    for part in part_sizes:
        instance = join_instance(part, pair_probability=PAIR_PROBABILITY)
        sb, bt, st = _relations(instance)
        expected = reconstruct_by_joins(sb, bt, st)

        ours_relation, ours = triangle_join(sb, bt, st, algorithm="cache_aware", params=PARAMS)
        _, htc = triangle_join(sb, bt, st, algorithm="hu_tao_chung", params=PARAMS)
        _, bnlj = triangle_join(sb, bt, st, algorithm="bnlj", params=PARAMS)

        table.add_row(
            part,
            ours.num_edges,
            len(ours_relation),
            ours.io.total,
            htc.io.total,
            bnlj.io.total,
            ours_relation.rows() == expected.rows(),
        )
    table.add_note(
        "'correct' checks the triangle-join output against the relational natural join "
        "SB ⋈ BT ⋈ ST computed in memory"
    )
    table.add_note(f"machine: M={PARAMS.memory_words}, B={PARAMS.block_words}")
    return table
