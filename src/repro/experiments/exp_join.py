"""EXP8 -- the database motivation: a 3-way cyclic join as triangle enumeration.

Claim (Section 1): reconstructing a 5NF-decomposed ``Sells`` relation is a
triangle-enumeration instance on the union of three bipartite graphs, and an
I/O-efficient enumeration algorithm beats the pipelined block-nested-loop
join plan that a naive query processor would use (the paper notes BNLJ is
only competitive when the edge set almost fits in memory).
"""

from __future__ import annotations

from repro.analysis.model import MachineParams
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP8"
TITLE = "3-way cyclic join: triangle enumeration versus nested-loop join plan"
CLAIM = "Triangle-join via the cache-aware algorithm needs far fewer I/Os than the BNLJ plan"

PARAMS = MachineParams(memory_words=128, block_words=16)
QUICK_PART_SIZES = (12, 20)
FULL_PART_SIZES = (12, 20, 32, 48)
PAIR_PROBABILITY = 0.35


def _cells(quick: bool) -> list[tuple[int, dict[str, RunSpec]]]:
    part_sizes = QUICK_PART_SIZES if quick else FULL_PART_SIZES
    cells: list[tuple[int, dict[str, RunSpec]]] = []
    for part in part_sizes:
        cell = {
            algorithm: make_spec(
                "join",
                part=part,
                pair_probability=PAIR_PROBABILITY,
                algorithm=algorithm,
                memory=PARAMS.memory_words,
                block=PARAMS.block_words,
                seed=0,
                check=(algorithm == "cache_aware"),
            )
            for algorithm in ("cache_aware", "hu_tao_chung", "bnlj")
        }
        cells.append((part, cell))
    return cells


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [spec for _, cell in _cells(quick) for spec in cell.values()]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "domain size",
            "edges",
            "join tuples",
            "cache_aware I/O",
            "hu_tao_chung I/O",
            "bnlj I/O",
            "correct",
        ),
    )
    for part, cell in _cells(quick):
        ours = results[cell["cache_aware"]]
        htc = results[cell["hu_tao_chung"]]
        bnlj = results[cell["bnlj"]]
        table.add_row(
            part,
            ours["num_edges"],
            ours["join_tuples"],
            ours["total_ios"],
            htc["total_ios"],
            bnlj["total_ios"],
            ours["correct"],
        )
    table.add_note(
        "'correct' checks the triangle-join output against the relational natural join "
        "SB ⋈ BT ⋈ ST computed in memory"
    )
    table.add_note(f"machine: M={PARAMS.memory_words}, B={PARAMS.block_words}")
    return table


def run(quick: bool = True) -> Table:
    """Run the join comparison serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
