"""Command-line entry point running every experiment and printing its table.

Usage::

    python -m repro.experiments.run_all             # full-size experiments
    python -m repro.experiments.run_all --quick     # smaller, faster sweeps
    python -m repro.experiments.run_all EXP1 EXP4   # a subset
    python -m repro.experiments.run_all --output results.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, Sequence

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.tables import Table


def run_experiments(
    experiment_ids: Iterable[str] | None = None, quick: bool = True
) -> list[Table]:
    """Run the selected experiments (all by default) and return their tables."""
    selected = list(experiment_ids) if experiment_ids else list(EXPERIMENTS)
    tables: list[Table] = []
    for experiment_id in selected:
        module = get_experiment(experiment_id)
        outcome = module.run(quick=quick)
        if isinstance(outcome, Table):
            tables.append(outcome)
        else:
            tables.extend(outcome)
    return tables


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the quantitative claims of Pagh & Silvestri (PODS 2014).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all); see DESIGN.md section 5",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run reduced-size sweeps (a few seconds per experiment)",
    )
    parser.add_argument(
        "--output",
        help="also write the rendered tables to this file",
    )
    arguments = parser.parse_args(argv)

    started = time.perf_counter()
    tables = run_experiments(arguments.experiments or None, quick=arguments.quick)
    elapsed = time.perf_counter() - started

    rendered = "\n\n".join(table.render() for table in tables)
    footer = f"\n\n({len(tables)} tables in {elapsed:.1f}s, quick={arguments.quick})"
    print(rendered + footer)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + footer + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
