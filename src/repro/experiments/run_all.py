"""Command-line entry point orchestrating every experiment.

Each experiment expands into a flat list of independent
:class:`~repro.experiments.specs.RunSpec` cells; the cells of *all* selected
experiments are deduplicated and executed together -- serially or across a
``multiprocessing`` pool (``--jobs N``) -- with every result persisted as a
JSON artifact in a content-addressed store (``results/<spec_hash>.json``).
Tables are then re-rendered from the stored artifacts, so a re-run resumes
from completed cells and does zero new work when nothing changed.

Usage::

    python -m repro.experiments.run_all                  # full-size experiments
    python -m repro.experiments.run_all --quick          # smaller, faster sweeps
    python -m repro.experiments.run_all --quick --jobs 4 # parallel workers
    python -m repro.experiments.run_all EXP1 EXP4        # a subset
    python -m repro.experiments.run_all --output results.txt
    python -m repro.experiments.run_all --results-dir results  # artifact store

Besides the rendered tables, a machine-readable summary is written to
``<results-dir>/results.json`` (override with ``--json``).
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.experiments.parallel import ParallelRunner, dedupe_specs
from repro.poolexec import POOL_MODES
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.specs import RunSpec
from repro.experiments.store import (
    DEFAULT_RESULTS_DIR,
    ResultStore,
    atomic_write_json,
    atomic_write_text,
)
from repro.experiments.tables import Table

SUMMARY_SCHEMA = "repro-results/v1"


@dataclass
class ExperimentFailure:
    """One experiment that raised during spec expansion or tabulation."""

    experiment_id: str
    stage: str
    error: str


@dataclass
class RunReport:
    """Everything one orchestrated suite run produced."""

    tables: list[Table] = field(default_factory=list)
    failures: list[ExperimentFailure] = field(default_factory=list)
    total_cells: int = 0
    executed: int = 0
    cached: int = 0
    failed_cells: int = 0
    retried_cells: int = 0
    quick: bool = True
    jobs: int = 1
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures and self.failed_cells == 0

    def render_tables(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)

    def footer(self) -> str:
        extra = ""
        if self.retried_cells:
            extra += f", {self.retried_cells} retried"
        if self.failed_cells:
            extra += f", {self.failed_cells} FAILED"
        return (
            f"({len(self.tables)} tables in {self.elapsed_seconds:.1f}s, "
            f"quick={self.quick}, jobs={self.jobs}; "
            f"cells: {self.total_cells} total, {self.executed} executed, "
            f"{self.cached} cached{extra})"
        )

    def summary_dict(self) -> dict:
        """The ``results.json`` payload."""
        return {
            "schema": SUMMARY_SCHEMA,
            "quick": self.quick,
            "jobs": self.jobs,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "cells": {
                "total": self.total_cells,
                "executed": self.executed,
                "cached": self.cached,
                "failed": self.failed_cells,
                "retried": self.retried_cells,
            },
            "experiments": {},
            "tables": [table.to_dict() for table in self.tables],
            "failures": [
                {"experiment_id": f.experiment_id, "stage": f.stage, "error": f.error}
                for f in self.failures
            ],
        }


def run_experiments(
    experiment_ids: Iterable[str] | None = None,
    quick: bool = True,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
    task_timeout: float | None = None,
    max_retries: int = 2,
    pool: str = "persistent",
) -> RunReport:
    """Orchestrate the selected experiments (all by default).

    A failing experiment is recorded in ``report.failures`` instead of
    aborting the suite; cells belonging only to failed experiments are
    simply not tabulated.  Cell execution runs through the supervised tier:
    a cell whose worker dies, hangs past ``task_timeout``, or raises is
    retried up to ``max_retries`` times, and a cell that still fails is
    reported (``report.failed_cells``, a failure record in the store)
    without aborting its siblings -- every completed cell is persisted.
    """
    started = time.perf_counter()
    selected = list(experiment_ids) if experiment_ids else list(EXPERIMENTS)
    report = RunReport(quick=quick, jobs=jobs)

    modules = {}
    spec_lists: dict[str, list[RunSpec]] = {}
    for experiment_id in selected:
        module = get_experiment(experiment_id)
        modules[experiment_id] = module
        try:
            spec_lists[experiment_id] = list(module.specs(quick=quick))
        except Exception:
            report.failures.append(
                ExperimentFailure(module.EXPERIMENT_ID, "specs", traceback.format_exc())
            )

    flat = [spec for specs in spec_lists.values() for spec in specs]
    report.total_cells = len(dedupe_specs(flat))
    runner = ParallelRunner(
        store=store,
        jobs=jobs,
        progress=progress,
        task_timeout=task_timeout,
        max_retries=max_retries,
        pool=pool,
    )
    results = runner.run(flat)
    report.executed = results.executed
    report.cached = results.cached
    report.failed_cells = len(results.errors)
    report.retried_cells = results.retried

    for experiment_id, module in modules.items():
        if experiment_id not in spec_lists:
            continue
        try:
            outcome = module.tabulate(results, quick=quick)
        except Exception:
            report.failures.append(
                ExperimentFailure(module.EXPERIMENT_ID, "tabulate", traceback.format_exc())
            )
            continue
        if isinstance(outcome, Table):
            report.tables.append(outcome)
        else:
            report.tables.extend(outcome)

    report.elapsed_seconds = time.perf_counter() - started
    return report


def write_summary(report: RunReport, path: str | Path) -> None:
    """Write the machine-readable ``results.json`` summary (atomically).

    Downstream tabulation and CI trust this file, so it is written with the
    same temp-file + ``os.replace`` discipline as the artifact store: a
    crash mid-write leaves the previous summary intact, never a torn one.
    """
    summary = report.summary_dict()
    by_experiment: dict[str, list[dict]] = {}
    for table in summary.pop("tables"):
        by_experiment.setdefault(table["experiment_id"], []).append(table)
    summary["experiments"] = by_experiment
    atomic_write_json(path, summary)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (non-zero on failure)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the quantitative claims of Pagh & Silvestri (PODS 2014).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all); see DESIGN.md section 5",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run reduced-size sweeps (a few seconds per experiment)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent cells (default 1 = serial)",
    )
    parser.add_argument(
        "--pool",
        choices=POOL_MODES,
        default="persistent",
        help="worker-pool strategy for --jobs > 1: 'persistent' reuses one "
        "warm process-wide pool across runs, 'spawn' starts a fresh pool "
        "per run (default persistent)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry a cell whose worker runs longer than this "
        "(default: no timeout; only enforced with --jobs > 1)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per cell for crashed, hung or failing workers (default 2)",
    )
    parser.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help=f"artifact store directory (default {DEFAULT_RESULTS_DIR!r})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="do not read or write the artifact store (always re-execute)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="where to write the results.json summary (default <results-dir>/results.json)",
    )
    parser.add_argument(
        "--output",
        help="also write the rendered tables to this file",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="print per-cell progress to stderr",
    )
    arguments = parser.parse_args(argv)
    if arguments.jobs < 1:
        parser.error(f"--jobs must be at least 1, got {arguments.jobs}")
    if arguments.task_timeout is not None and arguments.task_timeout <= 0:
        parser.error(f"--task-timeout must be positive, got {arguments.task_timeout}")
    if arguments.max_retries < 0:
        parser.error(f"--max-retries must be >= 0, got {arguments.max_retries}")

    store = None if arguments.no_store else ResultStore(arguments.results_dir)
    progress = (lambda message: print(message, file=sys.stderr)) if arguments.verbose else None

    try:
        report = run_experiments(
            arguments.experiments or None,
            quick=arguments.quick,
            jobs=arguments.jobs,
            store=store,
            progress=progress,
            task_timeout=arguments.task_timeout,
            max_retries=arguments.max_retries,
            pool=arguments.pool,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    rendered = report.render_tables()
    print(rendered + "\n\n" + report.footer())
    if arguments.output:
        atomic_write_text(arguments.output, rendered + "\n\n" + report.footer() + "\n")

    summary_path = arguments.json
    if summary_path is None and store is not None:
        summary_path = Path(arguments.results_dir) / "results.json"
    if summary_path is not None:
        write_summary(report, summary_path)

    for failure in report.failures:
        print(
            f"error: experiment {failure.experiment_id} failed during {failure.stage}:\n"
            f"{failure.error}",
            file=sys.stderr,
        )
    if report.failed_cells:
        print(
            f"error: {report.failed_cells} cells failed after retries; "
            "failure records persisted -- a re-run retries only those cells",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
