"""EXP10 -- ablation: the role of the high-degree phase (Section 2, step 1).

The cache-aware algorithm first strips vertices of degree above
``sqrt(E*M)`` with the Lemma 1 subroutine.  Without that step the colour
classes containing a hub's edges become enormous, the collision statistic
``X_xi`` blows up past the ``E*M`` budget of Lemma 3, and step 3 pays for it
in I/Os.  The ablation runs the colour-partition machinery directly on the
full edge set of a hub-heavy graph and compares it with the full algorithm.
"""

from __future__ import annotations

from repro.analysis.bounds import colour_count, expected_colour_collisions
from repro.analysis.model import MachineParams
from repro.core.cache_aware import enumerate_colored_triples, partition_by_coloring
from repro.core.emit import CountingSink
from repro.experiments.runner import run_on_edges
from repro.experiments.tables import Table
from repro.experiments.workloads import hub, sparse_random
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.io import edges_to_file
from repro.hashing.coloring import RandomColoring

EXPERIMENT_ID = "EXP10"
TITLE = "Ablation: colour partitioning with and without the high-degree phase"
CLAIM = "Skipping the sqrt(E*M) high-degree phase inflates X_xi and step-3 I/Os on skewed graphs"

PARAMS = MachineParams(memory_words=64, block_words=16)
QUICK_EDGES = 1024
FULL_EDGES = 3072


def _without_high_degree_phase(edges, seed: int) -> tuple[int, int, int]:
    """Partition + triple enumeration on the *full* edge set (no step 1)."""
    machine = Machine(PARAMS, IOStats())
    edge_file = edges_to_file(machine, edges)
    colours = max(1, colour_count(len(edges), PARAMS.memory_words))
    coloring = RandomColoring(colours, seed=seed) if colours > 1 else RandomColoring(2, seed=seed)
    partitioned, slices, sizes = partition_by_coloring(machine, edge_file, coloring)
    sink = CountingSink()
    enumerate_colored_triples(machine, slices, coloring, sink)
    partitioned.delete()
    x_xi = sum(size * (size - 1) // 2 for size in sizes.values())
    return machine.stats.total, x_xi, sink.count


def run(quick: bool = True) -> Table:
    """Run the ablation on a skewed and a non-skewed workload."""
    edge_target = QUICK_EDGES if quick else FULL_EDGES
    workloads = [hub(edge_target), sparse_random(edge_target)]
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "workload",
            "E",
            "full algo colour-phase I/O",
            "ablated colour-phase I/O",
            "full total I/O",
            "full X/EM",
            "ablated X/EM",
            "triangles agree",
        ),
    )
    for workload in workloads:
        full = run_on_edges(workload.edges, "cache_aware", PARAMS, seed=10)
        colour_phase = (full.phases or {}).get("partition", 0) + (full.phases or {}).get(
            "triples", 0
        )
        ablated_io, ablated_x, ablated_triangles = _without_high_degree_phase(
            workload.edges, seed=10
        )
        budget = expected_colour_collisions(workload.num_edges, PARAMS.memory_words)
        table.add_row(
            workload.name,
            workload.num_edges,
            colour_phase,
            ablated_io,
            full.total_ios,
            full.report.x_xi / budget,
            ablated_x / budget,
            ablated_triangles == full.triangles,
        )
    table.add_note(
        "the ablated variant is still correct (it enumerates the same triangles), but on the "
        "hub workload its collision statistic X_xi and the colour-phase I/Os degrade, which is "
        "why the paper strips vertices of degree > sqrt(E*M) first; the full algorithm pays a "
        "fixed sort(E) cost per high-degree vertex (included in 'full total I/O')"
    )
    return table
