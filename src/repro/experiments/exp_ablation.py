"""EXP10 -- ablation: the role of the high-degree phase (Section 2, step 1).

The cache-aware algorithm first strips vertices of degree above
``sqrt(E*M)`` with the Lemma 1 subroutine.  Without that step the colour
classes containing a hub's edges become enormous, the collision statistic
``X_xi`` blows up past the ``E*M`` budget of Lemma 3, and step 3 pays for it
in I/Os.  The ablation runs the colour-partition machinery directly on the
full edge set of a hub-heavy graph and compares it with the full algorithm
(see the ``colour_ablation`` task in :mod:`repro.experiments.tasks`).
"""

from __future__ import annotations

from repro.analysis.bounds import expected_colour_collisions
from repro.analysis.model import MachineParams
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP10"
TITLE = "Ablation: colour partitioning with and without the high-degree phase"
CLAIM = "Skipping the sqrt(E*M) high-degree phase inflates X_xi and step-3 I/Os on skewed graphs"

PARAMS = MachineParams(memory_words=64, block_words=16)
QUICK_EDGES = 1024
FULL_EDGES = 3072
WORKLOAD_FAMILIES = ("hub", "sparse_random")


def _cells(quick: bool) -> list[tuple[str, dict[str, RunSpec]]]:
    edge_target = QUICK_EDGES if quick else FULL_EDGES
    cells: list[tuple[str, dict[str, RunSpec]]] = []
    for family in WORKLOAD_FAMILIES:
        reference = workload_ref(family, num_edges=edge_target)
        cells.append(
            (
                family,
                {
                    "full": make_spec(
                        "edges",
                        workload=reference,
                        algorithm="cache_aware",
                        memory=PARAMS.memory_words,
                        block=PARAMS.block_words,
                        seed=10,
                    ),
                    "ablated": make_spec(
                        "colour_ablation",
                        workload=reference,
                        memory=PARAMS.memory_words,
                        block=PARAMS.block_words,
                        seed=10,
                    ),
                },
            )
        )
    return cells


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [spec for _, cell in _cells(quick) for spec in cell.values()]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "workload",
            "E",
            "full algo colour-phase I/O",
            "ablated colour-phase I/O",
            "full total I/O",
            "full X/EM",
            "ablated X/EM",
            "triangles agree",
        ),
    )
    for _, cell in _cells(quick):
        full = results[cell["full"]]
        ablated = results[cell["ablated"]]
        phases = full["phases"] or {}
        budget = expected_colour_collisions(full["num_edges"], PARAMS.memory_words)
        table.add_row(
            full["workload"],
            full["num_edges"],
            phases.get("partition", 0) + phases.get("triples", 0),
            ablated["total_ios"],
            full["total_ios"],
            full["report"]["x_xi"] / budget,
            ablated["x_xi"] / budget,
            ablated["triangles"] == full["triangles"],
        )
    table.add_note(
        "the ablated variant is still correct (it enumerates the same triangles), but on the "
        "hub workload its collision statistic X_xi and the colour-phase I/Os degrade, which is "
        "why the paper strips vertices of degree > sqrt(E*M) first; the full algorithm pays a "
        "fixed sort(E) cost per high-degree vertex (included in 'full total I/O')"
    )
    return table


def run(quick: bool = True) -> Table:
    """Run the ablation serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
