"""EXP9 -- work optimality.

Claim (Section 1.2, final remark): all of the paper's algorithms perform
``O(E^{3/2})`` RAM operations, matching the trivial ``Omega(t)`` bound when
``t = Theta(E^{3/2})``.  The simulator counts elementary operations charged
by the algorithms; dividing by ``E^{3/2}`` along an ``E`` sweep should give
a roughly constant series for every algorithm.
"""

from __future__ import annotations

from repro.analysis.bounds import work_upper_bound
from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.experiments.runner import run_on_edges
from repro.experiments.tables import Table
from repro.experiments.workloads import sparse_random

EXPERIMENT_ID = "EXP9"
TITLE = "Work (RAM operations) versus E"
CLAIM = "Operations grow no faster than E^{3/2} for the paper's algorithms"

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_EDGE_COUNTS = (512, 1024, 2048)
FULL_EDGE_COUNTS = (512, 1024, 2048, 4096)
ALGORITHMS = ("cache_aware", "hu_tao_chung", "dementiev")


def run(quick: bool = True) -> Table:
    """Run the work sweep and return the result table."""
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("E", "algorithm", "operations", "operations / E^1.5"),
    )
    per_algorithm: dict[str, tuple[list[int], list[float]]] = {
        name: ([], []) for name in ALGORITHMS
    }
    for num_edges in edge_counts:
        workload = sparse_random(num_edges)
        for algorithm in ALGORITHMS:
            result = run_on_edges(workload.edges, algorithm, PARAMS, seed=9)
            normalised = result.operations / work_upper_bound(workload.num_edges)
            per_algorithm[algorithm][0].append(workload.num_edges)
            per_algorithm[algorithm][1].append(result.operations)
            table.add_row(workload.num_edges, algorithm, result.operations, normalised)
    for algorithm, (xs, ys) in per_algorithm.items():
        fit = fit_power_law(xs, ys)
        table.add_note(
            f"{algorithm}: log-log work slope {fit.exponent:.2f} (work-optimal means <= 1.5)"
        )
    return table
