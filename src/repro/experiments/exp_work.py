"""EXP9 -- work optimality.

Claim (Section 1.2, final remark): all of the paper's algorithms perform
``O(E^{3/2})`` RAM operations, matching the trivial ``Omega(t)`` bound when
``t = Theta(E^{3/2})``.  The simulator counts elementary operations charged
by the algorithms; dividing by ``E^{3/2}`` along an ``E`` sweep should give
a roughly constant series for every algorithm.
"""

from __future__ import annotations

from repro.analysis.bounds import work_upper_bound
from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP9"
TITLE = "Work (RAM operations) versus E"
CLAIM = "Operations grow no faster than E^{3/2} for the paper's algorithms"

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_EDGE_COUNTS = (512, 1024, 2048)
FULL_EDGE_COUNTS = (512, 1024, 2048, 4096)
ALGORITHMS = ("cache_aware", "hu_tao_chung", "dementiev")


def _cells(quick: bool) -> list[tuple[int, dict[str, RunSpec]]]:
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    return [
        (
            num_edges,
            {
                algorithm: make_spec(
                    "edges",
                    workload=workload_ref("sparse_random", num_edges=num_edges),
                    algorithm=algorithm,
                    memory=PARAMS.memory_words,
                    block=PARAMS.block_words,
                    seed=9,
                )
                for algorithm in ALGORITHMS
            },
        )
        for num_edges in edge_counts
    ]


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [spec for _, cell in _cells(quick) for spec in cell.values()]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("E", "algorithm", "operations", "operations / E^1.5"),
    )
    per_algorithm: dict[str, tuple[list[int], list[float]]] = {
        name: ([], []) for name in ALGORITHMS
    }
    for _, cell in _cells(quick):
        for algorithm in ALGORITHMS:
            result = results[cell[algorithm]]
            num_edges = result["num_edges"]
            normalised = result["operations"] / work_upper_bound(num_edges)
            per_algorithm[algorithm][0].append(num_edges)
            per_algorithm[algorithm][1].append(result["operations"])
            table.add_row(num_edges, algorithm, result["operations"], normalised)
    for algorithm, (xs, ys) in per_algorithm.items():
        fit = fit_power_law(xs, ys)
        table.add_note(
            f"{algorithm}: log-log work slope {fit.exponent:.2f} (work-optimal means <= 1.5)"
        )
    return table


def run(quick: bool = True) -> Table:
    """Run the work sweep serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
