"""EXP4 -- optimality against the Theorem 3 lower bound.

Claim (Theorem 3): enumerating ``t`` triangles needs
``Omega(t / (sqrt(M) B) + t^{2/3} / B)`` I/Os, and a ``sqrt(E)``-clique has
``t = Theta(E^{3/2})`` triangles, so the upper bound of Theorems 1/2/4 is
tight.  On cliques the measured I/Os of the cache-aware algorithm divided by
the lower-bound formula should stay within a bounded constant band as the
clique grows.
"""

from __future__ import annotations

import math

from repro.analysis.bounds import lower_bound_io
from repro.analysis.model import MachineParams
from repro.analysis.verification import bounded_ratio_band
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP4"
TITLE = "Measured I/Os versus the Theorem 3 lower bound (cliques)"
CLAIM = "Measured / lower-bound ratio stays within a constant band as t grows"

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_CLIQUES = (16, 24, 32)
FULL_CLIQUES = (16, 24, 32, 48, 64)


def _cells(quick: bool) -> list[tuple[int, RunSpec]]:
    sizes = QUICK_CLIQUES if quick else FULL_CLIQUES
    return [
        (
            size,
            make_spec(
                "edges",
                workload=workload_ref("clique", num_vertices=size),
                algorithm="cache_aware",
                memory=PARAMS.memory_words,
                block=PARAMS.block_words,
                seed=4,
            ),
        )
        for size in sizes
    ]


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [spec for _, spec in _cells(quick)]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("clique n", "E", "t", "cache_aware I/O", "lower bound", "ratio"),
    )
    ratios: list[float] = []
    for size, spec in _cells(quick):
        result = results[spec]
        triangles = math.comb(size, 3)
        bound = lower_bound_io(triangles, PARAMS)
        ratio = result["total_ios"] / bound
        ratios.append(ratio)
        table.add_row(
            size, result["num_edges"], triangles, result["total_ios"], round(bound, 1), ratio
        )
    table.add_note(
        f"ratio band (max/min) across the sweep: {bounded_ratio_band(ratios):.2f} "
        "(a bounded band means the algorithm tracks the lower bound up to a constant)"
    )
    table.add_note(f"machine: M={PARAMS.memory_words}, B={PARAMS.block_words}")
    return table


def run(quick: bool = True) -> Table:
    """Run the clique sweep serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
