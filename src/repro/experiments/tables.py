"""Plain-text result tables for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A titled table of results, rendered as aligned plain text."""

    experiment_id: str
    title: str
    claim: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row; the number of values must match the header."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-form note printed under the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of the named column (for assertions in tests/benchmarks)."""
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned plain text."""
        header_cells = [str(h) for h in self.headers]
        body = [[_format_cell(cell) for cell in row] for row in self.rows]
        widths = [len(h) for h in header_cells]
        for row in body:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"claim: {self.claim}",
            render_row(header_cells),
            render_row(["-" * width for width in widths]),
        ]
        lines.extend(render_row(row) for row in body)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly representation (used by the benchmark extra_info)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
