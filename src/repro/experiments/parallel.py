"""The parallel experiment orchestrator.

:class:`ParallelRunner` takes a flat list of :class:`RunSpec` cells --
produced by the experiment modules' ``specs()`` hooks -- deduplicates them
by content address, satisfies what it can from the artifact store, and
executes the rest either serially (``jobs=1``) or across a
``multiprocessing`` worker pool.  Results are keyed by spec hash in a
:class:`ResultSet`, which the modules' ``tabulate()`` hooks index by spec to
re-render their tables.

Determinism: a spec's payload contains every seed the task needs, and each
task builds its own workload and simulated machine from scratch, so results
are bit-identical no matter which process executes a cell or in which order
cells finish.  The pool uses the ``spawn`` start method for identical
behaviour across platforms.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ReproError
from repro.parallel import spawn_map_unordered
from repro.experiments.specs import RunSpec
from repro.experiments.store import ResultStore
from repro.experiments.tasks import execute_spec


class SpecExecutionError(ReproError):
    """Raised when a tabulate hook asks for a cell whose run failed."""


class ResultSet:
    """Results of an orchestrated run, indexable by :class:`RunSpec`."""

    def __init__(
        self,
        results: dict[str, dict[str, Any]],
        errors: dict[str, str] | None = None,
        executed: int = 0,
        cached: int = 0,
    ) -> None:
        self._results = results
        self._errors = errors or {}
        self.executed = executed
        self.cached = cached

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.spec_hash in self._results

    def __getitem__(self, spec: RunSpec) -> dict[str, Any]:
        key = spec.spec_hash
        if key in self._results:
            return self._results[key]
        if key in self._errors:
            raise SpecExecutionError(
                f"run {spec.describe()} ({key}) failed:\n{self._errors[key]}"
            )
        raise KeyError(f"no result for spec {spec.describe()} ({key})")

    def get(self, spec: RunSpec, default: dict[str, Any] | None = None) -> dict[str, Any] | None:
        """The result for ``spec``, or ``default`` when missing or failed."""
        return self._results.get(spec.spec_hash, default)

    @property
    def errors(self) -> dict[str, str]:
        """Spec hash -> traceback text for every failed cell."""
        return dict(self._errors)


def _execute_for_pool(spec: RunSpec) -> tuple[str, dict[str, Any] | None, str | None]:
    """Worker entry point: never raises, returns (hash, result, traceback)."""
    try:
        return spec.spec_hash, execute_spec(spec), None
    except Exception:  # noqa: BLE001 - the traceback is the payload
        return spec.spec_hash, None, traceback.format_exc()


def dedupe_specs(specs: Iterable[RunSpec]) -> list[RunSpec]:
    """Drop duplicate cells, keeping first-occurrence order."""
    seen: set[str] = set()
    unique: list[RunSpec] = []
    for spec in specs:
        if spec.spec_hash not in seen:
            seen.add(spec.spec_hash)
            unique.append(spec)
    return unique


class ParallelRunner:
    """Execute run specs across a worker pool, resuming from the store."""

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.store = store
        self.jobs = jobs
        self.progress = progress

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self, specs: Sequence[RunSpec]) -> ResultSet:
        """Run every spec (deduplicated), returning a :class:`ResultSet`."""
        unique = dedupe_specs(specs)
        by_hash = {spec.spec_hash: spec for spec in unique}
        results: dict[str, dict[str, Any]] = {}
        errors: dict[str, str] = {}

        pending: list[RunSpec] = []
        for spec in unique:
            stored = self.store.get(spec) if self.store is not None else None
            if stored is not None:
                results[spec.spec_hash] = stored
            else:
                pending.append(spec)
        cached = len(results)
        if cached:
            self._report(f"{cached}/{len(unique)} cells already in the store")

        # spawn_map_unordered falls back to an in-process map when a pool
        # would be pointless (jobs=1, a single cell) or forbidden (we are
        # already inside a daemonic pool worker).
        outcomes = spawn_map_unordered(_execute_for_pool, pending, self.jobs)

        done = 0
        for spec_hash, result, error in outcomes:
            done += 1
            if error is not None:
                errors[spec_hash] = error
                self._report(
                    f"[{done}/{len(pending)}] FAILED {by_hash[spec_hash].describe()}"
                )
                continue
            results[spec_hash] = result
            if self.store is not None:
                self.store.put(by_hash[spec_hash], result)
            self._report(f"[{done}/{len(pending)}] {by_hash[spec_hash].describe()}")

        return ResultSet(results, errors, executed=len(pending) - len(errors), cached=cached)


def execute_specs(specs: Sequence[RunSpec]) -> ResultSet:
    """Serial, store-less execution (the legacy ``module.run()`` path)."""
    return ParallelRunner(store=None, jobs=1).run(specs)
