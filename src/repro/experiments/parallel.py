"""The parallel experiment orchestrator.

:class:`ParallelRunner` takes a flat list of :class:`RunSpec` cells --
produced by the experiment modules' ``specs()`` hooks -- deduplicates them
by content address, satisfies what it can from the artifact store, and
executes the rest through the supervised execution tier
(:func:`repro.resilience.supervised_map_unordered`): serially when
``jobs=1``, otherwise across a monitored worker pool -- by default the
process-wide persistent pool (:mod:`repro.poolexec`), so repeated runs pay
worker startup once -- with per-cell retries, optional task timeouts, and
dead-worker detection.
Results are keyed by spec hash in a :class:`ResultSet`, which the modules'
``tabulate()`` hooks index by spec to re-render their tables.

Partial results are always persisted: every cell that completes is written
to the store the moment it finishes, so an interrupted or partially failed
run resumes from the completed cells.  Cells that fail after exhausting
their retries leave a failure record in the store, which the next run
reports ("N cells failed last run, retrying") and clears on success.

Determinism: a spec's payload contains every seed the task needs, and each
task builds its own workload and simulated machine from scratch, so results
are bit-identical no matter which process executes a cell, in which order
cells finish, or how many times a cell is retried.  The pool uses the
``spawn`` start method for identical behaviour across platforms.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ReproError
from repro.experiments.specs import RunSpec
from repro.experiments.store import ResultStore
from repro.experiments.tasks import execute_spec
from repro.parallel import effective_jobs
from repro.poolexec import POOL_MODES, provider_for
from repro.resilience import BackoffPolicy, TaskOutcome, active_plan, supervised_map_unordered


class SpecExecutionError(ReproError):
    """Raised when a tabulate hook asks for a cell whose run failed."""


class ResultSet:
    """Results of an orchestrated run, indexable by :class:`RunSpec`."""

    def __init__(
        self,
        results: dict[str, dict[str, Any]],
        errors: dict[str, str] | None = None,
        executed: int = 0,
        cached: int = 0,
        *,
        outcomes: dict[str, TaskOutcome] | None = None,
        retried: int = 0,
    ) -> None:
        self._results = results
        self._errors = errors or {}
        self._outcomes = outcomes or {}
        self.executed = executed
        self.cached = cached
        #: Cells that needed more than one attempt before succeeding or failing.
        self.retried = retried

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.spec_hash in self._results

    def __getitem__(self, spec: RunSpec) -> dict[str, Any]:
        key = spec.spec_hash
        if key in self._results:
            return self._results[key]
        if key in self._errors:
            raise SpecExecutionError(
                f"run {spec.describe()} ({key}) failed:\n{self._errors[key]}"
            )
        raise KeyError(f"no result for spec {spec.describe()} ({key})")

    def get(self, spec: RunSpec, default: dict[str, Any] | None = None) -> dict[str, Any] | None:
        """The result for ``spec``, or ``default`` when missing or failed."""
        return self._results.get(spec.spec_hash, default)

    @property
    def errors(self) -> dict[str, str]:
        """Spec hash -> traceback text for every failed cell."""
        return dict(self._errors)

    @property
    def outcomes(self) -> dict[str, TaskOutcome]:
        """Spec hash -> supervision record for every executed cell."""
        return dict(self._outcomes)


def dedupe_specs(specs: Iterable[RunSpec]) -> list[RunSpec]:
    """Drop duplicate cells, keeping first-occurrence order."""
    seen: set[str] = set()
    unique: list[RunSpec] = []
    for spec in specs:
        if spec.spec_hash not in seen:
            seen.add(spec.spec_hash)
            unique.append(spec)
    return unique


def _spec_fault_key(_index: int, spec: RunSpec) -> str:
    """The stable fault-injection / backoff key for an orchestrated cell."""
    return f"spec:{spec.spec_hash}"


def _truncate_artifact(path: Path) -> None:
    """Apply an injected ``corrupt`` fault: chop the persisted file in half."""
    raw = path.read_text(encoding="utf-8")
    path.write_text(raw[: len(raw) // 2], encoding="utf-8")


class ParallelRunner:
    """Execute run specs under supervision, resuming from the store."""

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        progress: Callable[[str], None] | None = None,
        task_timeout: float | None = None,
        max_retries: int = 2,
        backoff: BackoffPolicy | None = None,
        pool: str = "persistent",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if pool not in POOL_MODES:
            raise ValueError(f"pool must be one of {POOL_MODES}, got {pool!r}")
        self.store = store
        self.jobs = jobs
        self.progress = progress
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        #: Worker-pool strategy (:mod:`repro.poolexec`): ``"persistent"``
        #: leases the process-wide warm pool shared with every other runner
        #: and sharded engine run in this process, so back-to-back
        #: ``run()`` calls pay worker startup once; ``"spawn"`` keeps the
        #: historical fresh-pool-per-run behaviour.
        self.pool = pool

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self, specs: Sequence[RunSpec]) -> ResultSet:
        """Run every spec (deduplicated), returning a :class:`ResultSet`."""
        unique = dedupe_specs(specs)
        results: dict[str, dict[str, Any]] = {}
        errors: dict[str, str] = {}
        outcomes: dict[str, TaskOutcome] = {}

        pending: list[RunSpec] = []
        for spec in unique:
            stored = self.store.get(spec) if self.store is not None else None
            if stored is not None:
                results[spec.spec_hash] = stored
            else:
                pending.append(spec)
        cached = len(results)
        if cached:
            self._report(f"{cached}/{len(unique)} cells already in the store")

        if self.store is not None:
            failed_before = sum(
                1 for spec in pending if self.store.get_failure(spec) is not None
            )
            if failed_before:
                self._report(f"{failed_before} cells failed last run, retrying")

        plan = active_plan()
        resolved_jobs = effective_jobs(self.jobs, len(pending))
        provider = provider_for(self.pool, resolved_jobs) if resolved_jobs > 1 else None
        supervised = supervised_map_unordered(
            execute_spec,
            pending,
            self.jobs,
            task_timeout=self.task_timeout,
            max_retries=self.max_retries,
            backoff=self.backoff,
            fault_key=_spec_fault_key,
            pool_provider=provider,
        )

        done = 0
        retried = 0
        for item in supervised:
            done += 1
            spec = pending[item.index]
            outcome = item.outcome
            outcomes[spec.spec_hash] = outcome
            if outcome.attempts > 1:
                retried += 1
            retry_note = f" (after {outcome.attempts} attempts)" if outcome.attempts > 1 else ""
            if not outcome.ok:
                errors[spec.spec_hash] = outcome.error or "cell failed with no recorded error"
                if self.store is not None:
                    self.store.put_failure(
                        spec, errors[spec.spec_hash], attempts=outcome.attempts
                    )
                self._report(f"[{done}/{len(pending)}] FAILED {spec.describe()}{retry_note}")
                continue
            results[spec.spec_hash] = item.value
            if self.store is not None:
                path = self.store.put(spec, item.value)
                self.store.clear_failure(spec)
                if plan is not None and plan.should_corrupt(_spec_fault_key(0, spec)):
                    _truncate_artifact(path)
            self._report(f"[{done}/{len(pending)}] {spec.describe()}{retry_note}")

        return ResultSet(
            results,
            errors,
            executed=len(pending) - len(errors),
            cached=cached,
            outcomes=outcomes,
            retried=retried,
        )


def execute_specs(specs: Sequence[RunSpec]) -> ResultSet:
    """Serial, store-less execution (the legacy ``module.run()`` path)."""
    return ParallelRunner(store=None, jobs=1).run(specs)
