"""Experiment harness reproducing the paper's quantitative claims.

The paper has no empirical tables or figures (it is a theory paper), so each
experiment here operationalises one theorem or lemma; DESIGN.md Section 5
maps experiment ids to claims and EXPERIMENTS.md records the outcomes.

Every experiment module exposes three hooks:

``specs(quick: bool = True) -> list[RunSpec]``
    The experiment expanded into a flat list of independent run cells.
``tabulate(results, quick: bool = True) -> Table | list[Table]``
    Re-render the experiment's table(s) from executed (or stored) cells.
``run(quick: bool = True) -> Table | list[Table]``
    Legacy serial entry point (``tabulate(execute_specs(specs(quick)))``).

``python -m repro.experiments.run_all`` orchestrates them all: cells of the
selected experiments are deduplicated, executed across a worker pool
(``--jobs N``) and persisted as JSON artifacts in a content-addressed store
(``results/<spec_hash>.json``) that later runs resume from.
"""

from repro.experiments.parallel import ParallelRunner, ResultSet, execute_specs
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.runner import RunResult, run_on_edges
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.store import ResultStore
from repro.experiments.tables import Table

__all__ = [
    "EXPERIMENTS",
    "ParallelRunner",
    "ResultSet",
    "ResultStore",
    "RunResult",
    "RunSpec",
    "Table",
    "execute_specs",
    "get_experiment",
    "list_experiments",
    "make_spec",
    "run_on_edges",
    "workload_ref",
]
