"""Experiment harness reproducing the paper's quantitative claims.

The paper has no empirical tables or figures (it is a theory paper), so each
experiment here operationalises one theorem or lemma; DESIGN.md Section 5
maps experiment ids to claims and EXPERIMENTS.md records the outcomes.

Every experiment module exposes ``run(quick: bool = True) -> Table`` (or a
list of tables); ``python -m repro.experiments.run_all`` runs them all and
prints the tables.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.runner import RunResult, run_on_edges
from repro.experiments.tables import Table

__all__ = [
    "EXPERIMENTS",
    "RunResult",
    "Table",
    "get_experiment",
    "list_experiments",
    "run_on_edges",
]
