"""Running one algorithm on one workload on one machine configuration."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.analysis.model import MachineParams
from repro.core.baselines.bnlj import block_nested_loop_join
from repro.core.baselines.dementiev import dementiev_sort_based
from repro.core.baselines.hu_tao_chung import hu_tao_chung
from repro.core.cache_aware import cache_aware_randomized
from repro.core.cache_oblivious import cache_oblivious_randomized
from repro.core.derandomized import deterministic_cache_aware
from repro.core.emit import CountingSink
from repro.exceptions import AlgorithmError
from repro.extmem.machine import Machine
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.io import edges_to_file, edges_to_vector


@dataclass
class RunResult:
    """Measurements of one algorithm run on one canonical edge list."""

    algorithm: str
    params: MachineParams
    num_edges: int
    triangles: int
    reads: int
    writes: int
    operations: int
    disk_peak_words: int
    wall_time_seconds: float
    report: Any = None
    phases: dict[str, int] | None = None

    @property
    def total_ios(self) -> int:
        """Total simulated block transfers."""
        return self.reads + self.writes


def run_on_edges(
    edges: list[tuple[int, int]],
    algorithm: str,
    params: MachineParams,
    seed: int = 0,
    **options: Any,
) -> RunResult:
    """Run ``algorithm`` on an already-canonical edge list and measure it.

    Unlike :func:`repro.core.api.enumerate_triangles` this skips graph
    canonicalisation and triangle collection, which keeps parameter sweeps
    fast; it is the entry point used by the experiments and benchmarks.
    """
    stats = IOStats()
    sink = CountingSink()
    started = time.perf_counter()
    report: Any = None
    phases: dict[str, int] | None = None

    if algorithm == "cache_oblivious":
        vm = ObliviousVM(params, stats)
        vector = edges_to_vector(vm, edges)
        report = cache_oblivious_randomized(vm, vector, sink, seed=seed, **options)
        disk_peak = vm.peak_words
    else:
        machine = Machine(params, stats)
        edge_file = edges_to_file(machine, edges)
        if algorithm == "cache_aware":
            report = cache_aware_randomized(machine, edge_file, sink, seed=seed, **options)
        elif algorithm == "deterministic":
            report = deterministic_cache_aware(machine, edge_file, sink, **options)
        elif algorithm == "hu_tao_chung":
            report = hu_tao_chung(machine, edge_file, sink, **options)
        elif algorithm == "dementiev":
            report = dementiev_sort_based(machine, edge_file, sink, **options)
        elif algorithm == "bnlj":
            report = block_nested_loop_join(machine, edge_file, sink, **options)
        else:
            raise AlgorithmError(f"unknown algorithm {algorithm!r}")
        disk_peak = machine.disk.peak_words
        phases = machine.stats.phases

    elapsed = time.perf_counter() - started
    return RunResult(
        algorithm=algorithm,
        params=params,
        num_edges=len(edges),
        triangles=sink.count,
        reads=stats.reads,
        writes=stats.writes,
        operations=stats.operations,
        disk_peak_words=disk_peak,
        wall_time_seconds=elapsed,
        report=report,
        phases=phases,
    )
