"""Running one algorithm on one workload on one machine configuration.

Since the engine refactor this module is a thin façade over
:class:`repro.core.engine.TriangleEngine`: the experiment sweeps hand it an
already-canonical edge list, it builds an identity-label engine (no
canonicalisation, no translation) and runs the count-only fast path.  The
:class:`RunResult` re-exported here is the package-wide unified result type
from :mod:`repro.core.result`.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.core.result import RunResult

__all__ = ["RunResult", "run_on_edges"]


def run_on_edges(
    edges: list[tuple[int, int]],
    algorithm: str,
    params: MachineParams,
    seed: int = 0,
    shards: int | None = None,
    jobs: int = 1,
    **options: Any,
) -> RunResult:
    """Run ``algorithm`` on an already-canonical edge list and measure it.

    Unlike :func:`repro.core.api.enumerate_triangles` this skips graph
    canonicalisation and triangle collection, which keeps parameter sweeps
    fast; it is the entry point used by the experiments and benchmarks.  For
    several runs over the *same* edge list, build one
    :meth:`TriangleEngine.from_canonical_edges` and call
    :meth:`~repro.core.engine.TriangleEngine.run` repeatedly instead.

    ``shards``/``jobs`` select the engine's colour-sharded execution path
    (machine-kind algorithms only; see :mod:`repro.core.sharding`).
    """
    engine = TriangleEngine.from_canonical_edges(edges, params=params, validate=False)
    return engine.run(
        algorithm, seed=seed, collect=False, shards=shards, jobs=jobs, options=options
    )
