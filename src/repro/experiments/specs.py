"""Run specifications: the unit of work of the experiment orchestrator.

A :class:`RunSpec` is a *complete, self-contained* description of one
independent measurement: which task to execute (a name in
:data:`repro.experiments.tasks.TASKS`) and a JSON payload of keyword
arguments for it.  Workloads are referenced by factory name plus arguments
(see :data:`repro.experiments.workloads.WORKLOAD_FACTORIES`) so a spec never
holds a graph -- the worker process rebuilds it deterministically from the
seed baked into the payload.

Because the payload is stored as *canonical* JSON (sorted keys, no
whitespace), two specs describing the same work compare equal, hash equal,
and map to the same content address, which is what lets the orchestrator

* deduplicate cells shared between experiments, and
* resume from the artifact store (``results/<spec_hash>.json``) across runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

#: Version tag mixed into every spec hash; bump it when the semantics of a
#: task change so stale artifacts are not silently reused.
SPEC_VERSION = "v1"


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """One independent run: a task name plus its canonical JSON payload."""

    task: str
    payload_json: str

    @property
    def payload(self) -> dict[str, Any]:
        """The payload as a dictionary (tuples come back as lists)."""
        return json.loads(self.payload_json)

    @property
    def spec_hash(self) -> str:
        """Content address of this spec (first 16 hex digits of SHA-256)."""
        digest = hashlib.sha256(
            f"{SPEC_VERSION}\n{self.task}\n{self.payload_json}".encode()
        )
        return digest.hexdigest()[:16]

    def describe(self) -> str:
        """A one-line human-readable summary (used by progress output)."""
        payload = self.payload
        workload = payload.get("workload")
        parts = [self.task]
        if isinstance(workload, (list, tuple)) and workload:
            parts.append(str(workload[0]))
        for key in ("algorithm", "k", "memory", "seed"):
            if key in payload:
                parts.append(f"{key}={payload[key]}")
        return " ".join(parts)


def make_spec(task: str, **payload: Any) -> RunSpec:
    """Build a :class:`RunSpec`, canonicalising the payload.

    The payload must be JSON-serialisable; anything else is a bug in the
    calling experiment module and raises ``TypeError`` immediately rather
    than in a worker process.
    """
    return RunSpec(task=task, payload_json=canonical_json(payload))


def workload_ref(factory: str, **kwargs: Any) -> list[Any]:
    """A JSON-friendly reference to a registered workload factory."""
    return [factory, kwargs]
