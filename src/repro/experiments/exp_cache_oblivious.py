"""EXP3 -- the cache-oblivious algorithm under the LRU cache simulator.

Claim (Theorem 1): without ever reading M or B, the recursive algorithm's
I/O count (misses plus dirty write-backs of an LRU cache of M/B blocks)
scales like ``E^{3/2} / (sqrt(M) B)``.  We sweep E at fixed (M, B) and M at
fixed E, and additionally check the regularity condition
``Q(E, M, B) = O(Q(E, 2M, B))`` that transfers the bound to every level of a
multilevel LRU cache (Frigo et al.).
"""

from __future__ import annotations

from repro.analysis.verification import fit_power_law
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP3"
TITLE = "Cache-oblivious algorithm: I/O scaling under LRU simulation"
CLAIM = "I/Os grow ~E^1.5 in E and shrink ~M^-1/2 in M without the algorithm knowing M or B"

BLOCK_WORDS = 16
QUICK_EDGE_COUNTS = (256, 512, 1024)
FULL_EDGE_COUNTS = (256, 512, 1024, 2048)
QUICK_MEMORIES = (128, 256, 512)
FULL_MEMORIES = (128, 256, 512, 1024)
BASE_MEMORY = 256


def _spec(num_edges: int, algorithm: str, memory: int) -> RunSpec:
    return make_spec(
        "edges",
        workload=workload_ref("sparse_random", num_edges=num_edges),
        algorithm=algorithm,
        memory=memory,
        block=BLOCK_WORDS,
        seed=3,
    )


def _e_cells(quick: bool) -> list[tuple[int, dict[str, RunSpec]]]:
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    return [
        (
            num_edges,
            {
                "cache_oblivious": _spec(num_edges, "cache_oblivious", BASE_MEMORY),
                "cache_aware": _spec(num_edges, "cache_aware", BASE_MEMORY),
            },
        )
        for num_edges in edge_counts
    ]


def _m_cells(quick: bool) -> list[tuple[int, RunSpec]]:
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    memories = QUICK_MEMORIES if quick else FULL_MEMORIES
    return [
        (memory, _spec(edge_counts[-1], "cache_oblivious", memory)) for memory in memories
    ]


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    flat = [spec for _, cell in _e_cells(quick) for spec in cell.values()]
    flat.extend(spec for _, spec in _m_cells(quick))
    return flat


def tabulate(results: ResultSet, quick: bool = True) -> list[Table]:
    """Rebuild both sweeps' tables from executed (or stored) cells."""
    e_table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE + " (E sweep)",
        claim=CLAIM,
        headers=("E", "triangles", "cache_oblivious", "cache_aware", "ratio co/ca"),
    )
    co_series: list[float] = []
    swept: list[int] = []
    for _, cell in _e_cells(quick):
        oblivious = results[cell["cache_oblivious"]]
        aware = results[cell["cache_aware"]]
        co_series.append(oblivious["total_ios"])
        swept.append(oblivious["num_edges"])
        e_table.add_row(
            oblivious["num_edges"],
            oblivious["triangles"],
            oblivious["total_ios"],
            aware["total_ios"],
            oblivious["total_ios"] / max(1, aware["total_ios"]),
        )
    fit = fit_power_law(swept, co_series)
    e_table.add_note(
        f"log-log slope in E: {fit.exponent:.2f} (theory 1.5, plus a log factor from the "
        "cache-oblivious binary merge sort)"
    )

    m_table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE + " (M sweep + regularity)",
        claim="Q(E, M, B) decreases ~M^-1/2 and Q(E, M, B) / Q(E, 2M, B) stays bounded",
        headers=("M", "cache_oblivious", "Q(M)/Q(2M)"),
    )
    m_cells = _m_cells(quick)
    memories = [memory for memory, _ in m_cells]
    totals = [results[spec]["total_ios"] for _, spec in m_cells]
    num_edges = results[m_cells[0][1]]["num_edges"]
    for index, memory in enumerate(memories):
        if index + 1 < len(totals):
            m_table.add_row(memory, totals[index], totals[index] / totals[index + 1])
        else:
            m_table.add_row(memory, totals[index], "-")
    m_fit = fit_power_law(memories, totals)
    m_table.add_note(
        f"log-log slope in M: {m_fit.exponent:.2f} (theory -0.5 asymptotically; at simulable "
        "scales the measured slope is steeper because once a subproblem fits in the LRU cache "
        "its accesses stop costing I/Os entirely)"
    )
    m_table.add_note(f"E = {num_edges}, B = {BLOCK_WORDS}")
    return [e_table, m_table]


def run(quick: bool = True) -> list[Table]:
    """Run both sweeps serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
