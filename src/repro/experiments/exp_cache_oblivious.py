"""EXP3 -- the cache-oblivious algorithm under the LRU cache simulator.

Claim (Theorem 1): without ever reading M or B, the recursive algorithm's
I/O count (misses plus dirty write-backs of an LRU cache of M/B blocks)
scales like ``E^{3/2} / (sqrt(M) B)``.  We sweep E at fixed (M, B) and M at
fixed E, and additionally check the regularity condition
``Q(E, M, B) = O(Q(E, 2M, B))`` that transfers the bound to every level of a
multilevel LRU cache (Frigo et al.).
"""

from __future__ import annotations

from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.experiments.runner import run_on_edges
from repro.experiments.tables import Table
from repro.experiments.workloads import sparse_random

EXPERIMENT_ID = "EXP3"
TITLE = "Cache-oblivious algorithm: I/O scaling under LRU simulation"
CLAIM = "I/Os grow ~E^1.5 in E and shrink ~M^-1/2 in M without the algorithm knowing M or B"

BLOCK_WORDS = 16
QUICK_EDGE_COUNTS = (256, 512, 1024)
FULL_EDGE_COUNTS = (256, 512, 1024, 2048)
QUICK_MEMORIES = (128, 256, 512)
FULL_MEMORIES = (128, 256, 512, 1024)
BASE_MEMORY = 256


def run(quick: bool = True) -> list[Table]:
    """Run both sweeps; returns the E-sweep and M-sweep tables."""
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    memories = QUICK_MEMORIES if quick else FULL_MEMORIES

    e_table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE + " (E sweep)",
        claim=CLAIM,
        headers=("E", "triangles", "cache_oblivious", "cache_aware", "ratio co/ca"),
    )
    co_series: list[float] = []
    swept: list[int] = []
    for num_edges in edge_counts:
        workload = sparse_random(num_edges)
        params = MachineParams(memory_words=BASE_MEMORY, block_words=BLOCK_WORDS)
        oblivious = run_on_edges(workload.edges, "cache_oblivious", params, seed=3)
        aware = run_on_edges(workload.edges, "cache_aware", params, seed=3)
        co_series.append(oblivious.total_ios)
        swept.append(workload.num_edges)
        e_table.add_row(
            workload.num_edges,
            oblivious.triangles,
            oblivious.total_ios,
            aware.total_ios,
            oblivious.total_ios / max(1, aware.total_ios),
        )
    fit = fit_power_law(swept, co_series)
    e_table.add_note(
        f"log-log slope in E: {fit.exponent:.2f} (theory 1.5, plus a log factor from the "
        "cache-oblivious binary merge sort)"
    )

    m_table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE + " (M sweep + regularity)",
        claim="Q(E, M, B) decreases ~M^-1/2 and Q(E, M, B) / Q(E, 2M, B) stays bounded",
        headers=("M", "cache_oblivious", "Q(M)/Q(2M)"),
    )
    workload = sparse_random(edge_counts[-1])
    totals: list[float] = []
    for memory in memories:
        params = MachineParams(memory_words=memory, block_words=BLOCK_WORDS)
        result = run_on_edges(workload.edges, "cache_oblivious", params, seed=3)
        totals.append(result.total_ios)
    for index, memory in enumerate(memories):
        ratio = totals[index] / totals[index + 1] if index + 1 < len(totals) else float("nan")
        m_table.add_row(memory, totals[index], ratio if index + 1 < len(totals) else "-")
    m_fit = fit_power_law(list(memories), totals)
    m_table.add_note(
        f"log-log slope in M: {m_fit.exponent:.2f} (theory -0.5 asymptotically; at simulable "
        "scales the measured slope is steeper because once a subproblem fits in the LRU cache "
        "its accesses stop costing I/Os entirely)"
    )
    m_table.add_note(f"E = {workload.num_edges}, B = {BLOCK_WORDS}")
    return [e_table, m_table]
