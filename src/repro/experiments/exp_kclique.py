"""EXP11 -- extension: k-clique enumeration via colour coding (Section 6).

Claim (paper conclusion, citing Silvestri 2014): the colour-coding technique
of Section 2 extends to enumerating k-cliques in
``O(E^{k/2} / (M^{k/2-1} B))`` expected I/Os.  For ``k = 4`` that is
``E^2 / (M B)``: sweeping ``E`` at fixed ``(M, B)``, the log-log slope of the
measured I/Os should be about 2 (and about 1.5 for ``k = 3``, where the
extension coincides with the triangle algorithm's bound).
"""

from __future__ import annotations

from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.core.kclique import CountingCliqueSink, cache_aware_kclique
from repro.experiments.tables import Table
from repro.experiments.workloads import dense_random
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.io import edges_to_file

EXPERIMENT_ID = "EXP11"
TITLE = "Extension: k-clique enumeration via colour coding"
CLAIM = "I/Os grow like E^{k/2} at fixed (M, B): slope ~1.5 for k=3, ~2 for k=4"

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_EDGE_COUNTS = (512, 1024)
FULL_EDGE_COUNTS = (512, 1024, 2048)
CLIQUE_SIZES = (3, 4)


def run(quick: bool = True) -> Table:
    """Run the k-clique sweep and return the result table."""
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("E", "k", "cliques", "I/Os", "subproblems", "refined"),
    )
    series: dict[int, tuple[list[int], list[float]]] = {k: ([], []) for k in CLIQUE_SIZES}
    for num_edges in edge_counts:
        workload = dense_random(num_edges)
        for k in CLIQUE_SIZES:
            machine = Machine(PARAMS, IOStats())
            edge_file = edges_to_file(machine, workload.edges)
            sink = CountingCliqueSink()
            report = cache_aware_kclique(machine, edge_file, k, sink, seed=11)
            series[k][0].append(workload.num_edges)
            series[k][1].append(machine.stats.total)
            table.add_row(
                workload.num_edges,
                k,
                sink.count,
                machine.stats.total,
                report.subproblems_solved,
                report.subproblems_refined,
            )
    for k in CLIQUE_SIZES:
        fit = fit_power_law(*series[k])
        table.add_note(
            f"k={k}: log-log slope {fit.exponent:.2f} (theory {k / 2:.1f}); "
            f"oversized colour-tuple subproblems are split by refinement, "
            f"which adds a constant number of extra passes"
        )
    table.add_note(f"machine: M={PARAMS.memory_words}, B={PARAMS.block_words}; dense random graphs")
    return table
