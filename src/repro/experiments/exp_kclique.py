"""EXP11 -- extension: k-clique enumeration via colour coding (Section 6).

Claim (paper conclusion, citing Silvestri 2014): the colour-coding technique
of Section 2 extends to enumerating k-cliques in
``O(E^{k/2} / (M^{k/2-1} B))`` expected I/Os.  For ``k = 4`` that is
``E^2 / (M B)``: sweeping ``E`` at fixed ``(M, B)``, the log-log slope of the
measured I/Os should be about 2 (and about 1.5 for ``k = 3``, where the
extension coincides with the triangle algorithm's bound).
"""

from __future__ import annotations

from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP11"
TITLE = "Extension: k-clique enumeration via colour coding"
CLAIM = "I/Os grow like E^{k/2} at fixed (M, B): slope ~1.5 for k=3, ~2 for k=4"

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_EDGE_COUNTS = (512, 1024)
FULL_EDGE_COUNTS = (512, 1024, 2048)
CLIQUE_SIZES = (3, 4)


def _cells(quick: bool) -> list[tuple[int, dict[int, RunSpec]]]:
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    return [
        (
            num_edges,
            {
                k: make_spec(
                    "kclique",
                    workload=workload_ref("dense_random", num_edges=num_edges),
                    k=k,
                    memory=PARAMS.memory_words,
                    block=PARAMS.block_words,
                    seed=11,
                )
                for k in CLIQUE_SIZES
            },
        )
        for num_edges in edge_counts
    ]


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [spec for _, cell in _cells(quick) for spec in cell.values()]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("E", "k", "cliques", "I/Os", "subproblems", "refined"),
    )
    series: dict[int, tuple[list[int], list[float]]] = {k: ([], []) for k in CLIQUE_SIZES}
    for _, cell in _cells(quick):
        for k in CLIQUE_SIZES:
            result = results[cell[k]]
            series[k][0].append(result["num_edges"])
            series[k][1].append(result["total_ios"])
            table.add_row(
                result["num_edges"],
                k,
                result["cliques"],
                result["total_ios"],
                result["report"]["subproblems_solved"],
                result["report"]["subproblems_refined"],
            )
    for k in CLIQUE_SIZES:
        fit = fit_power_law(*series[k])
        table.add_note(
            f"k={k}: log-log slope {fit.exponent:.2f} (theory {k / 2:.1f}); "
            f"oversized colour-tuple subproblems are split by refinement, "
            f"which adds a constant number of extra passes"
        )
    table.add_note(f"machine: M={PARAMS.memory_words}, B={PARAMS.block_words}; dense random graphs")
    return table


def run(quick: bool = True) -> Table:
    """Run the k-clique sweep serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
