"""Registry mapping experiment ids to their modules."""

from __future__ import annotations

from types import ModuleType

from repro.experiments import (
    exp_ablation,
    exp_cache_oblivious,
    exp_coloring,
    exp_e_scaling,
    exp_fastpath,
    exp_join,
    exp_kclique,
    exp_lower_bound,
    exp_m_scaling,
    exp_multilevel,
    exp_output_sensitivity,
    exp_recursion,
    exp_work,
)

#: Experiment id -> module.  Every module exposes ``run(quick: bool)`` along
#: with ``EXPERIMENT_ID``, ``TITLE`` and ``CLAIM`` constants.
EXPERIMENTS: dict[str, ModuleType] = {
    exp_e_scaling.EXPERIMENT_ID: exp_e_scaling,
    exp_m_scaling.EXPERIMENT_ID: exp_m_scaling,
    exp_cache_oblivious.EXPERIMENT_ID: exp_cache_oblivious,
    exp_lower_bound.EXPERIMENT_ID: exp_lower_bound,
    exp_coloring.EXPERIMENT_ID: exp_coloring,
    exp_recursion.EXPERIMENT_ID: exp_recursion,
    exp_output_sensitivity.EXPERIMENT_ID: exp_output_sensitivity,
    exp_join.EXPERIMENT_ID: exp_join,
    exp_work.EXPERIMENT_ID: exp_work,
    exp_ablation.EXPERIMENT_ID: exp_ablation,
    exp_kclique.EXPERIMENT_ID: exp_kclique,
    exp_multilevel.EXPERIMENT_ID: exp_multilevel,
    exp_fastpath.EXPERIMENT_ID: exp_fastpath,
}


def list_experiments() -> list[str]:
    """Ids of all registered experiments, in DESIGN.md order."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ModuleType:
    """Look up an experiment module by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]
