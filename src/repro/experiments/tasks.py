"""Task implementations: how a :class:`RunSpec` turns into a result dict.

Every task is a module-level function registered in :data:`TASKS` under the
name a spec carries, taking only JSON-serialisable keyword arguments and
returning a JSON-serialisable dictionary -- this is what makes specs
executable in ``multiprocessing`` workers (the function is importable by
name) and results storable as artifacts (no pickling, no live objects).

The ``edges`` task covers every ``run_on_edges`` sweep; the remaining tasks
wrap the experiment-specific measurements (joins, k-cliques, the multilevel
replay and the EXP10 colour ablation) so that *all* experiment cells flow
through the same orchestrator and artifact store.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.bounds import colour_count
from repro.analysis.model import MachineParams
from repro.core.cache_aware import enumerate_colored_triples, partition_by_coloring
from repro.core.cache_oblivious import cache_oblivious_randomized
from repro.core.emit import CountingSink
from repro.core.kclique import CountingCliqueSink, cache_aware_kclique
from repro.experiments.runner import RunResult, run_on_edges
from repro.experiments.specs import RunSpec
from repro.experiments.workloads import build_workload, join_instance
from repro.extmem.machine import Machine
from repro.extmem.multilevel import attach_multilevel
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.io import edges_to_file, edges_to_vector
from repro.hashing.coloring import RandomColoring
from repro.joins.fifth_normal_form import reconstruct_by_joins
from repro.joins.relation import Relation
from repro.joins.triangle_join import triangle_join

#: Task name -> implementation; the orchestrator's dispatch table.
TASKS: dict[str, Callable[..., dict[str, Any]]] = {}


def task(name: str) -> Callable:
    """Register a task implementation under ``name``."""

    def register(function: Callable[..., dict[str, Any]]) -> Callable:
        TASKS[name] = function
        return function

    return register


def execute_spec(spec: RunSpec) -> dict[str, Any]:
    """Execute one spec and return its JSON-serialisable result."""
    try:
        implementation = TASKS[spec.task]
    except KeyError:
        raise KeyError(
            f"unknown task {spec.task!r}; available: {', '.join(sorted(TASKS))}"
        ) from None
    return implementation(**spec.payload)


#: Scalar report fields worth persisting, across every report class.
_REPORT_FIELDS = (
    "x_xi",
    "num_colors",
    "certified",
    "family_size",
    "high_degree_triangles",
    "low_degree_triangles",
    "base_case_invocations",
    "local_high_degree_processed",
    "max_depth",
    "subproblems_solved",
    "subproblems_refined",
    "largest_subproblem",
)


def summarize_report(report: Any) -> dict[str, Any] | None:
    """Extract the JSON-friendly subset of an algorithm report.

    The tables only consume scalar statistics plus the per-depth subproblem
    sizes of the cache-oblivious recursion, so that is all that is persisted
    (partition-size dictionaries keyed by colour pairs are summarised by
    ``x_xi`` already).
    """
    if report is None:
        return None
    summary: dict[str, Any] = {}
    for name in _REPORT_FIELDS:
        value = getattr(report, name, None)
        if isinstance(value, (bool, int, float)):
            summary[name] = value
    sizes = getattr(report, "subproblem_sizes", None)
    if isinstance(sizes, dict):
        summary["subproblem_sizes"] = {
            str(depth): list(values) for depth, values in sizes.items()
        }
    high_degree = getattr(report, "high_degree_vertices", None)
    if high_degree is not None:
        summary["high_degree_vertices"] = len(high_degree)
    return summary


def result_to_dict(result: RunResult, workload_name: str) -> dict[str, Any]:
    """Flatten a :class:`RunResult` into the artifact result schema.

    The artifact schema predates the unified result type: its ``triangles``
    field is the *count* (sweeps never collect the triangle list).
    """
    return {
        "workload": workload_name,
        "num_edges": result.num_edges,
        "triangles": result.triangle_count,
        "reads": result.reads,
        "writes": result.writes,
        "operations": result.operations,
        "total_ios": result.total_ios,
        "disk_peak_words": result.disk_peak_words,
        "wall_time_seconds": result.wall_time_seconds,
        "phases": dict(result.phases) if result.phases else None,
        "report": summarize_report(result.report),
    }


@task("edges")
def run_edges(
    workload: list,
    algorithm: str,
    memory: int,
    block: int,
    seed: int = 0,
    shards: int | None = None,
    jobs: int = 1,
    options: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one algorithm on one workload on one machine configuration.

    ``shards``/``jobs`` route the cell through the engine's colour-sharded
    execution path.  Note that a cell executed inside a ``run_all --jobs N``
    pool worker cannot spawn its own children (daemonic workers), so
    ``jobs > 1`` silently degrades to in-process shard execution there; the
    result is bit-identical either way.
    """
    built = build_workload(workload)
    params = MachineParams(memory_words=memory, block_words=block)
    result = run_on_edges(
        built.edges, algorithm, params, seed=seed, shards=shards, jobs=jobs, **(options or {})
    )
    payload = result_to_dict(result, built.name)
    payload["algorithm"] = algorithm
    if shards is not None:
        payload["shards"] = shards
    return payload


def _sells_relations(instance) -> tuple[Relation, Relation, Relation]:
    sb = Relation("SB", ("salesperson", "brand"), instance.sells_pairs)
    bt = Relation("BT", ("brand", "productType"), instance.brand_type_pairs)
    st = Relation("ST", ("salesperson", "productType"), instance.sells_types)
    return sb, bt, st


@task("join")
def run_join(
    part: int,
    pair_probability: float,
    algorithm: str,
    memory: int,
    block: int,
    seed: int = 0,
    check: bool = False,
) -> dict[str, Any]:
    """The EXP8 cell: a 3-way cyclic join computed as triangle enumeration.

    With ``check=True`` the triangle-join output is verified against the
    relational natural join computed in memory.
    """
    instance = join_instance(part, pair_probability=pair_probability)
    sb, bt, st = _sells_relations(instance)
    params = MachineParams(memory_words=memory, block_words=block)
    relation, result = triangle_join(sb, bt, st, algorithm=algorithm, params=params, seed=seed)
    payload: dict[str, Any] = {
        "part": part,
        "num_edges": result.num_edges,
        "join_tuples": len(relation),
        "reads": result.io.reads,
        "writes": result.io.writes,
        "total_ios": result.io.total,
    }
    if check:
        expected = reconstruct_by_joins(sb, bt, st)
        payload["correct"] = relation.rows() == expected.rows()
    return payload


@task("kclique")
def run_kclique(
    workload: list, k: int, memory: int, block: int, seed: int = 0
) -> dict[str, Any]:
    """The EXP11 cell: k-clique enumeration via colour coding."""
    built = build_workload(workload)
    machine = Machine(MachineParams(memory_words=memory, block_words=block), IOStats())
    edge_file = edges_to_file(machine, built.edges)
    sink = CountingCliqueSink()
    report = cache_aware_kclique(machine, edge_file, k, sink, seed=seed)
    return {
        "workload": built.name,
        "num_edges": built.num_edges,
        "k": k,
        "cliques": sink.count,
        "reads": machine.stats.reads,
        "writes": machine.stats.writes,
        "total_ios": machine.stats.total,
        "report": summarize_report(report),
    }


@task("multilevel")
def run_multilevel(
    workload: list, levels: dict[str, int], block: int, seed: int = 0
) -> dict[str, Any]:
    """The EXP12 replay: one cache-oblivious run against an LRU hierarchy."""
    built = build_workload(workload)
    vm, cache = attach_multilevel(
        MachineParams(memory_words=max(levels.values()), block_words=block), levels
    )
    vector = edges_to_vector(vm, built.edges)
    sink = CountingSink()
    cache_oblivious_randomized(vm, vector, sink, seed=seed)
    cache.flush()
    return {
        "workload": built.name,
        "num_edges": built.num_edges,
        "triangles": sink.count,
        "totals": dict(cache.total_by_level()),
    }


@task("oblivious_dedicated")
def run_oblivious_dedicated(
    workload: list, memory: int, block: int, seed: int = 0
) -> dict[str, Any]:
    """A dedicated single-level cache-oblivious run, flushed (EXP12 control)."""
    built = build_workload(workload)
    vm = ObliviousVM(MachineParams(memory_words=memory, block_words=block), IOStats())
    vector = edges_to_vector(vm, built.edges)
    sink = CountingSink()
    cache_oblivious_randomized(vm, vector, sink, seed=seed)
    vm.flush()
    return {
        "workload": built.name,
        "num_edges": built.num_edges,
        "triangles": sink.count,
        "reads": vm.stats.reads,
        "writes": vm.stats.writes,
        "total_ios": vm.stats.total,
    }


@task("colour_ablation")
def run_colour_ablation(
    workload: list, memory: int, block: int, seed: int = 0
) -> dict[str, Any]:
    """The EXP10 ablation: colour partitioning on the *full* edge set.

    Skips the high-degree phase (Section 2, step 1) and measures how the
    collision statistic ``X_xi`` and the colour-phase I/Os degrade.
    """
    built = build_workload(workload)
    params = MachineParams(memory_words=memory, block_words=block)
    machine = Machine(params, IOStats())
    edge_file = edges_to_file(machine, built.edges)
    colours = max(1, colour_count(built.num_edges, params.memory_words))
    coloring = RandomColoring(max(2, colours), seed=seed)
    partitioned, slices, sizes = partition_by_coloring(machine, edge_file, coloring)
    sink = CountingSink()
    enumerate_colored_triples(machine, slices, coloring, sink)
    partitioned.delete()
    return {
        "workload": built.name,
        "num_edges": built.num_edges,
        "triangles": sink.count,
        "total_ios": machine.stats.total,
        "x_xi": sum(size * (size - 1) // 2 for size in sizes.values()),
    }
