"""Content-addressed JSON artifact store for experiment results.

Every completed :class:`repro.experiments.specs.RunSpec` is persisted as
``<root>/<spec_hash>.json`` so that

* re-running an experiment suite resumes from completed cells (a cell is
  looked up by content address before it is executed),
* tables are re-rendered from stored artifacts instead of in-memory state,
* CI jobs and notebooks can consume the raw counters without re-running
  anything.

Artifact schema (``repro-run/v1``)::

    {
      "schema":    "repro-run/v1",
      "spec_hash": "<16 hex digits>",
      "task":      "<task name>",
      "payload":   { ... task keyword arguments ... },
      "result":    { ... task result dictionary ... }
    }

Artifacts are written atomically (temp file + rename) and validated on
read: a corrupt, truncated or mismatching artifact is treated as a cache
miss, never as an error.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.experiments.specs import RunSpec

ARTIFACT_SCHEMA = "repro-run/v1"

#: Default artifact directory, relative to the current working directory.
DEFAULT_RESULTS_DIR = "results"


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A crash mid-write can never leave a torn file at ``path``: readers see
    either the previous complete content or the new complete content.  The
    temporary lives next to the target (same filesystem, so the replace is
    atomic) under a name no ``*.json`` glob matches.  Parent directories
    are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        temporary.write_text(text, encoding="utf-8")
        os.replace(temporary, path)
    except BaseException:
        temporary.unlink(missing_ok=True)
        raise
    return path


def atomic_write_json(path: str | Path, payload: Any) -> Path:
    """Serialise ``payload`` as stable JSON and write it atomically.

    The artifact store, the ``results.json`` suite summary and the rendered
    table output all write through here, so a crashed or interrupted run
    can never corrupt a summary that downstream tabulation or CI trusts.
    """
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


class ResultStore:
    """A directory of ``<spec_hash>.json`` artifacts."""

    def __init__(self, root: str | Path = DEFAULT_RESULTS_DIR) -> None:
        self.root = Path(root)

    def path_for(self, spec: RunSpec) -> Path:
        """Where the artifact for ``spec`` lives (whether or not it exists)."""
        return self.root / f"{spec.spec_hash}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return self.get(spec) is not None

    def get(self, spec: RunSpec) -> dict[str, Any] | None:
        """The stored result for ``spec``, or ``None`` on any kind of miss."""
        path = self.path_for(spec)
        try:
            artifact = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(artifact, dict):
            return None
        if artifact.get("schema") != ARTIFACT_SCHEMA:
            return None
        if artifact.get("spec_hash") != spec.spec_hash or artifact.get("task") != spec.task:
            return None
        result = artifact.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: RunSpec, result: dict[str, Any]) -> Path:
        """Persist ``result`` for ``spec`` atomically; returns the path."""
        artifact = {
            "schema": ARTIFACT_SCHEMA,
            "spec_hash": spec.spec_hash,
            "task": spec.task,
            "payload": spec.payload,
            "result": result,
        }
        return atomic_write_json(self.path_for(spec), artifact)

    def artifact_paths(self) -> list[Path]:
        """All artifact files currently in the store (sorted for stability)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))
