"""Content-addressed JSON artifact store for experiment results.

Every completed :class:`repro.experiments.specs.RunSpec` is persisted as
``<root>/<spec_hash>.json`` so that

* re-running an experiment suite resumes from completed cells (a cell is
  looked up by content address before it is executed),
* tables are re-rendered from stored artifacts instead of in-memory state,
* CI jobs and notebooks can consume the raw counters without re-running
  anything.

Artifact schema (``repro-run/v1``)::

    {
      "schema":    "repro-run/v1",
      "spec_hash": "<16 hex digits>",
      "task":      "<task name>",
      "payload":   { ... task keyword arguments ... },
      "result":    { ... task result dictionary ... }
    }

Artifacts are written atomically (temp file + rename) and validated on
read: a corrupt, truncated or mismatching artifact is treated as a cache
miss, never as an error.  An artifact that is not even valid JSON is
additionally *quarantined* -- moved aside to ``<spec_hash>.json.corrupt``
with a logged warning -- so the damaged bytes are preserved for inspection
while the cell cleanly re-executes on the next run.

The store also keeps *failure records* (``<spec_hash>.failed``, schema
``repro-failure/v1``) for cells whose execution failed after exhausting
retries, so the next ``run_all`` can report how many cells it is retrying
and a success can clear the record.  The ``.failed`` suffix keeps them out
of the ``*.json`` artifact glob.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
from pathlib import Path
from typing import Any

from repro.experiments.specs import RunSpec

ARTIFACT_SCHEMA = "repro-run/v1"
FAILURE_SCHEMA = "repro-failure/v1"

logger = logging.getLogger(__name__)

#: Default artifact directory, relative to the current working directory.
DEFAULT_RESULTS_DIR = "results"


#: Per-process counter making concurrent temp names unique: pid alone is not
#: enough once the service's executor threads write the same spec hash at
#: the same time (both would open the same temp file and one ``os.replace``
#: would find it already gone).
_write_serial = itertools.count()


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A crash mid-write can never leave a torn file at ``path``: readers see
    either the previous complete content or the new complete content.  The
    temporary lives next to the target (same filesystem, so the replace is
    atomic) under a name unique per process, thread, and call that no
    ``*.json`` glob matches.  Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(
        f"{path.name}.tmp{os.getpid()}-{threading.get_ident()}-{next(_write_serial)}"
    )
    try:
        temporary.write_text(text, encoding="utf-8")
        os.replace(temporary, path)
    except BaseException:
        temporary.unlink(missing_ok=True)
        raise
    return path


def atomic_write_json(path: str | Path, payload: Any) -> Path:
    """Serialise ``payload`` as stable JSON and write it atomically.

    The artifact store, the ``results.json`` suite summary and the rendered
    table output all write through here, so a crashed or interrupted run
    can never corrupt a summary that downstream tabulation or CI trusts.
    """
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


class ResultStore:
    """A directory of ``<spec_hash>.json`` artifacts."""

    def __init__(self, root: str | Path = DEFAULT_RESULTS_DIR) -> None:
        self.root = Path(root)

    def path_for(self, spec: RunSpec) -> Path:
        """Where the artifact for ``spec`` lives (whether or not it exists)."""
        return self.root / f"{spec.spec_hash}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return self.get(spec) is not None

    def get(self, spec: RunSpec) -> dict[str, Any] | None:
        """The stored result for ``spec``, or ``None`` on any kind of miss.

        A file that is not valid JSON (truncated write, disk corruption) is
        quarantined to ``<name>.corrupt`` with a logged warning; the cell
        then re-executes cleanly instead of the resume path raising.
        """
        path = self.path_for(spec)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            artifact = json.loads(text)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(artifact, dict):
            return None
        if artifact.get("schema") != ARTIFACT_SCHEMA:
            return None
        if artifact.get("spec_hash") != spec.spec_hash or artifact.get("task") != spec.task:
            return None
        result = artifact.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: RunSpec, result: dict[str, Any]) -> Path:
        """Persist ``result`` for ``spec`` atomically; returns the path."""
        artifact = {
            "schema": ARTIFACT_SCHEMA,
            "spec_hash": spec.spec_hash,
            "task": spec.task,
            "payload": spec.payload,
            "result": result,
        }
        return atomic_write_json(self.path_for(spec), artifact)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt artifact aside to ``<name>.corrupt``."""
        quarantined = path.with_name(f"{path.name}.corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            return
        logger.warning(
            "quarantined corrupt artifact %s -> %s; the cell will re-execute",
            path,
            quarantined.name,
        )

    def artifact_paths(self) -> list[Path]:
        """All artifact files currently in the store (sorted for stability)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def list(self) -> list[dict[str, Any]]:
        """All valid artifacts in the store, sorted by spec hash.

        Sidecar files are skipped, never read as artifacts: ``.failed``
        failure records, ``.corrupt`` quarantines, in-flight ``.tmp<pid>``
        temporaries, and any ``*.json`` that is not a ``repro-run/v1``
        document (e.g. a ``results.json`` suite summary).  This is a pure
        read -- unlike :meth:`get`, a damaged file is left in place, not
        quarantined, because no spec asked for it.
        """
        artifacts: list[dict[str, Any]] = []
        if not self.root.is_dir():
            return artifacts
        for path in sorted(self.root.iterdir()):
            if path.suffix != ".json" or not path.is_file():
                continue
            try:
                artifact = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(artifact, dict) or artifact.get("schema") != ARTIFACT_SCHEMA:
                continue
            if not isinstance(artifact.get("result"), dict):
                continue
            artifacts.append(artifact)
        return artifacts

    def __iter__(self):
        """Iterate over valid artifacts (same filtering as :meth:`list`)."""
        return iter(self.list())

    # -- failure records ------------------------------------------------

    def failure_path_for(self, spec: RunSpec) -> Path:
        """Where the failure record for ``spec`` lives (if any)."""
        return self.root / f"{spec.spec_hash}.failed"

    def put_failure(self, spec: RunSpec, error: str, attempts: int = 1) -> Path:
        """Persist a small failure record so the next run can report it."""
        record = {
            "schema": FAILURE_SCHEMA,
            "spec_hash": spec.spec_hash,
            "task": spec.task,
            "attempts": attempts,
            "error": error,
        }
        return atomic_write_json(self.failure_path_for(spec), record)

    def get_failure(self, spec: RunSpec) -> dict[str, Any] | None:
        """The failure record for ``spec``, or ``None``."""
        path = self.failure_path_for(spec)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("schema") != FAILURE_SCHEMA:
            return None
        if record.get("spec_hash") != spec.spec_hash:
            return None
        return record

    def clear_failure(self, spec: RunSpec) -> None:
        """Drop the failure record for ``spec`` (after a later success)."""
        self.failure_path_for(spec).unlink(missing_ok=True)
