"""EXP5 -- quality of the colour coding (Lemma 3 and the derandomization).

Claims:

* Lemma 3: for a random 4-wise independent colouring with ``c = sqrt(E/M)``
  colours, ``E[X_xi] <= E * M`` where ``X_xi`` counts pairs of edges falling
  in the same colour class.  Averaging the measured ``X_xi`` over seeds
  should land at or below 1.0 in units of ``E * M``.
* Section 4: the greedy deterministic colouring satisfies
  ``X_xi <= e * E * M``, with no randomness at all.
"""

from __future__ import annotations

import math

from repro.analysis.bounds import expected_colour_collisions
from repro.analysis.model import MachineParams
from repro.experiments.runner import run_on_edges
from repro.experiments.tables import Table
from repro.experiments.workloads import dense_random, skewed, sparse_random

EXPERIMENT_ID = "EXP5"
TITLE = "Colour-coding balance: X_xi against the E*M bound"
CLAIM = "Random colouring: mean X_xi <= E*M (Lemma 3); greedy deterministic: X_xi <= e*E*M"

PARAMS = MachineParams(memory_words=128, block_words=16)
QUICK_SEEDS = tuple(range(5))
FULL_SEEDS = tuple(range(15))


def run(quick: bool = True) -> Table:
    """Measure X_xi across seeds and workloads; values are in units of E*M."""
    seeds = QUICK_SEEDS if quick else FULL_SEEDS
    edge_target = 1024 if quick else 3072
    workloads = [
        sparse_random(edge_target),
        dense_random(edge_target),
        skewed(edge_target),
    ]
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "workload",
            "E",
            "colours",
            "mean X/EM (random)",
            "max X/EM (random)",
            "X/EM (deterministic)",
            "certified",
        ),
    )
    for workload in workloads:
        bound = expected_colour_collisions(workload.num_edges, PARAMS.memory_words)
        normalised: list[float] = []
        colours = None
        for seed in seeds:
            result = run_on_edges(workload.edges, "cache_aware", PARAMS, seed=seed)
            normalised.append(result.report.x_xi / bound)
            colours = result.report.num_colors
        deterministic = run_on_edges(
            workload.edges, "deterministic", PARAMS, max_family_size=64
        )
        det_normalised = deterministic.report.x_xi / bound
        table.add_row(
            workload.name,
            workload.num_edges,
            colours,
            sum(normalised) / len(normalised),
            max(normalised),
            det_normalised,
            deterministic.report.certified,
        )
    table.add_note(
        f"bound is E*M with M={PARAMS.memory_words}; Lemma 3 guarantees the mean of the "
        "random column is <= 1.0, Section 4 guarantees the deterministic column is <= e "
        f"= {math.e:.2f}"
    )
    return table
