"""EXP5 -- quality of the colour coding (Lemma 3 and the derandomization).

Claims:

* Lemma 3: for a random 4-wise independent colouring with ``c = sqrt(E/M)``
  colours, ``E[X_xi] <= E * M`` where ``X_xi`` counts pairs of edges falling
  in the same colour class.  Averaging the measured ``X_xi`` over seeds
  should land at or below 1.0 in units of ``E * M``.
* Section 4: the greedy deterministic colouring satisfies
  ``X_xi <= e * E * M``, with no randomness at all.
"""

from __future__ import annotations

import math

from repro.analysis.bounds import expected_colour_collisions
from repro.analysis.model import MachineParams
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP5"
TITLE = "Colour-coding balance: X_xi against the E*M bound"
CLAIM = "Random colouring: mean X_xi <= E*M (Lemma 3); greedy deterministic: X_xi <= e*E*M"

PARAMS = MachineParams(memory_words=128, block_words=16)
QUICK_SEEDS = tuple(range(5))
FULL_SEEDS = tuple(range(15))
WORKLOAD_FAMILIES = ("sparse_random", "dense_random", "skewed")


def _cells(quick: bool) -> list[tuple[str, dict]]:
    """Per workload family: one cache-aware spec per seed plus one greedy."""
    seeds = QUICK_SEEDS if quick else FULL_SEEDS
    edge_target = 1024 if quick else 3072
    cells: list[tuple[str, dict]] = []
    for family in WORKLOAD_FAMILIES:
        reference = workload_ref(family, num_edges=edge_target)
        random_specs = [
            make_spec(
                "edges",
                workload=reference,
                algorithm="cache_aware",
                memory=PARAMS.memory_words,
                block=PARAMS.block_words,
                seed=seed,
            )
            for seed in seeds
        ]
        deterministic = make_spec(
            "edges",
            workload=reference,
            algorithm="deterministic",
            memory=PARAMS.memory_words,
            block=PARAMS.block_words,
            seed=0,
            options={"max_family_size": 64},
        )
        cells.append((family, {"random": random_specs, "deterministic": deterministic}))
    return cells


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    flat: list[RunSpec] = []
    for _, cell in _cells(quick):
        flat.extend(cell["random"])
        flat.append(cell["deterministic"])
    return flat


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "workload",
            "E",
            "colours",
            "mean X/EM (random)",
            "max X/EM (random)",
            "X/EM (deterministic)",
            "certified",
        ),
    )
    for _, cell in _cells(quick):
        random_results = [results[spec] for spec in cell["random"]]
        deterministic = results[cell["deterministic"]]
        num_edges = random_results[0]["num_edges"]
        bound = expected_colour_collisions(num_edges, PARAMS.memory_words)
        normalised = [result["report"]["x_xi"] / bound for result in random_results]
        table.add_row(
            random_results[0]["workload"],
            num_edges,
            random_results[0]["report"]["num_colors"],
            sum(normalised) / len(normalised),
            max(normalised),
            deterministic["report"]["x_xi"] / bound,
            deterministic["report"]["certified"],
        )
    table.add_note(
        f"bound is E*M with M={PARAMS.memory_words}; Lemma 3 guarantees the mean of the "
        "random column is <= 1.0, Section 4 guarantees the deterministic column is <= e "
        f"= {math.e:.2f}"
    )
    return table


def run(quick: bool = True) -> Table:
    """Run the seed sweep serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
