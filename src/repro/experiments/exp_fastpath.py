"""EXP13 -- the vectorized in-memory backend versus the reference oracle.

Claim (engineering, not a paper theorem): the array-native compact-forward
kernels (:mod:`repro.fastpath`) enumerate exactly the same triangles as the
pure-Python in-memory oracle on every workload, while running the count
query several times faster once ``E`` is large enough to amortise the array
setup.  The experiment sweeps ``E`` across three backends (``in_memory``,
``vector_count``, ``vector_enum``) on the generic sparse-random workload and
tabulates triangle parity plus the wall-clock speedup of the count kernel.

No simulated I/O appears in this table: all three algorithms run on the
``in-memory`` substrate, so the quantity under test is real wall time --
the "as fast as the hardware allows" axis of the roadmap rather than the
paper's I/O axis.
"""

from __future__ import annotations

from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP13"
TITLE = "Vectorized in-memory backend versus the reference oracle"
CLAIM = (
    "vector_count/vector_enum match the in_memory oracle triangle for triangle "
    "and the vectorized count pulls ahead as E grows"
)

#: The machine parameters are carried for spec-schema uniformity only; the
#: in-memory substrate never touches the simulated disk.
MEMORY_WORDS = 256
BLOCK_WORDS = 16
QUICK_EDGE_COUNTS = (2_000, 8_000)
FULL_EDGE_COUNTS = (2_000, 8_000, 32_000, 100_000)
ALGORITHMS = ("in_memory", "vector_count", "vector_enum")


def _cells(quick: bool) -> list[tuple[int, dict[str, RunSpec]]]:
    """One cell dictionary (algorithm -> spec) per swept edge count."""
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    cells: list[tuple[int, dict[str, RunSpec]]] = []
    for num_edges in edge_counts:
        reference = workload_ref("sparse_random", num_edges=num_edges)
        cell = {
            algorithm: make_spec(
                "edges",
                workload=reference,
                algorithm=algorithm,
                memory=MEMORY_WORDS,
                block=BLOCK_WORDS,
                seed=1,
            )
            for algorithm in ALGORITHMS
        }
        cells.append((num_edges, cell))
    return cells


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [spec for _, cell in _cells(quick) for spec in cell.values()]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "E",
            "triangles",
            "parity",
            "oracle_ms",
            "vec_count_ms",
            "vec_enum_ms",
            "count_speedup",
        ),
    )
    for num_edges, cell in _cells(quick):
        row = {algorithm: results[spec] for algorithm, spec in cell.items()}
        reference = row["in_memory"]
        parity = all(
            row[algorithm]["triangles"] == reference["triangles"] for algorithm in ALGORITHMS
        )
        oracle_seconds = float(reference["wall_time_seconds"])
        count_seconds = float(row["vector_count"]["wall_time_seconds"])
        enum_seconds = float(row["vector_enum"]["wall_time_seconds"])
        table.add_row(
            num_edges,
            reference["triangles"],
            "ok" if parity else "MISMATCH",
            round(oracle_seconds * 1000, 2),
            round(count_seconds * 1000, 2),
            round(enum_seconds * 1000, 2),
            round(oracle_seconds / count_seconds, 2) if count_seconds > 0 else "-",
        )
    table.add_note(
        "all three backends run on the in-memory substrate: no simulated I/O, "
        "wall time is the measured quantity (stored per cell, stable under resume)"
    )
    return table


def run(quick: bool = True) -> Table:
    """Run the sweep serially (legacy entry point) and return the table."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
