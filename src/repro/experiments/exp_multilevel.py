"""EXP12 -- one cache-oblivious run, a whole memory hierarchy.

Claim (Section 1.3 / Theorem 1, via Frigo et al. Lemma 6.4): because the
cache-oblivious algorithm is optimal for a single cache level and satisfies
the regularity condition, it is simultaneously optimal on *every* level of a
multilevel hierarchy with LRU replacement.  Operationally: replaying the one
and only access stream of a single execution against several LRU caches of
increasing size must give, at every level, the same I/O count a dedicated
single-level run would give -- and those counts must decrease monotonically
with the level size.
"""

from __future__ import annotations

from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP12"
TITLE = "Multilevel LRU: per-level I/Os of a single cache-oblivious run"
CLAIM = (
    "One execution is simultaneously efficient at every cache level: per-level counts match "
    "dedicated single-level runs and decrease with the level size"
)

BLOCK_WORDS = 16
QUICK_EDGES = 512
FULL_EDGES = 1024
#: Level name -> memory words; a toy L1 / L2 / L3 / RAM hierarchy.
LEVELS = {"L1": 64, "L2": 256, "L3": 1024, "RAM": 4096}


def _cells(quick: bool) -> tuple[RunSpec, dict[str, RunSpec]]:
    """The multilevel replay spec plus one dedicated control spec per level."""
    reference = workload_ref("sparse_random", num_edges=QUICK_EDGES if quick else FULL_EDGES)
    replay = make_spec(
        "multilevel", workload=reference, levels=LEVELS, block=BLOCK_WORDS, seed=12
    )
    dedicated = {
        name: make_spec(
            "oblivious_dedicated",
            workload=reference,
            memory=memory,
            block=BLOCK_WORDS,
            seed=12,
        )
        for name, memory in LEVELS.items()
    }
    return replay, dedicated


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    replay, dedicated = _cells(quick)
    return [replay, *dedicated.values()]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    replay_spec, dedicated_specs = _cells(quick)
    replay = results[replay_spec]
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("level", "M (words)", "I/Os (multilevel run)", "I/Os (dedicated run)", "match"),
    )
    for name, memory in LEVELS.items():
        dedicated = results[dedicated_specs[name]]
        table.add_row(
            name,
            memory,
            replay["totals"][name],
            dedicated["total_ios"],
            replay["totals"][name] == dedicated["total_ios"],
        )
    table.add_note(
        f"E = {replay['num_edges']}, B = {BLOCK_WORDS}, triangles = {replay['triangles']}; "
        "the access stream is produced once and every level observes it (inclusive multilevel LRU)"
    )
    return table


def run(quick: bool = True) -> Table:
    """Run the multilevel comparison serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
