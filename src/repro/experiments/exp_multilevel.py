"""EXP12 -- one cache-oblivious run, a whole memory hierarchy.

Claim (Section 1.3 / Theorem 1, via Frigo et al. Lemma 6.4): because the
cache-oblivious algorithm is optimal for a single cache level and satisfies
the regularity condition, it is simultaneously optimal on *every* level of a
multilevel hierarchy with LRU replacement.  Operationally: replaying the one
and only access stream of a single execution against several LRU caches of
increasing size must give, at every level, the same I/O count a dedicated
single-level run would give -- and those counts must decrease monotonically
with the level size.
"""

from __future__ import annotations

from repro.analysis.model import MachineParams
from repro.core.cache_oblivious import cache_oblivious_randomized
from repro.core.emit import CountingSink
from repro.experiments.tables import Table
from repro.experiments.workloads import sparse_random
from repro.extmem.multilevel import attach_multilevel
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.io import edges_to_vector

EXPERIMENT_ID = "EXP12"
TITLE = "Multilevel LRU: per-level I/Os of a single cache-oblivious run"
CLAIM = (
    "One execution is simultaneously efficient at every cache level: per-level counts match "
    "dedicated single-level runs and decrease with the level size"
)

BLOCK_WORDS = 16
QUICK_EDGES = 512
FULL_EDGES = 1024
#: Level name -> memory words; a toy L1 / L2 / L3 / RAM hierarchy.
LEVELS = {"L1": 64, "L2": 256, "L3": 1024, "RAM": 4096}


def run(quick: bool = True) -> Table:
    """Run the multilevel comparison and return the result table."""
    workload = sparse_random(QUICK_EDGES if quick else FULL_EDGES)

    vm, cache = attach_multilevel(
        MachineParams(memory_words=max(LEVELS.values()), block_words=BLOCK_WORDS), LEVELS
    )
    vector = edges_to_vector(vm, workload.edges)
    sink = CountingSink()
    cache_oblivious_randomized(vm, vector, sink, seed=12)
    cache.flush()
    multilevel_totals = cache.total_by_level()

    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("level", "M (words)", "I/Os (multilevel run)", "I/Os (dedicated run)", "match"),
    )
    for name, memory in LEVELS.items():
        dedicated_vm = ObliviousVM(MachineParams(memory, BLOCK_WORDS), IOStats())
        dedicated_vector = edges_to_vector(dedicated_vm, workload.edges)
        cache_oblivious_randomized(dedicated_vm, dedicated_vector, CountingSink(), seed=12)
        dedicated_vm.flush()
        table.add_row(
            name,
            memory,
            multilevel_totals[name],
            dedicated_vm.stats.total,
            multilevel_totals[name] == dedicated_vm.stats.total,
        )
    table.add_note(
        f"E = {workload.num_edges}, B = {BLOCK_WORDS}, triangles = {sink.count}; the access "
        "stream is produced once and every level observes it (inclusive multilevel LRU)"
    )
    return table
