"""EXP6 -- subproblem-size decay in the cache-oblivious recursion.

Claim (Lemmas 4 and 5): in the recursion of Section 3 the expected input
size of a subproblem at depth ``i`` decays geometrically (each colour-slot
edge set shrinks by a factor 4 per level), and subproblems much larger than
their expectation are rare.  We instrument the recursion and report, per
level, the number of non-trivial subproblems, their mean and maximum size,
and the decay ratio between consecutive levels.
"""

from __future__ import annotations

from repro.analysis.model import MachineParams
from repro.experiments.runner import run_on_edges
from repro.experiments.tables import Table
from repro.experiments.workloads import sparse_random

EXPERIMENT_ID = "EXP6"
TITLE = "Cache-oblivious recursion: subproblem sizes per level"
CLAIM = "Mean subproblem size decays geometrically with depth (Lemma 4); large outliers are rare"

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_EDGES = 768
FULL_EDGES = 2048


def run(quick: bool = True) -> Table:
    """Run one instrumented cache-oblivious run and tabulate the recursion."""
    workload = sparse_random(QUICK_EDGES if quick else FULL_EDGES)
    result = run_on_edges(workload.edges, "cache_oblivious", PARAMS, seed=6)
    report = result.report

    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("depth", "subproblems", "mean size", "max size", "decay vs previous"),
    )
    previous_mean: float | None = None
    for depth in sorted(report.subproblem_sizes):
        sizes = [s for s in report.subproblems_at(depth)]
        nontrivial = [s for s in sizes if s > 0]
        if not nontrivial:
            continue
        mean_size = sum(nontrivial) / len(nontrivial)
        decay = mean_size / previous_mean if previous_mean else float("nan")
        table.add_row(
            depth,
            len(nontrivial),
            mean_size,
            max(nontrivial),
            decay if previous_mean else "-",
        )
        previous_mean = mean_size
    table.add_note(
        "the level-0 row is the whole input; at level 1 the parent colours coincide so the "
        "expected decay is about 1/2, from level 2 onwards it approaches the 1/4 rate of Lemma 4"
    )
    table.add_note(
        f"E = {workload.num_edges}, base cases invoked: {report.base_case_invocations}, "
        f"local high-degree removals: {report.local_high_degree_processed}"
    )
    return table
