"""EXP6 -- subproblem-size decay in the cache-oblivious recursion.

Claim (Lemmas 4 and 5): in the recursion of Section 3 the expected input
size of a subproblem at depth ``i`` decays geometrically (each colour-slot
edge set shrinks by a factor 4 per level), and subproblems much larger than
their expectation are rare.  We instrument the recursion and report, per
level, the number of non-trivial subproblems, their mean and maximum size,
and the decay ratio between consecutive levels.
"""

from __future__ import annotations

from repro.analysis.model import MachineParams
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP6"
TITLE = "Cache-oblivious recursion: subproblem sizes per level"
CLAIM = "Mean subproblem size decays geometrically with depth (Lemma 4); large outliers are rare"

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_EDGES = 768
FULL_EDGES = 2048


def _cell(quick: bool) -> RunSpec:
    return make_spec(
        "edges",
        workload=workload_ref("sparse_random", num_edges=QUICK_EDGES if quick else FULL_EDGES),
        algorithm="cache_oblivious",
        memory=PARAMS.memory_words,
        block=PARAMS.block_words,
        seed=6,
    )


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [_cell(quick)]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the recursion table from the executed (or stored) cell."""
    result = results[_cell(quick)]
    report = result["report"]

    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("depth", "subproblems", "mean size", "max size", "decay vs previous"),
    )
    previous_mean: float | None = None
    sizes_by_depth = report["subproblem_sizes"]
    for depth in sorted(sizes_by_depth, key=int):
        nontrivial = [size for size in sizes_by_depth[depth] if size > 0]
        if not nontrivial:
            continue
        mean_size = sum(nontrivial) / len(nontrivial)
        table.add_row(
            int(depth),
            len(nontrivial),
            mean_size,
            max(nontrivial),
            mean_size / previous_mean if previous_mean else "-",
        )
        previous_mean = mean_size
    table.add_note(
        "the level-0 row is the whole input; at level 1 the parent colours coincide so the "
        "expected decay is about 1/2, from level 2 onwards it approaches the 1/4 rate of Lemma 4"
    )
    table.add_note(
        f"E = {result['num_edges']}, base cases invoked: {report['base_case_invocations']}, "
        f"local high-degree removals: {report['local_high_degree_processed']}"
    )
    return table


def run(quick: bool = True) -> Table:
    """Run the instrumented cache-oblivious run serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
