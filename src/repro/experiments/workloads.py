"""Named, seeded workload factories shared by experiments and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.generators import (
    barabasi_albert,
    clique,
    complete_bipartite,
    complete_tripartite,
    erdos_renyi_gnm,
    planted_triangles,
    sells_instance,
)
from repro.graph.graph import Graph

#: Default seed for every workload; experiments that study variance across
#: randomness pass explicit seeds instead.
DEFAULT_SEED = 20140622  # PODS 2014 conference date


@dataclass(frozen=True)
class Workload:
    """A named graph workload in canonical (ranked) form."""

    name: str
    graph: Graph
    edges: list[tuple[int, int]]

    @property
    def num_edges(self) -> int:
        return len(self.edges)


def _canonical(name: str, graph: Graph) -> Workload:
    return Workload(name=name, graph=graph, edges=graph.degree_order().edges)


def sparse_random(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """An Erdős–Rényi graph with average degree about 6 (the generic workload)."""
    num_vertices = max(4, num_edges // 3)
    return _canonical(
        f"er-{num_edges}", erdos_renyi_gnm(num_vertices, num_edges, seed=seed)
    )


def dense_random(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """A denser random graph (average degree about 16), more triangles."""
    num_vertices = max(4, num_edges // 8)
    max_edges = num_vertices * (num_vertices - 1) // 2
    return _canonical(
        f"er-dense-{num_edges}",
        erdos_renyi_gnm(num_vertices, min(num_edges, max_edges), seed=seed),
    )


def clique_workload(num_vertices: int) -> Workload:
    """A clique: the triangle-dense worst case of the lower bound."""
    return _canonical(f"clique-{num_vertices}", clique(num_vertices))


def clique_with_edges(target_edges: int) -> Workload:
    """The clique whose edge count is closest to ``target_edges``."""
    num_vertices = max(3, round((1 + math.sqrt(1 + 8 * target_edges)) / 2))
    return clique_workload(num_vertices)


def skewed(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """A preferential-attachment graph plus a global hub: exercises the
    high-degree machinery of both algorithms."""
    attach = 4
    num_vertices = max(attach + 2, num_edges // attach)
    graph = barabasi_albert(num_vertices, attach, seed=seed)
    hub = num_vertices + 1
    for vertex in range(0, num_vertices, 2):
        graph.add_edge(vertex, hub)
    return _canonical(f"skewed-{num_edges}", graph)


def hub(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """A sparse random graph plus two hubs adjacent to *every* vertex.

    Each hub's degree is about ``E/3``, comfortably above the ``sqrt(E*M)``
    threshold for the memory sizes used by the experiments, so this workload
    is guaranteed to exercise the high-degree phase (used by the EXP10
    ablation)."""
    num_vertices = max(4, num_edges // 3)
    graph = erdos_renyi_gnm(num_vertices, num_edges // 3, seed=seed)
    for hub_vertex in (num_vertices + 1, num_vertices + 2):
        for vertex in range(num_vertices):
            graph.add_edge(vertex, hub_vertex)
    graph.add_edge(num_vertices + 1, num_vertices + 2)
    return _canonical(f"hub-{num_edges}", graph)


def triangle_free(num_edges: int) -> Workload:
    """A complete bipartite graph with about ``num_edges`` edges and no triangles."""
    side = max(2, int(math.sqrt(num_edges)))
    return _canonical(f"bipartite-{side}x{side}", complete_bipartite(side, side))


def planted(num_triangles: int, filler_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """Exactly ``num_triangles`` triangles plus a triangle-free filler graph."""
    return _canonical(
        f"planted-{num_triangles}",
        planted_triangles(num_triangles, filler_bipartite_edges=filler_edges, seed=seed),
    )


def tripartite(part_size: int, seed: int = DEFAULT_SEED) -> Workload:
    """A complete tripartite graph (the densest join-style workload)."""
    return _canonical(
        f"tripartite-{part_size}", complete_tripartite(part_size, part_size, part_size)
    )


def join_instance(part_size: int, pair_probability: float = 0.4, seed: int = DEFAULT_SEED):
    """A random ``Sells`` instance for the database-join experiment."""
    return sells_instance(
        num_salespeople=part_size,
        num_brands=part_size,
        num_types=part_size,
        pair_probability=pair_probability,
        seed=seed,
    )
