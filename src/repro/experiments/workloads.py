"""Named, seeded workload factories shared by experiments and benchmarks.

Every factory is registered in :data:`WORKLOAD_FACTORIES` under a stable
name so that a :class:`repro.experiments.specs.RunSpec` can reference a
workload as ``[factory_name, kwargs]`` and a worker process can rebuild it
with :func:`build_workload` -- deterministically, because every generator is
seeded.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.graph.files import read_edge_list
from repro.graph.generators import (
    barabasi_albert,
    chung_lu_power_law,
    clique,
    complete_bipartite,
    complete_tripartite,
    erdos_renyi_gnm,
    planted_partition,
    planted_triangles,
    random_bipartite,
    sells_instance,
)
from repro.graph.graph import Graph

#: Default seed for every workload; experiments that study variance across
#: randomness pass explicit seeds instead.
DEFAULT_SEED = 20140622  # PODS 2014 conference date


@dataclass(frozen=True)
class Workload:
    """A named graph workload in canonical (ranked) form."""

    name: str
    graph: Graph
    edges: list[tuple[int, int]]

    @property
    def num_edges(self) -> int:
        return len(self.edges)


def _canonical(name: str, graph: Graph) -> Workload:
    return Workload(name=name, graph=graph, edges=graph.degree_order().edges)


def sparse_random(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """An Erdős–Rényi graph with average degree about 6 (the generic workload)."""
    num_vertices = max(4, num_edges // 3)
    return _canonical(
        f"er-{num_edges}", erdos_renyi_gnm(num_vertices, num_edges, seed=seed)
    )


def dense_random(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """A denser random graph (average degree about 16), more triangles."""
    num_vertices = max(4, num_edges // 8)
    max_edges = num_vertices * (num_vertices - 1) // 2
    return _canonical(
        f"er-dense-{num_edges}",
        erdos_renyi_gnm(num_vertices, min(num_edges, max_edges), seed=seed),
    )


def clique_workload(num_vertices: int) -> Workload:
    """A clique: the triangle-dense worst case of the lower bound."""
    return _canonical(f"clique-{num_vertices}", clique(num_vertices))


def clique_with_edges(target_edges: int) -> Workload:
    """The clique whose edge count is closest to ``target_edges``."""
    num_vertices = max(3, round((1 + math.sqrt(1 + 8 * target_edges)) / 2))
    return clique_workload(num_vertices)


def skewed(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """A preferential-attachment graph plus a global hub: exercises the
    high-degree machinery of both algorithms."""
    attach = 4
    num_vertices = max(attach + 2, num_edges // attach)
    graph = barabasi_albert(num_vertices, attach, seed=seed)
    hub = num_vertices + 1
    for vertex in range(0, num_vertices, 2):
        graph.add_edge(vertex, hub)
    return _canonical(f"skewed-{num_edges}", graph)


def hub(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """A sparse random graph plus two hubs adjacent to *every* vertex.

    Each hub's degree is about ``E/3``, comfortably above the ``sqrt(E*M)``
    threshold for the memory sizes used by the experiments, so this workload
    is guaranteed to exercise the high-degree phase (used by the EXP10
    ablation)."""
    num_vertices = max(4, num_edges // 3)
    graph = erdos_renyi_gnm(num_vertices, num_edges // 3, seed=seed)
    for hub_vertex in (num_vertices + 1, num_vertices + 2):
        for vertex in range(num_vertices):
            graph.add_edge(vertex, hub_vertex)
    graph.add_edge(num_vertices + 1, num_vertices + 2)
    return _canonical(f"hub-{num_edges}", graph)


def triangle_free(num_edges: int) -> Workload:
    """A complete bipartite graph with about ``num_edges`` edges and no triangles."""
    side = max(2, int(math.sqrt(num_edges)))
    return _canonical(f"bipartite-{side}x{side}", complete_bipartite(side, side))


def planted(num_triangles: int, filler_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """Exactly ``num_triangles`` triangles plus a triangle-free filler graph."""
    return _canonical(
        f"planted-{num_triangles}",
        planted_triangles(num_triangles, filler_bipartite_edges=filler_edges, seed=seed),
    )


def tripartite(part_size: int, seed: int = DEFAULT_SEED) -> Workload:
    """A complete tripartite graph (the densest join-style workload)."""
    return _canonical(
        f"tripartite-{part_size}", complete_tripartite(part_size, part_size, part_size)
    )


def power_law(num_edges: int, seed: int = DEFAULT_SEED, exponent: float = 2.5) -> Workload:
    """A Chung-Lu graph with a power-law degree tail (tunable exponent)."""
    num_vertices = max(4, num_edges // 4)
    return _canonical(
        f"powerlaw-{num_edges}",
        chung_lu_power_law(num_vertices, num_edges, exponent=exponent, seed=seed),
    )


def community(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """A planted-partition graph: dense communities, sparse cross edges.

    About 80% of the edges land inside communities of 16 vertices, so the
    workload is triangle-rich and clustered -- the social-network shape
    missing from the random/clique/skewed trio."""
    intra = max(1, (num_edges * 4) // 5)
    inter = max(0, num_edges - intra)
    size = 16
    count = max(2, math.ceil(intra / 100))
    return _canonical(
        f"community-{num_edges}",
        planted_partition(count, size, intra, inter, seed=seed),
    )


def bipartite_random(num_edges: int, seed: int = DEFAULT_SEED) -> Workload:
    """A random (not complete) bipartite graph: triangle-free at any density."""
    side = max(2, int(math.sqrt(num_edges * 2)) + 1)
    return _canonical(
        f"bipartite-random-{num_edges}",
        random_bipartite(side, side, num_edges, seed=seed),
    )


def file_digest(path: str | Path) -> str:
    """Content digest of an edge-list file (first 16 hex digits of SHA-256)."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()[:16]


def from_file(path: str, digest: str | None = None) -> Workload:
    """Load a SNAP-style whitespace-separated edge-list file as a workload.

    Comment lines starting with ``#`` are ignored and vertex labels may be
    arbitrary strings; the graph is canonicalised (degree-ordered) exactly
    like the synthetic workloads.

    ``digest`` pins the expected file contents (see :func:`file_workload_ref`):
    unlike the synthetic factories, a file workload is not reproducible from
    its arguments alone, so specs must carry the digest for the artifact
    store's content addressing to stay honest when the file changes."""
    if digest is not None:
        actual = file_digest(path)
        if actual != digest:
            raise ValueError(
                f"{path} has content digest {actual} but the spec pinned {digest}; "
                "the file changed since the spec was built"
            )
    graph = read_edge_list(path)
    return _canonical(f"file-{Path(path).stem}", graph)


def file_workload_ref(path: str | Path) -> list:
    """A ``from_file`` workload reference that pins the file's content digest.

    Always build file-workload specs through this helper: the digest lands in
    the spec payload, so editing the file changes every dependent spec hash
    and the store can never serve results computed from a previous version."""
    return ["from_file", {"path": str(path), "digest": file_digest(path)}]


def join_instance(part_size: int, pair_probability: float = 0.4, seed: int = DEFAULT_SEED):
    """A random ``Sells`` instance for the database-join experiment."""
    return sells_instance(
        num_salespeople=part_size,
        num_brands=part_size,
        num_types=part_size,
        pair_probability=pair_probability,
        seed=seed,
    )


#: Stable names for every workload factory a :class:`RunSpec` may reference.
WORKLOAD_FACTORIES: dict[str, Callable[..., Workload]] = {
    "sparse_random": sparse_random,
    "dense_random": dense_random,
    "clique": clique_workload,
    "clique_with_edges": clique_with_edges,
    "skewed": skewed,
    "hub": hub,
    "triangle_free": triangle_free,
    "planted": planted,
    "tripartite": tripartite,
    "power_law": power_law,
    "community": community,
    "bipartite_random": bipartite_random,
    "from_file": from_file,
}


def build_workload(ref: Sequence) -> Workload:
    """Resolve a ``[factory_name, kwargs]`` reference into a workload."""
    try:
        name, kwargs = ref
    except (TypeError, ValueError) as error:
        raise ValueError(f"malformed workload reference {ref!r}") from error
    try:
        factory = WORKLOAD_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload factory {name!r}; available: {', '.join(WORKLOAD_FACTORIES)}"
        ) from None
    return factory(**kwargs)
