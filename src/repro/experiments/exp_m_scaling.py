"""EXP2 -- I/O versus internal memory M at fixed E and B.

Claim (Theorems 1/4 versus Hu-Tao-Chung): our algorithms' I/O complexity
scales like ``M^{-1/2}`` while Hu-Tao-Chung scales like ``M^{-1}`` -- this is
exactly the ``min(sqrt(E/M), sqrt(M))`` improvement factor of the paper.  On
a log-log plot of I/Os against M the slopes should be about -0.5 and -1.
"""

from __future__ import annotations

from repro.analysis.bounds import improvement_factor
from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.experiments.runner import run_on_edges
from repro.experiments.tables import Table
from repro.experiments.workloads import sparse_random

EXPERIMENT_ID = "EXP2"
TITLE = "I/O versus internal memory M (fixed E, B)"
CLAIM = "Our I/Os scale like M^-1/2; Hu-Tao-Chung like M^-1 (slope on log-log plot)"

BLOCK_WORDS = 16
QUICK_EDGES = 2048
FULL_EDGES = 4096
QUICK_MEMORIES = (64, 128, 256)
FULL_MEMORIES = (64, 128, 256, 512, 1024)


def run(quick: bool = True) -> Table:
    """Run the sweep and return the result table."""
    num_edges = QUICK_EDGES if quick else FULL_EDGES
    memories = QUICK_MEMORIES if quick else FULL_MEMORIES
    workload = sparse_random(num_edges)

    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("M", "cache_aware", "hu_tao_chung", "ratio htc/ours", "paper factor sqrt(E/M)"),
    )
    ours_series: list[float] = []
    htc_series: list[float] = []
    for memory in memories:
        params = MachineParams(memory_words=memory, block_words=BLOCK_WORDS)
        ours = run_on_edges(workload.edges, "cache_aware", params, seed=2)
        htc = run_on_edges(workload.edges, "hu_tao_chung", params, seed=2)
        ours_series.append(ours.total_ios)
        htc_series.append(htc.total_ios)
        table.add_row(
            memory,
            ours.total_ios,
            htc.total_ios,
            htc.total_ios / ours.total_ios,
            improvement_factor(workload.num_edges, memory),
        )

    ours_fit = fit_power_law(list(memories), ours_series)
    htc_fit = fit_power_law(list(memories), htc_series)
    table.add_note(
        f"log-log slope in M: cache_aware {ours_fit.exponent:.2f} (theory -0.5), "
        f"hu_tao_chung {htc_fit.exponent:.2f} (theory -1.0)"
    )
    table.add_note(f"E = {workload.num_edges}, B = {BLOCK_WORDS}")
    return table
