"""EXP2 -- I/O versus internal memory M at fixed E and B.

Claim (Theorems 1/4 versus Hu-Tao-Chung): our algorithms' I/O complexity
scales like ``M^{-1/2}`` while Hu-Tao-Chung scales like ``M^{-1}`` -- this is
exactly the ``min(sqrt(E/M), sqrt(M))`` improvement factor of the paper.  On
a log-log plot of I/Os against M the slopes should be about -0.5 and -1.
"""

from __future__ import annotations

from repro.analysis.bounds import improvement_factor
from repro.analysis.verification import fit_power_law
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP2"
TITLE = "I/O versus internal memory M (fixed E, B)"
CLAIM = "Our I/Os scale like M^-1/2; Hu-Tao-Chung like M^-1 (slope on log-log plot)"

BLOCK_WORDS = 16
QUICK_EDGES = 2048
FULL_EDGES = 4096
QUICK_MEMORIES = (64, 128, 256)
FULL_MEMORIES = (64, 128, 256, 512, 1024)


def _cells(quick: bool) -> list[tuple[int, dict[str, RunSpec]]]:
    num_edges = QUICK_EDGES if quick else FULL_EDGES
    reference = workload_ref("sparse_random", num_edges=num_edges)
    memories = QUICK_MEMORIES if quick else FULL_MEMORIES
    return [
        (
            memory,
            {
                algorithm: make_spec(
                    "edges",
                    workload=reference,
                    algorithm=algorithm,
                    memory=memory,
                    block=BLOCK_WORDS,
                    seed=2,
                )
                for algorithm in ("cache_aware", "hu_tao_chung")
            },
        )
        for memory in memories
    ]


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [spec for _, cell in _cells(quick) for spec in cell.values()]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("M", "cache_aware", "hu_tao_chung", "ratio htc/ours", "paper factor sqrt(E/M)"),
    )
    memories: list[int] = []
    ours_series: list[float] = []
    htc_series: list[float] = []
    num_edges = 0
    for memory, cell in _cells(quick):
        ours = results[cell["cache_aware"]]
        htc = results[cell["hu_tao_chung"]]
        num_edges = ours["num_edges"]
        memories.append(memory)
        ours_series.append(ours["total_ios"])
        htc_series.append(htc["total_ios"])
        table.add_row(
            memory,
            ours["total_ios"],
            htc["total_ios"],
            htc["total_ios"] / ours["total_ios"],
            improvement_factor(num_edges, memory),
        )

    ours_fit = fit_power_law(memories, ours_series)
    htc_fit = fit_power_law(memories, htc_series)
    table.add_note(
        f"log-log slope in M: cache_aware {ours_fit.exponent:.2f} (theory -0.5), "
        f"hu_tao_chung {htc_fit.exponent:.2f} (theory -1.0)"
    )
    table.add_note(f"E = {num_edges}, B = {BLOCK_WORDS}")
    return table


def run(quick: bool = True) -> Table:
    """Run the sweep serially (legacy entry point) and return the table."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
