"""EXP1 -- I/O versus E at fixed (M, B): the paper's headline comparison.

Claim (Theorem 4 versus prior work): the cache-aware algorithm uses
``O(E^{3/2} / (sqrt(M) B))`` I/Os whereas Hu-Tao-Chung uses
``O(E^2 / (M B))`` and the block-nested-loop join ``O(E^3 / (M^2 B))``.
Sweeping ``E`` at fixed ``M`` and ``B``, the log-log slopes should come out
near 1.5, 2 and 3 respectively, and the paper's algorithm must overtake
Hu-Tao-Chung once ``E / M`` is large enough (the improvement factor is
``sqrt(E / M)``).
"""

from __future__ import annotations

from repro.analysis.bounds import cache_aware_io, dementiev_io, hu_tao_chung_io
from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP1"
TITLE = "I/O versus number of edges E (fixed M, B)"
CLAIM = (
    "Cache-aware algorithm grows like E^1.5, Hu-Tao-Chung like E^2, BNLJ like E^3; "
    "ours wins once E >> M"
)

PARAMS = MachineParams(memory_words=256, block_words=16)
MEMORY_WORDS = PARAMS.memory_words
BLOCK_WORDS = PARAMS.block_words
QUICK_EDGE_COUNTS = (512, 1024, 2048)
FULL_EDGE_COUNTS = (512, 1024, 2048, 4096, 8192)
#: The cubic baseline is only run on the smaller inputs (it is the point of
#: the experiment that it becomes untenable).
BNLJ_LIMIT = 2048
ALGORITHMS = ("cache_aware", "deterministic", "hu_tao_chung", "dementiev")


def _cells(quick: bool) -> list[tuple[int, dict[str, RunSpec]]]:
    """One cell dictionary (algorithm -> spec) per swept edge count."""
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    cells: list[tuple[int, dict[str, RunSpec]]] = []
    for num_edges in edge_counts:
        reference = workload_ref("sparse_random", num_edges=num_edges)
        cell = {
            algorithm: make_spec(
                "edges",
                workload=reference,
                algorithm=algorithm,
                memory=MEMORY_WORDS,
                block=BLOCK_WORDS,
                seed=1,
            )
            for algorithm in ALGORITHMS
        }
        if num_edges <= BNLJ_LIMIT:
            cell["bnlj"] = make_spec(
                "edges",
                workload=reference,
                algorithm="bnlj",
                memory=MEMORY_WORDS,
                block=BLOCK_WORDS,
                seed=1,
            )
        cells.append((num_edges, cell))
    return cells


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return [spec for _, cell in _cells(quick) for spec in cell.values()]


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    params = PARAMS
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "E",
            "triangles",
            "cache_aware",
            "deterministic",
            "hu_tao_chung",
            "dementiev",
            "bnlj",
            "pred_ours",
            "pred_htc",
        ),
    )

    measured: dict[str, list[float]] = {"cache_aware": [], "hu_tao_chung": [], "bnlj": []}
    swept_edges: list[int] = []
    bnlj_edges: list[int] = []
    for _, cell in _cells(quick):
        row = {algorithm: results[spec] for algorithm, spec in cell.items()}
        num_edges = row["cache_aware"]["num_edges"]
        swept_edges.append(num_edges)
        measured["cache_aware"].append(float(row["cache_aware"]["total_ios"]))
        measured["hu_tao_chung"].append(float(row["hu_tao_chung"]["total_ios"]))
        if "bnlj" in row:
            measured["bnlj"].append(float(row["bnlj"]["total_ios"]))
            bnlj_edges.append(num_edges)
        table.add_row(
            num_edges,
            row["cache_aware"]["triangles"],
            row["cache_aware"]["total_ios"],
            row["deterministic"]["total_ios"],
            row["hu_tao_chung"]["total_ios"],
            row["dementiev"]["total_ios"],
            row["bnlj"]["total_ios"] if "bnlj" in row else "-",
            round(cache_aware_io(num_edges, params)),
            round(hu_tao_chung_io(num_edges, params)),
        )

    ours_fit = fit_power_law(swept_edges, measured["cache_aware"])
    htc_fit = fit_power_law(swept_edges, measured["hu_tao_chung"])
    table.add_note(
        f"log-log slope: cache_aware {ours_fit.exponent:.2f} (theory 1.5), "
        f"hu_tao_chung {htc_fit.exponent:.2f} (theory 2.0)"
    )
    if len(bnlj_edges) >= 2:
        bnlj_fit = fit_power_law(bnlj_edges, measured["bnlj"])
        table.add_note(f"log-log slope: bnlj {bnlj_fit.exponent:.2f} (theory 3.0)")
    table.add_note(
        f"machine: M={MEMORY_WORDS}, B={BLOCK_WORDS}; "
        f"Dementiev prediction at the largest E: {round(dementiev_io(swept_edges[-1], params))}"
    )
    return table


def run(quick: bool = True) -> Table:
    """Run the sweep serially (legacy entry point) and return the table."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
