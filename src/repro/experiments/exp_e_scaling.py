"""EXP1 -- I/O versus E at fixed (M, B): the paper's headline comparison.

Claim (Theorem 4 versus prior work): the cache-aware algorithm uses
``O(E^{3/2} / (sqrt(M) B))`` I/Os whereas Hu-Tao-Chung uses
``O(E^2 / (M B))`` and the block-nested-loop join ``O(E^3 / (M^2 B))``.
Sweeping ``E`` at fixed ``M`` and ``B``, the log-log slopes should come out
near 1.5, 2 and 3 respectively, and the paper's algorithm must overtake
Hu-Tao-Chung once ``E / M`` is large enough (the improvement factor is
``sqrt(E / M)``).
"""

from __future__ import annotations

from repro.analysis.bounds import cache_aware_io, dementiev_io, hu_tao_chung_io
from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law
from repro.experiments.runner import run_on_edges
from repro.experiments.tables import Table
from repro.experiments.workloads import sparse_random

EXPERIMENT_ID = "EXP1"
TITLE = "I/O versus number of edges E (fixed M, B)"
CLAIM = (
    "Cache-aware algorithm grows like E^1.5, Hu-Tao-Chung like E^2, BNLJ like E^3; "
    "ours wins once E >> M"
)

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_EDGE_COUNTS = (512, 1024, 2048)
FULL_EDGE_COUNTS = (512, 1024, 2048, 4096, 8192)
#: The cubic baseline is only run on the smaller inputs (it is the point of
#: the experiment that it becomes untenable).
BNLJ_LIMIT = 2048


def run(quick: bool = True) -> Table:
    """Run the sweep and return the result table."""
    edge_counts = QUICK_EDGE_COUNTS if quick else FULL_EDGE_COUNTS
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=(
            "E",
            "triangles",
            "cache_aware",
            "deterministic",
            "hu_tao_chung",
            "dementiev",
            "bnlj",
            "pred_ours",
            "pred_htc",
        ),
    )

    measured: dict[str, list[float]] = {"cache_aware": [], "hu_tao_chung": [], "bnlj": []}
    swept_edges: list[int] = []
    bnlj_edges: list[int] = []
    for num_edges in edge_counts:
        workload = sparse_random(num_edges)
        row: dict[str, float | str] = {}
        for algorithm in ("cache_aware", "deterministic", "hu_tao_chung", "dementiev"):
            result = run_on_edges(workload.edges, algorithm, PARAMS, seed=1)
            row[algorithm] = result.total_ios
            triangles = result.triangles
        if num_edges <= BNLJ_LIMIT:
            bnlj_result = run_on_edges(workload.edges, "bnlj", PARAMS, seed=1)
            row["bnlj"] = bnlj_result.total_ios
            measured["bnlj"].append(bnlj_result.total_ios)
            bnlj_edges.append(workload.num_edges)
        else:
            row["bnlj"] = "-"
        swept_edges.append(workload.num_edges)
        measured["cache_aware"].append(float(row["cache_aware"]))
        measured["hu_tao_chung"].append(float(row["hu_tao_chung"]))
        table.add_row(
            workload.num_edges,
            triangles,
            row["cache_aware"],
            row["deterministic"],
            row["hu_tao_chung"],
            row["dementiev"],
            row["bnlj"],
            round(cache_aware_io(workload.num_edges, PARAMS)),
            round(hu_tao_chung_io(workload.num_edges, PARAMS)),
        )

    ours_fit = fit_power_law(swept_edges, measured["cache_aware"])
    htc_fit = fit_power_law(swept_edges, measured["hu_tao_chung"])
    table.add_note(
        f"log-log slope: cache_aware {ours_fit.exponent:.2f} (theory 1.5), "
        f"hu_tao_chung {htc_fit.exponent:.2f} (theory 2.0)"
    )
    if len(bnlj_edges) >= 2:
        bnlj_fit = fit_power_law(bnlj_edges, measured["bnlj"])
        table.add_note(f"log-log slope: bnlj {bnlj_fit.exponent:.2f} (theory 3.0)")
    table.add_note(
        f"machine: M={PARAMS.memory_words}, B={PARAMS.block_words}; "
        f"Dementiev prediction at the largest E: {round(dementiev_io(swept_edges[-1], PARAMS))}"
    )
    return table
