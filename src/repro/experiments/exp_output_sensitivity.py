"""EXP7 -- output sensitivity of the lower bound.

Claim (Theorem 3, output-sensitive form): the number of I/Os any algorithm
needs grows with the number of emitted triangles ``t`` as
``t / (sqrt(M) B) + t^{2/3} / B``, while the upper bound of the paper's
algorithms depends only on ``E``.  Holding ``E`` roughly fixed and varying
``t`` from zero (bipartite graph) to ``Theta(E^{3/2})`` (clique), the
measured I/Os should stay roughly flat while the lower bound climbs towards
them -- i.e. the algorithm is increasingly close to optimal as the output
gets larger, and is never below the bound.
"""

from __future__ import annotations

from repro.analysis.bounds import lower_bound_io
from repro.analysis.model import MachineParams
from repro.experiments.parallel import ResultSet, execute_specs
from repro.experiments.specs import RunSpec, make_spec, workload_ref
from repro.experiments.tables import Table

EXPERIMENT_ID = "EXP7"
TITLE = "Output sensitivity: I/O versus number of triangles t at comparable E"
CLAIM = "Measured I/Os never fall below the lower bound and approach it as t grows"

PARAMS = MachineParams(memory_words=256, block_words=16)
QUICK_TARGET_EDGES = 600
FULL_TARGET_EDGES = 1500


def _workload_refs(quick: bool) -> list[list]:
    target = QUICK_TARGET_EDGES if quick else FULL_TARGET_EDGES
    part = max(3, round((target / 3) ** 0.5))
    return [
        workload_ref("triangle_free", num_edges=target),
        workload_ref("planted", num_triangles=target // 40, filler_edges=target),
        workload_ref("planted", num_triangles=target // 6, filler_edges=target // 2),
        workload_ref("sparse_random", num_edges=target),
        workload_ref("tripartite", part_size=part),
        workload_ref("clique_with_edges", target_edges=target),
    ]


def _cells(quick: bool) -> list[RunSpec]:
    return [
        make_spec(
            "edges",
            workload=reference,
            algorithm="cache_aware",
            memory=PARAMS.memory_words,
            block=PARAMS.block_words,
            seed=7,
        )
        for reference in _workload_refs(quick)
    ]


def specs(quick: bool = True) -> list[RunSpec]:
    """The flat list of independent run specs of this experiment."""
    return _cells(quick)


def tabulate(results: ResultSet, quick: bool = True) -> Table:
    """Rebuild the result table from executed (or stored) cells."""
    table = Table(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        headers=("workload", "E", "t", "cache_aware I/O", "lower bound", "I/O / bound"),
    )
    for spec in _cells(quick):
        result = results[spec]
        bound = lower_bound_io(result["triangles"], PARAMS)
        table.add_row(
            result["workload"],
            result["num_edges"],
            result["triangles"],
            result["total_ios"],
            round(bound, 1),
            result["total_ios"] / bound if bound > 0 else "-",
        )
    table.add_note(
        "for triangle-poor inputs the E-dependent terms dominate and the gap to the "
        "output-sensitive bound is large; for triangle-dense inputs (clique, tripartite) "
        "the ratio shrinks towards a constant, which is Theorem 3's tightness statement"
    )
    table.add_note(f"machine: M={PARAMS.memory_words}, B={PARAMS.block_words}")
    return table


def run(quick: bool = True) -> Table:
    """Run the t-sweep serially (legacy entry point)."""
    return tabulate(execute_specs(specs(quick)), quick=quick)
