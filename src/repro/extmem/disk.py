"""Simulated disk: named files of records laid out in blocks.

The disk itself never charges I/Os -- it is inert storage.  All accounting
happens in :mod:`repro.extmem.machine` (explicit, cache-aware access) and
:mod:`repro.extmem.cache` / :mod:`repro.extmem.oblivious` (cache-oblivious
access).  The disk does, however, track how many words are currently
allocated and the peak allocation, which is what the paper's "``O(E)`` words
on disk" claims are measured against.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import FileClosedError

Record = Any


class ExtFile:
    """A file of records stored on the simulated disk.

    Records are opaque Python objects; by convention each record occupies one
    machine word (see DESIGN.md, "Units").  Files are append-only through the
    machine's buffered writers; random reads happen through explicit loads.
    Direct access to :attr:`_records` is reserved for tests and oracles.
    """

    def __init__(self, disk: "Disk", name: str, records: list[Record] | None = None) -> None:
        self._disk = disk
        self.name = name
        self._records: list[Record] = list(records) if records is not None else []
        self._deleted = False
        disk._register(self)

    def _check_open(self) -> None:
        if self._deleted:
            raise FileClosedError(f"file {self.name!r} has been deleted")

    def __len__(self) -> int:
        self._check_open()
        return len(self._records)

    @property
    def deleted(self) -> bool:
        """Whether :meth:`delete` has been called on this file."""
        return self._deleted

    def slice(self, start: int, stop: int) -> "FileSlice":
        """Return a zero-copy view of ``self[start:stop]``."""
        self._check_open()
        return FileSlice(self, start, stop)

    def as_slice(self) -> "FileSlice":
        """Return a view covering the whole file."""
        return self.slice(0, len(self))

    def delete(self) -> None:
        """Remove the file from disk, releasing its space.

        Deleting an already-deleted file is a no-op so that cleanup code can
        be written without guards.
        """
        if self._deleted:
            return
        self._deleted = True
        self._disk._unregister(self)
        self._records = []

    # Internal primitives used by the machine / writers. They do not charge
    # I/Os themselves; callers are responsible for accounting.
    def _read_range(self, start: int, stop: int) -> list[Record]:
        self._check_open()
        return self._records[start:stop]

    def _append_many(self, records: Sequence[Record]) -> None:
        self._check_open()
        self._records.extend(records)
        self._disk._grow(len(records))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "deleted" if self._deleted else f"{len(self._records)} records"
        return f"ExtFile({self.name!r}, {state})"


class FileSlice:
    """A contiguous, read-only view over a range of an :class:`ExtFile`."""

    def __init__(self, file: ExtFile, start: int, stop: int) -> None:
        if start < 0 or stop < start:
            raise ValueError(f"invalid slice bounds [{start}, {stop})")
        stop = min(stop, len(file))
        start = min(start, stop)
        self.file = file
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def slice(self, start: int, stop: int) -> "FileSlice":
        """Return a sub-view, with bounds relative to this slice.

        Bounds are validated against this slice, not just the parent file: a
        negative ``start`` is rejected and bounds beyond the end of the view
        are clamped, so a sub-view can never reach outside its parent.
        """
        if start < 0 or stop < start:
            raise ValueError(f"invalid slice bounds [{start}, {stop})")
        length = self.stop - self.start
        start = min(start, length)
        stop = min(stop, length)
        return FileSlice(self.file, self.start + start, self.start + stop)

    def _read_range(self, start: int, stop: int) -> list[Record]:
        return self.file._read_range(self.start + start, min(self.start + stop, self.stop))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FileSlice({self.file.name!r}, [{self.start}, {self.stop}))"


# Either a whole file or a slice of one: both expose __len__ and _read_range.
Readable = ExtFile | FileSlice


class Disk:
    """The simulated external memory: a collection of record files.

    Parameters
    ----------
    track_space:
        When true (the default) the disk records the current and peak number
        of allocated words, which experiments use to check the paper's
        ``O(E)`` disk-space claims.
    """

    def __init__(self, track_space: bool = True) -> None:
        self._files: dict[str, ExtFile] = {}
        self._name_counter = itertools.count()
        self.track_space = track_space
        self.current_words = 0
        self.peak_words = 0

    def file(self, name: str | None = None, records: Iterable[Record] | None = None) -> ExtFile:
        """Create a new file, optionally pre-populated with ``records``.

        Pre-populating counts toward disk space but charges no I/Os; it
        models the input residing on disk before the algorithm starts, as the
        external-memory model assumes.
        """
        if name is None:
            name = f"tmp-{next(self._name_counter)}"
        if name in self._files:
            raise ValueError(f"a file named {name!r} already exists")
        materialised = list(records) if records is not None else []
        file = ExtFile(self, name, materialised)
        if materialised:
            self._grow(len(materialised))
        return file

    def rename(self, file: ExtFile, new_name: str) -> ExtFile:
        """Rename a live file in place (no I/O, no space accounting).

        This is the primitive the external sort uses to deliver its output
        under a requested name: the records are not copied, so the peak
        disk-space counter is unaffected (re-creating the file would briefly
        double-count its words).
        """
        file._check_open()
        if self._files.get(file.name) is not file:
            raise ValueError(f"file {file.name!r} does not live on this disk")
        if new_name == file.name:
            return file
        if new_name in self._files:
            raise ValueError(f"a file named {new_name!r} already exists")
        del self._files[file.name]
        file.name = new_name
        self._files[new_name] = file
        return file

    def _register(self, file: ExtFile) -> None:
        self._files[file.name] = file

    def _unregister(self, file: ExtFile) -> None:
        self._files.pop(file.name, None)
        self._shrink(len(file._records))

    def _grow(self, words: int) -> None:
        if not self.track_space:
            return
        self.current_words += words
        if self.current_words > self.peak_words:
            self.peak_words = self.current_words

    def _shrink(self, words: int) -> None:
        if not self.track_space:
            return
        self.current_words = max(0, self.current_words - words)

    @property
    def files(self) -> dict[str, ExtFile]:
        """Mapping of live file names to files."""
        return dict(self._files)

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Disk({len(self._files)} files, {self.current_words} words, peak {self.peak_words})"


def iter_records(readable: Readable, chunk: int = 1024) -> Iterator[Record]:
    """Iterate the records of a file or slice without I/O accounting.

    Only tests, oracles and in-memory reference algorithms should use this;
    external-memory algorithms must go through the machine so that their
    block transfers are charged.
    """
    position = 0
    total = len(readable)
    while position < total:
        stop = min(position + chunk, total)
        for record in readable._read_range(position, stop):
            yield record
        position = stop
