"""External multiway merge sort for the cache-aware machine.

The implementation follows the textbook external merge sort the paper's
``sort(n)`` primitive refers to (Aggarwal & Vitter):

1. *Run formation*: read the input in chunks of ``M`` records, sort each
   chunk in internal memory and write it back as a sorted run --
   ``2 * ceil(n/B)`` I/Os.
2. *Merging*: repeatedly merge up to ``max(2, M/B - 1)`` runs at a time until
   a single run remains -- ``2 * ceil(n/B)`` I/Os per pass and
   ``ceil(log_{M/B}(n/M))`` passes.

The resulting I/O count matches ``sort(n) = O((n/B) log_{M/B}(n/B))`` up to
constants, and the merge is performed for real (the output is actually
sorted), so correctness of algorithms built on top of it is meaningful.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Sequence

from repro.extmem.disk import ExtFile, Readable, Record


def _identity(record: Record) -> Any:
    return record


def merge_fan_in(memory_words: int, block_words: int) -> int:
    """Maximum number of runs merged per pass: one input block per run.

    One block of internal memory is reserved for the output buffer, hence
    ``M/B - 1``; the fan-in is never smaller than 2 so the sort always makes
    progress.
    """
    return max(2, memory_words // block_words - 1)


def external_merge_sort(
    machine: "Machine",
    readable: Readable,
    key: Callable[[Record], Any] | None = None,
    name: str | None = None,
) -> ExtFile:
    """Sort ``readable`` into a new file using external multiway merge sort."""
    from repro.extmem.machine import Machine  # local import to avoid a cycle

    assert isinstance(machine, Machine)
    key = key if key is not None else _identity
    total = len(readable)

    # Small inputs: a single in-memory sort (still charged as one read pass
    # and one write pass, as the model prescribes).
    if total <= machine.memory_size:
        with machine.lease(total, "in-memory sort"):
            records = machine.load(readable, 0, total)
            machine.stats.charge_operations(max(1, total))
            records.sort(key=key)
            return machine.write_file(records, name=name)

    runs = _form_runs(machine, readable, key)
    fan_in = merge_fan_in(machine.memory_size, machine.block_size)
    while len(runs) > 1:
        runs = _merge_pass(machine, runs, key, fan_in)
    result = runs[0]
    if name is not None:
        # Re-register under the requested name without copying records.
        renamed = machine.disk.file(name=name, records=result._records)
        result.delete()
        return renamed
    return result


def _form_runs(
    machine: "Machine",
    readable: Readable,
    key: Callable[[Record], Any],
) -> list[ExtFile]:
    """Split the input into sorted runs of at most ``M`` records each."""
    runs: list[ExtFile] = []
    total = len(readable)
    chunk = machine.memory_size
    position = 0
    while position < total:
        count = min(chunk, total - position)
        with machine.lease(count, "run formation"):
            records = machine.load(readable, position, count)
            machine.stats.charge_operations(max(1, count))
            records.sort(key=key)
            runs.append(machine.write_file(records))
        position += count
    return runs


def _merge_pass(
    machine: "Machine",
    runs: list[ExtFile],
    key: Callable[[Record], Any],
    fan_in: int,
) -> list[ExtFile]:
    """Merge groups of at most ``fan_in`` runs, deleting the inputs."""
    merged: list[ExtFile] = []
    for group_start in range(0, len(runs), fan_in):
        group = runs[group_start : group_start + fan_in]
        if len(group) == 1:
            merged.append(group[0])
            continue
        streams = [machine.scan(run) for run in group]
        with machine.writer() as out:
            for record in heapq.merge(*streams, key=key):
                machine.stats.charge_operations(1)
                out.append(record)
        for run in group:
            run.delete()
        merged.append(out.file)
    return merged


def merge_sorted_scan(
    machine: "Machine",
    readables: Sequence[Readable],
    key: Callable[[Record], Any] | None = None,
) -> Iterator[Record]:
    """Stream the merge of several already-sorted files/slices.

    Charges the same I/Os as scanning each input once.  The caller is
    responsible for keeping the number of inputs within ``M/B`` so that one
    block buffer per input fits in memory (all call sites in this package use
    a constant number of inputs).
    """
    key = key if key is not None else _identity
    streams = [machine.scan(readable) for readable in readables]
    return heapq.merge(*streams, key=key)
