"""External multiway merge sort for the cache-aware machine.

The implementation follows the textbook external merge sort the paper's
``sort(n)`` primitive refers to (Aggarwal & Vitter):

1. *Run formation*: read the input in chunks of ``M`` records, sort each
   chunk in internal memory and write it back as a sorted run --
   ``2 * ceil(n/B)`` I/Os.
2. *Merging*: repeatedly merge up to ``max(2, M/B - 1)`` runs at a time until
   a single run remains -- ``2 * ceil(n/B)`` I/Os per pass and
   ``ceil(log_{M/B}(n/M))`` passes.

The resulting I/O count matches ``sort(n) = O((n/B) log_{M/B}(n/B))`` up to
constants, and the merge is performed for real (the output is actually
sorted), so correctness of algorithms built on top of it is meaningful.

Data path (see DESIGN.md, "Block-granular data path"): when a ``key`` is
given, run formation *decorates* each record as ``(key(record), input
position, record)`` so the key is computed exactly once per record for the
whole sort; the merge passes then compare plain tuples in C instead of
calling the key per comparison, and the final pass strips the decoration.
The input-position component makes ties resolve to the original input
order, which is exactly the stable order the undecorated sort produced.
Decorated records are a simulation artifact: each still occupies one word
of simulated disk, and all I/O and operation charges are identical to the
record-at-a-time implementation.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Any, Callable, Iterator, Sequence

from repro.extmem.disk import ExtFile, Readable, Record

#: Records accumulated in Python before a bulk append/charge during a merge.
#: Purely a constant-factor knob of the simulator; charges are identical for
#: any value (the writer still charges one block write per ``B`` records).
_MERGE_BATCH = 4096


def merge_fan_in(memory_words: int, block_words: int) -> int:
    """Maximum number of runs merged per pass: one input block per run.

    One block of internal memory is reserved for the output buffer, hence
    ``M/B - 1``; the fan-in is never smaller than 2 so the sort always makes
    progress.
    """
    return max(2, memory_words // block_words - 1)


def external_merge_sort(
    machine: "Machine",
    readable: Readable,
    key: Callable[[Record], Any] | None = None,
    name: str | None = None,
    key_many: Callable[[Sequence[Record]], list[Any]] | None = None,
) -> ExtFile:
    """Sort ``readable`` into a new file using external multiway merge sort.

    ``key_many``, when given, computes the keys of a whole memory-resident
    chunk at once (e.g. one bulk colouring lookup per chunk) and takes
    precedence over ``key`` for key computation; the sorted order is the
    same as sorting with ``key`` record-by-record.
    """
    from repro.extmem.machine import Machine  # local import to avoid a cycle

    assert isinstance(machine, Machine)
    total = len(readable)

    # Small inputs: a single in-memory sort (still charged as one read pass
    # and one write pass, as the model prescribes).
    if total <= machine.memory_size:
        with machine.lease(total, "in-memory sort"):
            records = machine.load(readable, 0, total)
            machine.stats.charge_operations(max(1, total))
            records = _sort_chunk(records, key, key_many, base_position=0)
            if key is not None or key_many is not None:
                records = [item[2] for item in records]
            return machine.write_file(records, name=name)

    runs = _form_runs(machine, readable, key, key_many)
    decorated = key is not None or key_many is not None
    fan_in = merge_fan_in(machine.memory_size, machine.block_size)
    while len(runs) > 1:
        # The last pass merges everything that is left; it is the one that
        # strips the decoration so the output file holds plain records.
        undecorate = decorated and len(runs) <= fan_in
        runs = _merge_pass(machine, runs, fan_in, undecorate=undecorate)
    result = runs[0]
    if name is not None:
        machine.disk.rename(result, name)
    return result


def _sort_chunk(
    records: list[Record],
    key: Callable[[Record], Any] | None,
    key_many: Callable[[Sequence[Record]], list[Any]] | None,
    base_position: int,
) -> list[Record]:
    """Sort one memory-resident chunk, decorating it when a key is in play.

    Decorated entries are ``(key, base_position + index, record)``; the
    position component preserves the stability of the old ``sort(key=...)``
    path and guarantees ties never fall back to comparing raw records.
    """
    if key_many is not None:
        keys = key_many(records)
        records = [
            (keys[index], base_position + index, record)
            for index, record in enumerate(records)
        ]
        records.sort()
    elif key is not None:
        records = [
            (key(record), base_position + index, record)
            for index, record in enumerate(records)
        ]
        records.sort()
    else:
        records.sort()
    return records


def _form_runs(
    machine: "Machine",
    readable: Readable,
    key: Callable[[Record], Any] | None,
    key_many: Callable[[Sequence[Record]], list[Any]] | None,
) -> list[ExtFile]:
    """Split the input into sorted runs of at most ``M`` records each."""
    runs: list[ExtFile] = []
    total = len(readable)
    chunk = machine.memory_size
    position = 0
    while position < total:
        count = min(chunk, total - position)
        with machine.lease(count, "run formation"):
            records = machine.load(readable, position, count)
            machine.stats.charge_operations(max(1, count))
            records = _sort_chunk(records, key, key_many, base_position=position)
            runs.append(machine.write_file(records))
        position += count
    return runs


def _merge_pass(
    machine: "Machine",
    runs: list[ExtFile],
    fan_in: int,
    undecorate: bool,
) -> list[ExtFile]:
    """Merge groups of at most ``fan_in`` runs, deleting the inputs.

    Runs hold either plain records or decorated ``(key, position, record)``
    tuples; either way the merge compares them natively (no Python key
    function in the loop), and output records are appended and charged in
    batches rather than one at a time.
    """
    merged: list[ExtFile] = []
    for group_start in range(0, len(runs), fan_in):
        group = runs[group_start : group_start + fan_in]
        if len(group) == 1:
            merged.append(group[0])
            continue
        with machine.writer() as out:
            _merge_group(machine, group, out, undecorate)
        for run in group:
            run.delete()
        merged.append(out.file)
    return merged


def _merge_group(
    machine: "Machine",
    group: Sequence[ExtFile],
    out: "BufferedWriter",
    undecorate: bool,
) -> None:
    """Block-granular k-way merge of sorted runs into ``out``.

    The heap holds one entry per live run: ``(head record, run index,
    position, block)``, so advancing within a block costs one
    ``heapreplace`` and crossing a block boundary pulls the next block from
    :meth:`Machine.scan_blocks` (which is what charges the read).  Two fast
    paths keep the per-record work low: a run that is locally ahead of all
    others has its block prefix copied in one ``bisect`` + slice, and the
    last surviving run is drained block-at-a-time with no comparisons.
    Heap ties between runs resolve by run index like ``heapq.merge``; the
    gallop may emit equal records from the current run before an equal head
    of a lower-index run, so the output is *value*-identical to the
    record-at-a-time merge (equal records are interchangeable here: plain
    ints/tuples, and decorated records carry a unique position).
    """
    charge_operations = machine.stats.charge_operations
    block_streams = [machine.scan_blocks(run) for run in group]
    heap: list[tuple[Record, int, int, list[Record]]] = []
    for index, stream in enumerate(block_streams):
        block = next(stream, None)
        if block:
            heap.append((block[0], index, 0, block))
    heapq.heapify(heap)

    batch: list[Record] = []

    def flush_batch() -> None:
        charge_operations(len(batch))
        out.extend([entry[2] for entry in batch] if undecorate else batch)
        batch.clear()

    while len(heap) > 1:
        record, index, position, block = heap[0]
        # Gallop: everything in this block up to the runner-up's head can be
        # emitted without touching the heap again.
        limit = heap[1][0] if len(heap) == 2 else min(heap[1][0], heap[2][0])
        stop = bisect_right(block, limit, position + 1)
        batch.extend(block[position:stop])
        if stop < len(block):
            heapq.heapreplace(heap, (block[stop], index, stop, block))
        else:
            block = next(block_streams[index], None)
            if block:
                heapq.heapreplace(heap, (block[0], index, 0, block))
            else:
                heapq.heappop(heap)
        if len(batch) >= _MERGE_BATCH:
            flush_batch()

    if heap:  # drain the last run block-at-a-time, no comparisons needed
        record, index, position, block = heap[0]
        batch.extend(block[position:])
        if len(batch) >= _MERGE_BATCH:
            flush_batch()
        for block in block_streams[index]:
            batch.extend(block)
            if len(batch) >= _MERGE_BATCH:
                flush_batch()
    if batch:
        flush_batch()


def merge_sorted_scan(
    machine: "Machine",
    readables: Sequence[Readable],
    key: Callable[[Record], Any] | None = None,
) -> Iterator[Record]:
    """Stream the merge of several already-sorted files/slices.

    Charges the same I/Os as scanning each input once.  The caller is
    responsible for keeping the number of inputs within ``M/B`` so that one
    block buffer per input fits in memory (all call sites in this package use
    a constant number of inputs).
    """
    streams = [machine.scan(readable) for readable in readables]
    if key is None:
        return heapq.merge(*streams)
    return heapq.merge(*streams, key=key)
