"""The explicit (cache-aware) external-memory machine.

Cache-aware algorithms interact with external memory exclusively through a
:class:`Machine`:

* :meth:`Machine.scan` -- sequential read of a file (or slice), charging one
  block read per ``B`` records consumed;
* :meth:`Machine.writer` / :meth:`Machine.write_file` -- buffered sequential
  writes, charging one block write per ``B`` records produced;
* :meth:`Machine.load` -- an explicit bulk load into internal memory, only
  allowed while a sufficient :class:`MemoryLease` is held;
* :meth:`Machine.sort` -- external multiway merge sort
  (:mod:`repro.extmem.sorting`).

Internal-memory usage for algorithm-visible data structures is tracked with
leases against the capacity ``M``; exceeding it raises
:class:`repro.exceptions.MemoryExceededError`.  Per-stream block buffers
(``O(B)`` words each) are not leased individually -- algorithms keep only a
constant number of streams open at a time, except the merge sort, which caps
its fan-in at ``M/B``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.analysis.model import MachineParams
from repro.exceptions import MemoryExceededError
from repro.extmem.disk import Disk, ExtFile, Readable, Record
from repro.extmem.stats import IOStats


class MemoryLease:
    """A reservation of internal-memory words, released on exit.

    Leases are context managers::

        with machine.lease(chunk_size, "pivot edges"):
            chunk = machine.load(pivot_file, offset, chunk_size)
            ...
    """

    def __init__(self, machine: "Machine", words: int, label: str) -> None:
        self.machine = machine
        self.words = words
        self.label = label
        self._active = False

    def __enter__(self) -> "MemoryLease":
        self.machine._acquire(self)
        self._active = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._active:
            self.machine._release(self)
            self._active = False


class BufferedWriter:
    """Accumulates records and charges one block write per ``B`` records."""

    def __init__(self, machine: "Machine", file: ExtFile) -> None:
        self.machine = machine
        self.file = file
        self._buffer: list[Record] = []
        self._closed = False

    def append(self, record: Record) -> None:
        """Append a single record to the output file."""
        self._buffer.append(record)
        if len(self._buffer) >= self.machine.block_size:
            self._flush_full_blocks()

    def extend(self, records: Iterable[Record]) -> None:
        """Append many records, flushing whole blocks at a time.

        This is the block-granular fast path: the input is buffered in bulk
        and every complete block is appended with a single
        :meth:`ExtFile._append_many` call, charging exactly the same writes
        as record-by-record :meth:`append` would.
        """
        buffer = self._buffer
        buffer.extend(records)
        if len(buffer) >= self.machine.block_size:
            self._flush_full_blocks()

    def _flush_full_blocks(self) -> None:
        block = self.machine.block_size
        buffer = self._buffer
        count = (len(buffer) // block) * block
        self.machine.stats.charge_write(count // block)
        self.file._append_many(buffer[:count])
        del buffer[:count]

    def close(self) -> ExtFile:
        """Flush any partial block and return the written file."""
        if not self._closed:
            if self._buffer:
                self.machine.stats.charge_write(1)
                self.file._append_many(self._buffer)
                self._buffer = []
            self._closed = True
        return self.file

    def __enter__(self) -> "BufferedWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Machine:
    """Simulated cache-aware external-memory machine with parameters (M, B)."""

    def __init__(
        self,
        params: MachineParams,
        stats: IOStats | None = None,
        disk: Disk | None = None,
    ) -> None:
        self.params = params
        self.stats = stats if stats is not None else IOStats()
        self.disk = disk if disk is not None else Disk()
        self._memory_in_use = 0
        self._leases: list[MemoryLease] = []

    # ------------------------------------------------------------------
    # configuration shortcuts
    # ------------------------------------------------------------------
    @property
    def memory_size(self) -> int:
        """Internal memory capacity ``M`` in words."""
        return self.params.memory_words

    @property
    def block_size(self) -> int:
        """Block size ``B`` in words."""
        return self.params.block_words

    @property
    def memory_in_use(self) -> int:
        """Words currently leased by algorithm data structures."""
        return self._memory_in_use

    @property
    def memory_available(self) -> int:
        """Words of internal memory not currently leased."""
        return self.memory_size - self._memory_in_use

    def blocks(self, records: int) -> int:
        """Number of blocks needed to hold ``records`` records."""
        return math.ceil(records / self.block_size) if records > 0 else 0

    # ------------------------------------------------------------------
    # internal-memory accounting
    # ------------------------------------------------------------------
    def lease(self, words: int, label: str = "") -> MemoryLease:
        """Reserve ``words`` of internal memory for the duration of a block."""
        return MemoryLease(self, words, label)

    def _acquire(self, lease: MemoryLease) -> None:
        if lease.words < 0:
            raise ValueError(f"cannot lease a negative amount of memory: {lease.words}")
        if self._memory_in_use + lease.words > self.memory_size:
            raise MemoryExceededError(
                f"lease of {lease.words} words ({lease.label or 'unnamed'}) exceeds "
                f"internal memory: {self._memory_in_use}/{self.memory_size} already in use"
            )
        self._memory_in_use += lease.words
        self._leases.append(lease)

    def _release(self, lease: MemoryLease) -> None:
        self._memory_in_use -= lease.words
        try:
            self._leases.remove(lease)
        except ValueError:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    # file creation and sequential access
    # ------------------------------------------------------------------
    def file_from_records(self, records: Iterable[Record], name: str | None = None) -> ExtFile:
        """Create an *input* file already resident on disk (no I/O charged)."""
        return self.disk.file(name=name, records=records)

    def empty_file(self, name: str | None = None) -> ExtFile:
        """Create an empty file on disk."""
        return self.disk.file(name=name)

    def writer(self, name: str | None = None) -> BufferedWriter:
        """Open a buffered writer to a new file."""
        return BufferedWriter(self, self.empty_file(name))

    def write_file(self, records: Iterable[Record], name: str | None = None) -> ExtFile:
        """Write ``records`` sequentially to a new file, charging block writes."""
        with self.writer(name) as out:
            out.extend(records)
        return out.file

    def scan_blocks(self, readable: Readable) -> Iterator[list[Record]]:
        """Sequentially read a file or slice one *block* at a time.

        Yields a list of at most ``B`` records per iteration and charges one
        block read per yielded list -- the block-granular primitive that
        :meth:`scan` and all batched algorithm loops are built on.  The
        charge is incurred lazily as blocks are consumed, so an early exit
        (e.g. a search that stops at the first match) is charged only for
        the blocks it actually touched.
        """
        block = self.block_size
        total = len(readable)
        charge_read = self.stats.charge_read
        read_range = readable._read_range
        position = 0
        while position < total:
            stop = min(position + block, total)
            charge_read(1)
            yield read_range(position, stop)
            position = stop

    def scan(self, readable: Readable) -> Iterator[Record]:
        """Sequentially read a file or slice, charging one read per block."""
        for records in self.scan_blocks(readable):
            yield from records

    def scan_many(self, readables: Sequence[Readable]) -> Iterator[Record]:
        """Concatenated sequential scan over several files/slices."""
        for readable in readables:
            yield from self.scan(readable)

    def scan_many_blocks(self, readables: Sequence[Readable]) -> Iterator[list[Record]]:
        """Concatenated block-granular scan over several files/slices."""
        for readable in readables:
            yield from self.scan_blocks(readable)

    def load(self, readable: Readable, start: int = 0, count: int | None = None) -> list[Record]:
        """Load ``count`` records starting at ``start`` into internal memory.

        The caller must hold a lease covering ``count`` words; the machine
        enforces this indirectly by requiring the loaded amount to fit in the
        currently *leased* memory, which keeps cache-aware algorithms honest
        about the size of the chunks they claim fit in memory.
        """
        total = len(readable)
        if count is None:
            count = total - start
        stop = min(start + count, total)
        actual = max(0, stop - start)
        if actual > self.memory_size:
            raise MemoryExceededError(
                f"cannot load {actual} records into internal memory of {self.memory_size} words"
            )
        self.stats.charge_read(self.blocks(actual))
        return readable._read_range(start, stop)

    # ------------------------------------------------------------------
    # sorting (delegates to repro.extmem.sorting)
    # ------------------------------------------------------------------
    def sort(
        self,
        readable: Readable,
        key: Callable[[Record], Any] | None = None,
        name: str | None = None,
        key_many: Callable[[Sequence[Record]], list[Any]] | None = None,
    ) -> ExtFile:
        """External multiway merge sort of ``readable`` into a new file.

        ``key_many`` is the bulk variant of ``key``: it maps a chunk of
        records to their keys in one call, letting hot sort keys (e.g.
        colour pairs) be computed once per record instead of per comparison.
        """
        from repro.extmem.sorting import external_merge_sort

        return external_merge_sort(self, readable, key=key, name=name, key_many=key_many)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager attributing the enclosed I/Os to a named phase."""
        snapshot = self.stats.snapshot()
        try:
            yield
        finally:
            self.stats.record_phase(name, snapshot)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine(M={self.memory_size}, B={self.block_size}, {self.stats})"
