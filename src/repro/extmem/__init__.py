"""Simulated external-memory machinery.

Two complementary substrates are provided:

* The *explicit* machine (:class:`repro.extmem.machine.Machine`) used by
  cache-aware algorithms: sequential scans, buffered writers, bounded loads
  into internal memory and an external multiway merge sort, all charging
  block transfers against an :class:`repro.extmem.stats.IOStats` counter.
* The *cache-oblivious* virtual machine
  (:class:`repro.extmem.oblivious.ObliviousVM`) used by cache-oblivious
  algorithms: disk-resident vectors accessed element-wise through an LRU
  block cache of ``M/B`` blocks, so the algorithm never sees ``M`` or ``B``.

Both charge I/Os in units of blocks of ``B`` records, where one record (an
edge, a vertex id, a wedge, ...) occupies one machine word, matching the
accounting convention of the paper's lower-bound section.
"""

from repro.extmem.cache import LRUBlockCache
from repro.extmem.disk import Disk, ExtFile, FileSlice
from repro.extmem.machine import Machine, MemoryLease
from repro.extmem.oblivious import ExtVector, ObliviousVM, VectorSlice
from repro.extmem.sorting import external_merge_sort
from repro.extmem.stats import IOStats

__all__ = [
    "Disk",
    "ExtFile",
    "ExtVector",
    "FileSlice",
    "IOStats",
    "LRUBlockCache",
    "Machine",
    "MemoryLease",
    "ObliviousVM",
    "VectorSlice",
    "external_merge_sort",
]
