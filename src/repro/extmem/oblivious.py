"""The cache-oblivious virtual machine.

Cache-oblivious algorithms may not mention ``M`` or ``B``.  They therefore do
not use the explicit :class:`repro.extmem.machine.Machine`; instead they
operate on :class:`ExtVector` objects obtained from an :class:`ObliviousVM`.
Every element read or write on a vector is routed through the VM's
:class:`repro.extmem.cache.LRUBlockCache`, which charges block reads on
misses and block writes on dirty evictions.  The algorithm code itself only
ever holds ``O(1)`` records in Python locals, mirroring the register file of
the model.

The VM also tracks the number of words allocated on (simulated) disk so that
the paper's ``O(E)`` space claims can be checked.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator

from repro.analysis.model import MachineParams
from repro.exceptions import FileClosedError
from repro.extmem.cache import LRUBlockCache
from repro.extmem.stats import IOStats

Record = Any


class ObliviousVM:
    """Owner of disk-resident vectors and the LRU cache that fronts them."""

    def __init__(self, params: MachineParams, stats: IOStats | None = None) -> None:
        self.params = params
        self.stats = stats if stats is not None else IOStats()
        capacity_blocks = max(1, params.memory_words // params.block_words)
        self.cache = LRUBlockCache(capacity_blocks, self.stats)
        self._storage_ids = itertools.count()
        self.current_words = 0
        self.peak_words = 0

    @property
    def block_size(self) -> int:
        """Block size in records.  Used only by the VM itself, never by algorithms."""
        return self.params.block_words

    # ------------------------------------------------------------------
    # vector creation
    # ------------------------------------------------------------------
    def input_vector(self, records: Iterable[Record], name: str = "input") -> "ExtVector":
        """Create a vector whose contents already reside on disk (no I/O)."""
        vector = ExtVector(self, name)
        vector._data = list(records)
        self._grow(len(vector._data))
        return vector

    def vector(self, name: str = "tmp") -> "ExtVector":
        """Create an empty vector; appends to it are charged through the cache."""
        return ExtVector(self, name)

    def flush(self) -> None:
        """Write back all dirty cached blocks (end-of-run accounting)."""
        self.cache.flush()

    # ------------------------------------------------------------------
    # space accounting
    # ------------------------------------------------------------------
    def _grow(self, words: int) -> None:
        self.current_words += words
        if self.current_words > self.peak_words:
            self.peak_words = self.current_words

    def _shrink(self, words: int) -> None:
        self.current_words = max(0, self.current_words - words)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ObliviousVM(M={self.params.memory_words}, B={self.params.block_words}, "
            f"{self.stats})"
        )


class ExtVector:
    """A disk-resident array accessed element-wise through the LRU cache.

    Supports random reads (:meth:`get`), random writes (:meth:`set`),
    appends, sequential iteration and zero-copy slicing.  All of these charge
    I/Os through the owning VM's cache; none of them expose ``M`` or ``B`` to
    the caller.
    """

    def __init__(self, vm: ObliviousVM, name: str = "tmp") -> None:
        self.vm = vm
        self.name = name
        self.storage_id = next(vm._storage_ids)
        self._data: list[Record] = []
        self._freed = False

    # -- bookkeeping ----------------------------------------------------
    def _check_open(self) -> None:
        if self._freed:
            raise FileClosedError(f"vector {self.name!r} has been freed")

    def __len__(self) -> int:
        self._check_open()
        return len(self._data)

    def free(self) -> None:
        """Release the vector: drop its cached blocks and its disk space."""
        if self._freed:
            return
        self.vm.cache.discard_storage(self.storage_id)
        self.vm._shrink(len(self._data))
        self._data = []
        self._freed = True

    # -- element access through the cache --------------------------------
    def _touch(self, index: int, write: bool) -> None:
        block = index // self.vm.block_size
        self.vm.cache.access(self.storage_id, block, write=write)
        self.vm.stats.charge_operations(1)

    def get(self, index: int) -> Record:
        """Read one record."""
        self._check_open()
        if index < 0 or index >= len(self._data):
            raise IndexError(f"index {index} out of range for vector of length {len(self._data)}")
        self._touch(index, write=False)
        return self._data[index]

    def set(self, index: int, record: Record) -> None:
        """Overwrite one record."""
        self._check_open()
        if index < 0 or index >= len(self._data):
            raise IndexError(f"index {index} out of range for vector of length {len(self._data)}")
        self._touch(index, write=True)
        self._data[index] = record

    def append(self, record: Record) -> None:
        """Append one record to the end of the vector."""
        self._check_open()
        index = len(self._data)
        block = index // self.vm.block_size
        if index % self.vm.block_size == 0:
            # First record of a fresh block: no read needed to install it.
            self.vm.cache.write_new(self.storage_id, block)
        else:
            self.vm.cache.access(self.storage_id, block, write=True)
        self.vm.stats.charge_operations(1)
        self._data.append(record)
        self.vm._grow(1)

    def extend(self, records: Iterable[Record]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    def __getitem__(self, index: int) -> Record:
        return self.get(index)

    def __setitem__(self, index: int, record: Record) -> None:
        self.set(index, record)

    def iterate(self) -> Iterator[Record]:
        """Sequentially read all records (charged through the cache)."""
        for index in range(len(self._data)):
            yield self.get(index)

    def slice(self, start: int, stop: int) -> "VectorSlice":
        """Return a zero-copy read/write view of ``self[start:stop]``."""
        self._check_open()
        return VectorSlice(self, start, stop)

    def as_slice(self) -> "VectorSlice":
        """Return a view of the whole vector."""
        return self.slice(0, len(self))

    def to_list(self) -> list[Record]:
        """Copy the contents into a Python list *without* charging I/Os.

        Reserved for tests and oracles; algorithm code must not call it.
        """
        self._check_open()
        return list(self._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else f"{len(self._data)} records"
        return f"ExtVector({self.name!r}, {state})"


class VectorSlice:
    """A contiguous read/write view over part of an :class:`ExtVector`."""

    def __init__(self, vector: ExtVector, start: int, stop: int) -> None:
        if start < 0 or stop < start:
            raise ValueError(f"invalid slice bounds [{start}, {stop})")
        stop = min(stop, len(vector))
        start = min(start, stop)
        self.vector = vector
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def get(self, index: int) -> Record:
        """Read the ``index``-th record of the view."""
        if index < 0 or index >= len(self):
            raise IndexError(f"index {index} out of range for slice of length {len(self)}")
        return self.vector.get(self.start + index)

    def set(self, index: int, record: Record) -> None:
        """Overwrite the ``index``-th record of the view."""
        if index < 0 or index >= len(self):
            raise IndexError(f"index {index} out of range for slice of length {len(self)}")
        self.vector.set(self.start + index, record)

    def __getitem__(self, index: int) -> Record:
        return self.get(index)

    def __setitem__(self, index: int, record: Record) -> None:
        self.set(index, record)

    def iterate(self) -> Iterator[Record]:
        """Sequentially read the records of the view."""
        for index in range(len(self)):
            yield self.get(index)

    def slice(self, start: int, stop: int) -> "VectorSlice":
        """Return a sub-view with bounds relative to this view."""
        return VectorSlice(self.vector, self.start + start, min(self.start + stop, self.stop))


def vector_from_iterable(
    vm: ObliviousVM, records: Iterable[Record], name: str = "tmp"
) -> ExtVector:
    """Materialise ``records`` into a new charged vector (a sequential write)."""
    out = vm.vector(name)
    out.extend(records)
    return out


def map_vector(
    vm: ObliviousVM,
    source: ExtVector | VectorSlice,
    transform: Callable[[Record], Record],
    name: str = "mapped",
) -> ExtVector:
    """Apply ``transform`` to every record, producing a new vector (one scan + one write)."""
    out = vm.vector(name)
    for record in source.iterate():
        out.append(transform(record))
    return out


def filter_vector(
    vm: ObliviousVM,
    source: ExtVector | VectorSlice,
    predicate: Callable[[Record], bool],
    name: str = "filtered",
) -> ExtVector:
    """Keep only records satisfying ``predicate`` (one scan + one write)."""
    out = vm.vector(name)
    for record in source.iterate():
        if predicate(record):
            out.append(record)
    return out
