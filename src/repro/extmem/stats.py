"""I/O accounting for the simulated external-memory machine.

The central object is :class:`IOStats`: a mutable counter of block reads and
block writes, plus an operation counter used for the paper's work-optimality
claims.  Algorithms never touch the counters directly; the machine and the
cache simulator charge them.  Experiments snapshot the counters before and
after a run and report the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable copy of the counters at a point in time."""

    reads: int
    writes: int
    operations: int

    @property
    def total(self) -> int:
        """Total number of block transfers (reads plus writes)."""
        return self.reads + self.writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            operations=self.operations - other.operations,
        )


@dataclass
class IOStats:
    """Mutable counters of simulated I/Os.

    Attributes
    ----------
    reads:
        Number of blocks transferred from external to internal memory.
    writes:
        Number of blocks transferred from internal to external memory.
    operations:
        Number of elementary RAM operations charged by algorithms through
        :meth:`charge_operations`; used to verify the ``O(E^{3/2})`` work
        bound, not part of the I/O complexity.
    """

    reads: int = 0
    writes: int = 0
    operations: int = 0
    _phase_totals: dict[str, int] = field(default_factory=dict)

    def charge_read(self, blocks: int = 1) -> None:
        """Charge ``blocks`` block reads."""
        if blocks < 0:
            raise ValueError(f"cannot charge a negative number of reads: {blocks}")
        self.reads += blocks

    def charge_write(self, blocks: int = 1) -> None:
        """Charge ``blocks`` block writes."""
        if blocks < 0:
            raise ValueError(f"cannot charge a negative number of writes: {blocks}")
        self.writes += blocks

    def charge_operations(self, count: int = 1) -> None:
        """Charge ``count`` elementary RAM operations (work, not I/O)."""
        if count < 0:
            raise ValueError(f"cannot charge negative work: {count}")
        self.operations += count

    @property
    def total(self) -> int:
        """Total number of block transfers so far."""
        return self.reads + self.writes

    def snapshot(self) -> IOSnapshot:
        """Return an immutable copy of the current counters."""
        return IOSnapshot(reads=self.reads, writes=self.writes, operations=self.operations)

    def since(self, snapshot: IOSnapshot) -> IOSnapshot:
        """Return the counter deltas accumulated since ``snapshot``."""
        return self.snapshot() - snapshot

    def record_phase(self, name: str, snapshot: IOSnapshot) -> IOSnapshot:
        """Record the I/Os since ``snapshot`` under ``name`` and return them.

        Phases are purely informational; they let experiments attribute I/Os
        to the steps of an algorithm (e.g. the high-degree phase vs. the
        colour-partition phase of the cache-aware algorithm).
        """
        delta = self.since(snapshot)
        self._phase_totals[name] = self._phase_totals.get(name, 0) + delta.total
        return delta

    def charge_phase(self, name: str, blocks: int) -> None:
        """Add ``blocks`` transfers directly to a phase's total.

        Counterpart of :meth:`record_phase` for aggregation paths that fold
        *already-measured* phase totals from another machine's counters
        (the sharded engine merging worker stats) rather than bracketing a
        local code region with snapshots.
        """
        if blocks < 0:
            raise ValueError(f"cannot charge a negative phase total: {blocks}")
        self._phase_totals[name] = self._phase_totals.get(name, 0) + blocks

    @property
    def phases(self) -> dict[str, int]:
        """Mapping of phase name to total block transfers charged to it."""
        return dict(self._phase_totals)

    def reset(self) -> None:
        """Zero all counters and phase records."""
        self.reads = 0
        self.writes = 0
        self.operations = 0
        self._phase_totals.clear()

    def merge(self, other: "IOStats") -> None:
        """Fold the counters of ``other`` into this object."""
        self.reads += other.reads
        self.writes += other.writes
        self.operations += other.operations
        for name, total in other._phase_totals.items():
            self._phase_totals[name] = self._phase_totals.get(name, 0) + total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"total={self.total}, operations={self.operations})"
        )
