"""Block-granular LRU cache simulator.

Cache-oblivious algorithms are analysed assuming an ideal cache; by the
classic result of Frigo et al. an LRU cache with twice the capacity is
2-competitive, so simulating LRU gives I/O counts within a constant factor of
the ideal-cache analysis.  This module implements that simulation: every
element access issued by an :class:`repro.extmem.oblivious.ExtVector` is
translated to a ``(storage id, block index)`` pair and looked up here; misses
and dirty write-backs are charged to an :class:`repro.extmem.stats.IOStats`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.exceptions import InvalidConfigurationError
from repro.extmem.stats import IOStats

BlockKey = tuple[int, int]


class LRUBlockCache:
    """An LRU cache of ``capacity_blocks`` blocks with write-back accounting.

    Parameters
    ----------
    capacity_blocks:
        Number of blocks that fit in internal memory (``M / B``).
    stats:
        Counter charged for misses (reads) and dirty evictions (writes).
    """

    def __init__(self, capacity_blocks: int, stats: IOStats) -> None:
        if capacity_blocks < 1:
            raise InvalidConfigurationError(
                f"cache capacity must be at least one block, got {capacity_blocks}"
            )
        self.capacity_blocks = capacity_blocks
        self.stats = stats
        # key -> dirty flag; ordered from least to most recently used.
        self._blocks: OrderedDict[BlockKey, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def access(self, storage_id: int, block_index: int, write: bool = False) -> None:
        """Touch one block; charge a read on miss and a write on dirty eviction."""
        key = (storage_id, block_index)
        blocks = self._blocks
        if key in blocks:
            self.hits += 1
            dirty = blocks.pop(key)
            blocks[key] = dirty or write
            return
        self.misses += 1
        self.stats.charge_read(1)
        if len(blocks) >= self.capacity_blocks:
            _evicted_key, evicted_dirty = blocks.popitem(last=False)
            if evicted_dirty:
                self.stats.charge_write(1)
        blocks[key] = write

    def write_new(self, storage_id: int, block_index: int) -> None:
        """Touch a block that is being created from scratch (append path).

        A freshly appended block has no prior contents on disk, so bringing
        it into the cache costs no read; it is simply installed dirty and its
        write is charged when it is evicted or flushed.
        """
        key = (storage_id, block_index)
        blocks = self._blocks
        if key in blocks:
            self.hits += 1
            blocks.pop(key)
            blocks[key] = True
            return
        self.misses += 1
        if len(blocks) >= self.capacity_blocks:
            _evicted_key, evicted_dirty = blocks.popitem(last=False)
            if evicted_dirty:
                self.stats.charge_write(1)
        blocks[key] = True

    def discard_storage(self, storage_id: int) -> None:
        """Drop every cached block of ``storage_id`` without write-back.

        Used when a vector is freed: data that will never be read again does
        not need to reach disk.
        """
        stale = [key for key in self._blocks if key[0] == storage_id]
        for key in stale:
            del self._blocks[key]

    def flush(self) -> None:
        """Write back every dirty block and empty the cache."""
        for dirty in self._blocks.values():
            if dirty:
                self.stats.charge_write(1)
        self._blocks.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUBlockCache(capacity={self.capacity_blocks}, resident={len(self._blocks)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
