"""Cache-oblivious sorting over :class:`repro.extmem.oblivious.ExtVector`.

The paper's cache-oblivious algorithm only requires "any efficient
cache-oblivious sorting algorithm".  We provide the classic recursive
two-way merge sort: it is oblivious to ``M`` and ``B`` and, under the LRU
cache simulation, incurs ``O((n/B) * log2(n/M))`` block transfers -- the same
``n/B`` leading behaviour as funnelsort with an extra logarithmic factor.
EXPERIMENTS.md reports this substitution explicitly when discussing the
measured exponents of the cache-oblivious algorithm.

The sort is performed entirely through vector element accesses, so every
record movement is charged by the cache simulator.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.extmem.oblivious import ExtVector, ObliviousVM, VectorSlice

Record = Any
KeyFunc = Callable[[Record], Any]

#: Below this many records the sort falls back to binary-insertion in place.
#: It is a constant, so using it does not make the algorithm cache-aware.
_BASE_CASE = 8


def _identity(record: Record) -> Any:
    return record


def cache_oblivious_sort(
    vm: ObliviousVM,
    vector: ExtVector,
    key: KeyFunc | None = None,
) -> None:
    """Sort ``vector`` in place using cache-oblivious merge sort."""
    key = key if key is not None else _identity
    n = len(vector)
    if n <= 1:
        return
    scratch = vm.vector(f"{vector.name}-scratch")
    scratch.extend(vector.iterate())
    _merge_sort(vector.as_slice(), scratch.as_slice(), key)
    scratch.free()


def sorted_copy(
    vm: ObliviousVM,
    source: ExtVector | VectorSlice,
    key: KeyFunc | None = None,
    name: str = "sorted",
) -> ExtVector:
    """Return a new sorted vector containing the records of ``source``."""
    out = vm.vector(name)
    out.extend(source.iterate())
    cache_oblivious_sort(vm, out, key=key)
    return out


def _merge_sort(data: VectorSlice, scratch: VectorSlice, key: KeyFunc) -> None:
    """Recursively sort ``data`` using ``scratch`` (same length) as buffer."""
    n = len(data)
    if n <= _BASE_CASE:
        _insertion_sort(data, key)
        return
    mid = n // 2
    _merge_sort(data.slice(0, mid), scratch.slice(0, mid), key)
    _merge_sort(data.slice(mid, n), scratch.slice(mid, n), key)
    _merge(data, mid, scratch, key)
    # Copy the merged result back from scratch into data.
    for index in range(n):
        data.set(index, scratch.get(index))


def _insertion_sort(data: VectorSlice, key: KeyFunc) -> None:
    """In-place insertion sort for constant-size base cases."""
    n = len(data)
    for i in range(1, n):
        current = data.get(i)
        current_key = key(current)
        j = i - 1
        while j >= 0:
            candidate = data.get(j)
            if key(candidate) <= current_key:
                break
            data.set(j + 1, candidate)
            j -= 1
        data.set(j + 1, current)


def _merge(data: VectorSlice, mid: int, scratch: VectorSlice, key: KeyFunc) -> None:
    """Merge the two sorted halves of ``data`` into ``scratch``."""
    n = len(data)
    left = 0
    right = mid
    out = 0
    left_record = data.get(left) if left < mid else None
    right_record = data.get(right) if right < n else None
    while left < mid and right < n:
        if key(left_record) <= key(right_record):
            scratch.set(out, left_record)
            left += 1
            left_record = data.get(left) if left < mid else None
        else:
            scratch.set(out, right_record)
            right += 1
            right_record = data.get(right) if right < n else None
        out += 1
    while left < mid:
        scratch.set(out, data.get(left))
        left += 1
        out += 1
    while right < n:
        scratch.set(out, data.get(right))
        right += 1
        out += 1


def is_sorted(source: ExtVector | VectorSlice, key: KeyFunc | None = None) -> bool:
    """Check whether ``source`` is sorted (one sequential scan)."""
    key = key if key is not None else _identity
    previous = None
    for record in source.iterate():
        current = key(record)
        if previous is not None and current < previous:
            return False
        previous = current
    return True
