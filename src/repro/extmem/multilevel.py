"""Multilevel LRU cache simulation.

A key property of cache-oblivious algorithms (Frigo et al., Lemma 6.4 --
quoted by the paper when stating Theorem 1) is that an algorithm that is
optimal for a single level of an ideal cache is simultaneously optimal on
*every* level of a multilevel hierarchy with LRU replacement, provided its
I/O complexity satisfies the regularity condition
``Q(n, M, B) = O(Q(n, 2M, B))``.

This module lets one run observe several cache levels at once: every block
access is replayed against a list of independent LRU caches (one per level,
each with its own capacity and its own I/O counters), which is exactly the
standard way multilevel LRU behaviour is analysed -- the levels are
inclusive and each sees the full access stream.  Plug a
:class:`MultiLevelBlockCache` into an
:class:`repro.extmem.oblivious.ObliviousVM` (via :func:`attach_multilevel`)
and the per-level miss counts of a single algorithm execution fall out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import MachineParams
from repro.extmem.cache import LRUBlockCache
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats


@dataclass(frozen=True)
class CacheLevel:
    """One level of the simulated hierarchy."""

    name: str
    capacity_blocks: int

    def __post_init__(self) -> None:
        if self.capacity_blocks < 1:
            raise ValueError(f"cache level {self.name!r} needs at least one block")


class MultiLevelBlockCache:
    """Replays every block access against several independent LRU levels.

    The object exposes the same interface as
    :class:`repro.extmem.cache.LRUBlockCache` (``access``, ``write_new``,
    ``discard_storage``, ``flush``), so it can stand in for the single-level
    cache inside an :class:`ObliviousVM`.  The VM's own stats receive the
    charges of the *last* (largest) level, matching the convention that the
    final level's misses are "the" I/Os; the other levels' counters are
    available per level.
    """

    def __init__(self, levels: list[CacheLevel], stats: IOStats) -> None:
        if not levels:
            raise ValueError("at least one cache level is required")
        ordered = sorted(levels, key=lambda level: level.capacity_blocks)
        self.levels = ordered
        self.level_stats: dict[str, IOStats] = {level.name: IOStats() for level in ordered}
        self._caches: list[LRUBlockCache] = []
        for index, level in enumerate(ordered):
            # The largest level doubles as the VM-visible cache: it charges
            # both its own per-level stats and the VM stats.
            target = _FanoutStats(
                [self.level_stats[level.name], stats]
                if index == len(ordered) - 1
                else [self.level_stats[level.name]]
            )
            self._caches.append(LRUBlockCache(level.capacity_blocks, target))

    # -- LRUBlockCache interface -----------------------------------------
    def access(self, storage_id: int, block_index: int, write: bool = False) -> None:
        for cache in self._caches:
            cache.access(storage_id, block_index, write=write)

    def write_new(self, storage_id: int, block_index: int) -> None:
        for cache in self._caches:
            cache.write_new(storage_id, block_index)

    def discard_storage(self, storage_id: int) -> None:
        for cache in self._caches:
            cache.discard_storage(storage_id)

    def flush(self) -> None:
        for cache in self._caches:
            cache.flush()

    # -- reporting --------------------------------------------------------
    def misses_by_level(self) -> dict[str, int]:
        """Block reads (misses) charged at each level."""
        return {name: stats.reads for name, stats in self.level_stats.items()}

    def total_by_level(self) -> dict[str, int]:
        """Total block transfers (misses plus dirty write-backs) per level."""
        return {name: stats.total for name, stats in self.level_stats.items()}

    @property
    def hit_rate(self) -> float:
        """Hit rate of the largest level (interface parity with the single cache)."""
        return self._caches[-1].hit_rate


class _FanoutStats:
    """Duplicates charges onto several IOStats objects."""

    def __init__(self, targets: list[IOStats]) -> None:
        self.targets = targets

    def charge_read(self, blocks: int = 1) -> None:
        for target in self.targets:
            target.charge_read(blocks)

    def charge_write(self, blocks: int = 1) -> None:
        for target in self.targets:
            target.charge_write(blocks)

    def charge_operations(self, count: int = 1) -> None:  # pragma: no cover - not used by caches
        for target in self.targets:
            target.charge_operations(count)


def attach_multilevel(
    params: MachineParams,
    level_memories: dict[str, int],
    stats: IOStats | None = None,
) -> tuple[ObliviousVM, MultiLevelBlockCache]:
    """Build an :class:`ObliviousVM` whose cache is a multilevel hierarchy.

    ``level_memories`` maps level names to memory sizes in words; every level
    shares the block size of ``params``.  ``params.memory_words`` should be
    the size of the largest level (it is what the VM reports as its own
    capacity).  Returns the VM and the multilevel cache for per-level
    reporting.
    """
    vm = ObliviousVM(params, stats)
    levels = [
        CacheLevel(name=name, capacity_blocks=max(1, memory // params.block_words))
        for name, memory in level_memories.items()
    ]
    cache = MultiLevelBlockCache(levels, vm.stats)
    vm.cache = cache  # type: ignore[assignment]
    return vm, cache
