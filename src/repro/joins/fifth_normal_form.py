"""The 5th-normal-form example from the paper's introduction.

``Sells(salesperson, brand, productType)`` records which products each
salesperson sells.  When every salesperson sells exactly the cross product
of a brand set and a type set, the relation satisfies the join dependency
over its three binary projections and (being reconstructible from smaller
relations) is *not* in 5NF; the normalised schema stores the three binary
projections and recomputes ``Sells`` as their natural join -- which is
precisely a triangle enumeration over the union of the three bipartite
graphs (see :mod:`repro.joins.triangle_join`).
"""

from __future__ import annotations

from repro.joins.relation import Relation

SELLS_ATTRIBUTES = ("salesperson", "brand", "productType")


def decompose_sells(sells: Relation) -> tuple[Relation, Relation, Relation]:
    """Project ``Sells`` onto its three attribute pairs.

    Returns ``(SB, BT, ST)`` with schemas ``(salesperson, brand)``,
    ``(brand, productType)`` and ``(salesperson, productType)``.
    """
    _require_sells_schema(sells)
    sb = sells.project(("salesperson", "brand"), name="SB")
    bt = sells.project(("brand", "productType"), name="BT")
    st = sells.project(("salesperson", "productType"), name="ST")
    return sb, bt, st


def reconstruct_by_joins(sb: Relation, bt: Relation, st: Relation) -> Relation:
    """Recompute ``Sells`` as the natural join ``SB ⋈ BT ⋈ ST``."""
    joined = sb.natural_join(bt).natural_join(st)
    return Relation(
        "Sells(reconstructed)",
        SELLS_ATTRIBUTES,
        (
            _reorder(row, joined.attributes)
            for row in joined.rows()
        ),
    )


def is_join_dependent(sells: Relation) -> bool:
    """Whether ``Sells`` equals the join of its three binary projections.

    When this holds the relation is not in 5NF and should be decomposed; the
    reconstruction of the decomposed form is then a triangle-enumeration
    instance.
    """
    _require_sells_schema(sells)
    sb, bt, st = decompose_sells(sells)
    return reconstruct_by_joins(sb, bt, st) == _canonical(sells)


def _require_sells_schema(sells: Relation) -> None:
    if tuple(sells.attributes) != SELLS_ATTRIBUTES:
        raise ValueError(
            f"expected schema {SELLS_ATTRIBUTES}, got {tuple(sells.attributes)}"
        )


def _canonical(sells: Relation) -> Relation:
    return Relation("Sells(reconstructed)", SELLS_ATTRIBUTES, sells.rows())


def _reorder(row: tuple, attributes: tuple[str, ...]) -> tuple:
    mapping = dict(zip(attributes, row))
    return tuple(mapping[a] for a in SELLS_ATTRIBUTES)
