"""Computing the 3-way cyclic join by triangle enumeration.

Viewing each binary relation as a bipartite graph on (tagged) attribute
values, the natural join ``SB ⋈ BT ⋈ ST`` is exactly the set of triangles
of the union graph -- the observation that motivates the paper.  The
function below builds that graph, runs any of the package's enumeration
algorithms on it, and converts the emitted triangles back into join tuples,
returning both the relation and the full
:class:`repro.core.api.EnumerationResult` so experiments can compare I/O
costs across algorithms (e.g. the cache-aware algorithm versus the
pipelined block-nested-loop join).
"""

from __future__ import annotations

from typing import Any

from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.core.result import EnumerationResult
from repro.graph.graph import Graph
from repro.joins.relation import Relation

#: Tags distinguishing the three attribute domains in the union graph.
_TAG_FIRST = "A"
_TAG_SHARED = "B"
_TAG_SECOND = "C"


def triangle_join(
    first: Relation,
    second: Relation,
    third: Relation,
    algorithm: str = "cache_aware",
    params: MachineParams | None = None,
    seed: int = 0,
    name: str | None = None,
) -> tuple[Relation, EnumerationResult]:
    """Join three binary relations forming a cycle via triangle enumeration.

    The relations must form a cyclic join over three attributes: ``first``
    over ``(X, Y)``, ``second`` over ``(Y, Z)`` and ``third`` over
    ``(X, Z)`` (attribute *names* are taken from the schemas and must match
    pairwise).  Returns the joined relation over ``(X, Y, Z)`` and the
    enumeration result of the underlying triangle run.
    """
    x_attr, y_attr = first.attributes
    y_attr2, z_attr = second.attributes
    x_attr2, z_attr2 = third.attributes
    if y_attr != y_attr2 or x_attr != x_attr2 or z_attr != z_attr2:
        raise ValueError(
            "relations do not form a cyclic join: expected schemas (X,Y), (Y,Z), (X,Z); "
            f"got {first.attributes}, {second.attributes}, {third.attributes}"
        )

    graph = Graph()
    graph.add_edges(((_TAG_FIRST, x), (_TAG_SHARED, y)) for x, y in first.rows())
    graph.add_edges(((_TAG_SHARED, y), (_TAG_SECOND, z)) for y, z in second.rows())
    graph.add_edges(((_TAG_FIRST, x), (_TAG_SECOND, z)) for x, z in third.rows())

    engine = TriangleEngine(graph, params=params)
    result = engine.run(algorithm, seed=seed, collect=True)

    joined = Relation(name or "triangle-join", (x_attr, y_attr, z_attr))
    assert result.triangles is not None
    rows: list[tuple[Any, Any, Any]] = []
    for triangle in result.triangles:
        values: dict[str, Any] = {}
        for tag, value in triangle:
            values[tag] = value
        rows.append((values[_TAG_FIRST], values[_TAG_SHARED], values[_TAG_SECOND]))
    joined.add_many(rows)
    return joined, result
