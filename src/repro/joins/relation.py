"""A minimal relational-algebra layer.

Just enough of the relational model to state and exercise the paper's
database motivation: named attributes, projection, selection and natural
join.  Tuples are stored as plain Python tuples in attribute order; the
relation is a set (bag semantics are not needed for the 5NF example).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ReproError

Row = tuple[Any, ...]


class RelationError(ReproError):
    """Raised for schema mismatches in relational operations."""


class Relation:
    """An in-memory relation with named attributes and set semantics."""

    def __init__(self, name: str, attributes: Sequence[str], rows: Iterable[Row] = ()) -> None:
        if len(set(attributes)) != len(attributes):
            raise RelationError(f"duplicate attribute names in {attributes!r}")
        self.name = name
        self.attributes = tuple(attributes)
        self._rows: set[Row] = set()
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------
    # construction and basic access
    # ------------------------------------------------------------------
    def add(self, row: Row) -> None:
        """Insert one tuple (must match the arity of the schema)."""
        row = tuple(row)
        if len(row) != len(self.attributes):
            raise RelationError(
                f"tuple {row!r} has arity {len(row)}, schema {self.attributes!r} "
                f"expects {len(self.attributes)}"
            )
        self._rows.add(row)

    def add_many(self, rows: Iterable[Row]) -> None:
        """Insert many tuples in one call (bulk construction path)."""
        arity = len(self.attributes)
        materialised = [tuple(row) for row in rows]
        for row in materialised:
            if len(row) != arity:
                raise RelationError(
                    f"tuple {row!r} has arity {len(row)}, schema {self.attributes!r} "
                    f"expects {arity}"
                )
        self._rows.update(materialised)

    def rows(self) -> set[Row]:
        """All tuples (a copy)."""
        return set(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.attributes != other.attributes:
            return False
        return self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - relations are rarely hashed
        return hash((self.attributes, frozenset(self._rows)))

    # ------------------------------------------------------------------
    # relational operators
    # ------------------------------------------------------------------
    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Projection onto the given attributes (duplicates collapse)."""
        indices = [self._index_of(a) for a in attributes]
        projected = Relation(name or f"pi_{self.name}", attributes)
        for row in self._rows:
            projected.add(tuple(row[i] for i in indices))
        return projected

    def select(self, predicate: Callable[[dict[str, Any]], bool], name: str | None = None) -> "Relation":
        """Selection by a predicate over an attribute-name -> value mapping."""
        selected = Relation(name or f"sigma_{self.name}", self.attributes)
        for row in self._rows:
            if predicate(dict(zip(self.attributes, row))):
                selected.add(row)
        return selected

    def natural_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join on all shared attribute names (hash join)."""
        shared = [a for a in self.attributes if a in other.attributes]
        other_only = [a for a in other.attributes if a not in shared]
        result_attributes = list(self.attributes) + other_only
        result = Relation(name or f"({self.name} ⋈ {other.name})", result_attributes)

        self_key_indices = [self._index_of(a) for a in shared]
        other_key_indices = [other._index_of(a) for a in shared]
        other_value_indices = [other._index_of(a) for a in other_only]

        buckets: dict[Row, list[Row]] = {}
        for row in other._rows:
            key = tuple(row[i] for i in other_key_indices)
            buckets.setdefault(key, []).append(row)
        for row in self._rows:
            key = tuple(row[i] for i in self_key_indices)
            for match in buckets.get(key, ()):
                result.add(row + tuple(match[i] for i in other_value_indices))
        return result

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError as error:
            raise RelationError(
                f"attribute {attribute!r} not in schema {self.attributes!r}"
            ) from error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, {self.attributes!r}, {len(self._rows)} rows)"
