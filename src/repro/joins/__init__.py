"""The database-theory motivation: cyclic joins computed by triangle enumeration."""

from repro.joins.fifth_normal_form import (
    decompose_sells,
    is_join_dependent,
    reconstruct_by_joins,
)
from repro.joins.relation import Relation
from repro.joins.triangle_join import triangle_join

__all__ = [
    "Relation",
    "decompose_sells",
    "is_join_dependent",
    "reconstruct_by_joins",
    "triangle_join",
]
