"""Compressed-sparse-row adjacency over the canonical (forward) edge list.

The canonical edge list is already grouped by source and sorted by target
within each group, so the CSR build is just a ``bincount`` for the row
pointer and a view of the target column for the index array -- no sorting,
no hashing.  Only *forward* neighbourhoods are stored (``N+(u) = {v : (u, v)
in E, u < v}``), which is exactly what the compact-forward kernels consume.

Alongside the adjacency, :class:`CSRAdjacency` keeps the sorted 64-bit edge
keys ``u * n + v`` that turn "is ``(u, w)`` an edge?" into one
``searchsorted`` probe -- the membership test at the heart of the vectorized
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.exceptions import GraphFormatError
from repro.fastpath.arrays import MAX_PACKED_VERTICES, pack_edges, require_numpy


@dataclass(frozen=True)
class CSRAdjacency:
    """Forward adjacency of a canonical edge list in CSR form.

    Attributes
    ----------
    indptr:
        ``(n + 1,)`` row pointer; ``indices[indptr[u]:indptr[u+1]]`` is the
        ascending forward neighbourhood of ``u``.
    indices:
        ``(E,)`` concatenated forward neighbourhoods (the target column).
    sources:
        ``(E,)`` source column, aligned with ``indices`` (the canonical edge
        list split by column, kept for the kernels' chunk iteration).
    edge_keys:
        ``(E,)`` sorted keys ``u * num_vertices + v`` for membership probes
        (int32 while ``n^2`` fits, int64 beyond; the kernels build their
        probe keys in the same dtype).
    num_vertices:
        ``n``: one past the largest vertex id seen (ranks are dense, so this
        equals the vertex count for engine-canonical inputs).
    """

    indptr: Any
    indices: Any
    sources: Any
    edge_keys: Any
    num_vertices: int

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def forward(self, vertex: int) -> Any:
        """The ascending forward neighbourhood of ``vertex`` (a view)."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def out_degrees(self) -> Any:
        """Forward degree of every vertex (``indptr`` differences)."""
        module = require_numpy("CSR degrees")
        return module.diff(self.indptr)

    @classmethod
    def from_canonical_edges(
        cls, edges: "Sequence[tuple[int, int]] | Any", dtype: str = "auto"
    ) -> "CSRAdjacency":
        """Build the CSR from an already-canonical edge list or packed array.

        The input must be in canonical form (``u < v`` per edge, sorted
        lexicographically, deduplicated) -- the form every
        :class:`~repro.core.engine.TriangleEngine` run provides.  Raises
        :class:`~repro.exceptions.GraphFormatError` when the invariant is
        visibly violated (unsorted rows), because a silently mis-grouped CSR
        would produce wrong triangle counts rather than an error.
        """
        module = require_numpy("the CSR adjacency builder")
        array = pack_edges(edges, dtype=dtype)
        if array.shape[0] == 0:
            empty = module.empty(0, dtype=module.int64)
            return cls(
                indptr=module.zeros(1, dtype=module.int64),
                indices=empty,
                sources=empty,
                edge_keys=empty,
                num_vertices=0,
            )
        u = array[:, 0]
        v = array[:, 1]
        if bool((u >= v).any()):
            raise GraphFormatError("canonical edges must satisfy u < v in every row")
        num_vertices = int(v.max()) + 1
        if num_vertices > MAX_PACKED_VERTICES:
            raise GraphFormatError(
                f"{num_vertices} vertices overflow the packed 64-bit edge keys"
            )
        keys = u.astype(module.int64) * num_vertices + v.astype(module.int64)
        if bool((keys[1:] <= keys[:-1]).any()):
            raise GraphFormatError(
                "canonical edges must be sorted lexicographically without duplicates"
            )
        # Key dtype policy: keys span [0, n^2); while that fits int32 the
        # narrow keys halve the memory traffic of the kernels' searchsorted
        # probes.  46340^2 is the largest square below 2^31.
        if num_vertices <= 46_340:
            keys = keys.astype(module.int32)
        counts = module.bincount(u, minlength=num_vertices)
        indptr = module.zeros(num_vertices + 1, dtype=module.int64)
        module.cumsum(counts, out=indptr[1:])
        return cls(
            indptr=indptr,
            indices=module.ascontiguousarray(v),
            sources=module.ascontiguousarray(u),
            edge_keys=keys,
            num_vertices=num_vertices,
        )
