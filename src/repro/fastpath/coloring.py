"""Batch colour assignment over vertex arrays.

The sharded execution path (:mod:`repro.core.sharding`) colours both
endpoints of every canonical edge to partition the list into colour-pair
classes.  The colourings themselves (:mod:`repro.hashing.coloring`) evaluate
a degree-3 polynomial over the Mersenne field ``2^61 - 1`` -- arbitrary-
precision arithmetic that NumPy cannot vectorise directly without 128-bit
intermediates.  What *can* be vectorised is the redundancy: an edge list
touches each distinct vertex many times, so the hash is evaluated once per
**unique** vertex (through the colouring's own ``colors_of``, bit-identical
to the serial path, cache included) and scattered back to all occurrences
with one ``np.unique``/fancy-index round trip.
"""

from __future__ import annotations

from typing import Any

from repro.fastpath.arrays import require_numpy
from repro.hashing.coloring import Coloring
from repro.hashing.coloring import colors_of as bulk_colors


def colors_for_vertices(coloring: Coloring, vertices: Any) -> Any:
    """Colours of a vertex array, hashing each distinct vertex once.

    ``vertices`` is any integer array (or array-like); the result is an
    int64 array of the same shape.  Exactly equivalent to mapping
    ``coloring.color_of`` over the array -- the polynomial is evaluated by
    the colouring itself, so cached values and seeds behave identically.
    """
    module = require_numpy("batch colour assignment")
    array = module.asarray(vertices, dtype=module.int64)
    if array.size == 0:
        return module.empty(array.shape, dtype=module.int64)
    unique, inverse = module.unique(array, return_inverse=True)
    unique_colors = module.array(bulk_colors(coloring, unique.tolist()), dtype=module.int64)
    return unique_colors[inverse].reshape(array.shape)


def edge_color_pairs(coloring: Coloring, edges: Any) -> tuple[Any, Any]:
    """Endpoint colours ``(colors_u, colors_v)`` of a packed ``(E, 2)`` array.

    Both columns are coloured through one shared unique-vertex pass, so the
    hash work is ``O(distinct vertices)`` rather than ``O(2 E)``.
    """
    module = require_numpy("batch colour assignment")
    both = colors_for_vertices(coloring, module.asarray(edges, dtype=module.int64).reshape(-1))
    pairs = both.reshape(-1, 2)
    return pairs[:, 0], pairs[:, 1]
