"""Vectorized compact-forward triangle kernels.

A triangle with ranked vertices ``a < b < c`` is discovered -- exactly once
-- from its lowest edge ``(a, b)``: ``c`` lies in ``N+(b)`` (so ``c > b``)
and ``(a, c)`` must also be an edge.  The kernels turn that into arrays:

1. take a chunk of edges ``(u, v)``;
2. expand every ``w ∈ N+(v)`` with one repeat/arange segment expansion
   (no Python loop over edges);
3. probe each candidate pair ``(u, w)`` against the sorted edge-key array
   with one :func:`numpy.searchsorted` call per chunk;
4. count the hits, or gather them into ``(k, 3)`` triangle chunks.

Work is ``sum over edges (u,v) of |N+(v)|`` probes, the same wedge count the
pure-Python compact-forward oracle walks -- the fast path changes the
constant factor (array ops instead of per-wedge bytecode), not the
asymptotics.  Chunking bounds the transient arrays to roughly
``chunk_size * average forward degree`` entries regardless of graph size.

Every public function falls back to the pure-Python oracle when NumPy is
absent (or ``force_python`` is requested), so callers never have to gate on
:data:`repro.fastpath.arrays.HAVE_NUMPY` themselves.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.emit import Triangle
from repro.fastpath.arrays import HAVE_NUMPY, require_numpy
from repro.fastpath.csr import CSRAdjacency

#: Edges per kernel chunk; at the default the transient candidate arrays
#: stay in the tens of megabytes even on dense graphs.
DEFAULT_CHUNK_SIZE = 65_536


def _expand_segments(module: Any, starts: Any, counts: Any) -> Any:
    """Indices selecting ``counts[i]`` consecutive items from ``starts[i]`` on.

    The standard repeat/arange trick: for segments ``[starts[i], starts[i] +
    counts[i])`` it returns their concatenation without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return module.empty(0, dtype=module.int64)
    prefix = module.cumsum(counts) - counts
    return (
        module.repeat(starts.astype(module.int64), counts)
        + module.arange(total, dtype=module.int64)
        - module.repeat(prefix, counts)
    )


def _chunk_expansion(module: Any, csr: CSRAdjacency, lo: int, hi: int) -> tuple[Any, Any, Any]:
    """Per-edge wedge expansion of the rows ``[lo, hi)``.

    Returns ``(counts, w, keys)``: the forward-degree of each edge's upper
    endpoint, the flattened closing-vertex candidates, and the probe key
    ``u * n + w`` of every candidate (built with one repeat over the fused
    per-edge term ``u * n`` rather than materialising a repeated ``u``).
    """
    u = csr.sources[lo:hi]
    v = csr.indices[lo:hi]
    starts = csr.indptr[v]
    counts = csr.indptr[v + module.int64(1)] - starts
    take = _expand_segments(module, starts, counts)
    w = csr.indices[take]
    key_dtype = csr.edge_keys.dtype
    keys = module.repeat(u.astype(key_dtype) * csr.num_vertices, counts) + w.astype(
        key_dtype, copy=False
    )
    return counts, w, keys


def _probe_hits(module: Any, padded_keys: Any, keys: Any) -> Any:
    """Boolean mask: is each probe key an edge key?  One searchsorted per call.

    ``padded_keys`` is the sorted edge-key array with one trailing sentinel
    (-1, never a valid key), so out-of-range ``searchsorted`` positions
    resolve to the sentinel instead of needing a clamp pass.
    """
    positions = module.searchsorted(padded_keys[:-1], keys)
    return padded_keys[positions] == keys


def _padded_edge_keys(module: Any, csr: CSRAdjacency) -> Any:
    """The sorted edge keys plus the -1 sentinel slot (see :func:`_probe_hits`)."""
    return module.concatenate(
        [csr.edge_keys, module.array([-1], dtype=csr.edge_keys.dtype)]
    )


def count_triangles_csr(csr: CSRAdjacency, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Number of triangles of a CSR adjacency (never materialises them)."""
    module = require_numpy("the vectorized count kernel")
    if csr.num_edges == 0:
        return 0
    padded = _padded_edge_keys(module, csr)
    total = 0
    for lo in range(0, csr.num_edges, chunk_size):
        hi = min(lo + chunk_size, csr.num_edges)
        _counts, _w, keys = _chunk_expansion(module, csr, lo, hi)
        if keys.shape[0] == 0:
            continue
        total += int(module.count_nonzero(_probe_hits(module, padded, keys)))
    return total


def iter_triangle_chunks_csr(
    csr: CSRAdjacency, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[Any]:
    """Yield ``(k, 3)`` arrays of ranked triangles, ascending within each row.

    Triangles arrive in a deterministic compact-forward discovery order:
    lexicographic by their lowest edge ``(a, b)``, then by the closing
    vertex ``c`` (the reference oracle walks the same wedges but emits in
    set-iteration order, so only the *sets* coincide).
    """
    module = require_numpy("the vectorized enumeration kernel")
    padded = _padded_edge_keys(module, csr) if csr.num_edges else None
    for lo in range(0, csr.num_edges, chunk_size):
        hi = min(lo + chunk_size, csr.num_edges)
        counts, w, keys = _chunk_expansion(module, csr, lo, hi)
        if keys.shape[0] == 0:
            continue
        hits = _probe_hits(module, padded, keys)
        if not bool(hits.any()):
            continue
        # Recover (u, v) of each hit from the probe key and the per-edge
        # counts -- cheaper than repeating both endpoint columns upfront.
        uu = keys[hits].astype(module.int64) // csr.num_vertices
        vv = module.repeat(csr.indices[lo:hi].astype(module.int64), counts)[hits]
        yield module.stack([uu, vv, w[hits].astype(module.int64)], axis=1)


# ----------------------------------------------------------------------
# backend-agnostic entry points (automatic pure-Python fallback)
# ----------------------------------------------------------------------
def _use_python(force_python: bool) -> bool:
    return force_python or not HAVE_NUMPY


def count_triangles_fast(
    edges: "Sequence[tuple[int, int]] | Any",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    dtype: str = "auto",
    force_python: bool = False,
) -> int:
    """Triangle count of a canonical edge list, vectorized when possible."""
    if _use_python(force_python):
        return len(triangles_in_memory(_as_edge_list(edges)))
    return count_triangles_csr(
        CSRAdjacency.from_canonical_edges(edges, dtype=dtype), chunk_size=chunk_size
    )


def iter_triangle_chunks(
    edges: "Sequence[tuple[int, int]] | Any",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    dtype: str = "auto",
    force_python: bool = False,
) -> Iterator[list[Triangle]]:
    """Yield batches of ranked triangle tuples (list-of-tuples per chunk).

    The tuple-list form feeds :func:`repro.core.emit.emit_all` directly; the
    array-native variant is :func:`iter_triangle_chunks_csr`.
    """
    if _use_python(force_python):
        triangles = triangles_in_memory(_as_edge_list(edges))
        for lo in range(0, len(triangles), chunk_size):
            yield triangles[lo : lo + chunk_size]
        return
    csr = CSRAdjacency.from_canonical_edges(edges, dtype=dtype)
    for chunk in iter_triangle_chunks_csr(csr, chunk_size=chunk_size):
        yield [tuple(row) for row in chunk.tolist()]


def enumerate_triangles_fast(
    edges: "Sequence[tuple[int, int]] | Any",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    dtype: str = "auto",
    force_python: bool = False,
) -> list[Triangle]:
    """Materialised ranked triangle list of a canonical edge list."""
    out: list[Triangle] = []
    for chunk in iter_triangle_chunks(
        edges, chunk_size=chunk_size, dtype=dtype, force_python=force_python
    ):
        out.extend(chunk)
    return out


def _as_edge_list(edges: "Sequence[tuple[int, int]] | Any") -> list[tuple[int, int]]:
    """Normalise array inputs back to tuples for the pure-Python oracle."""
    if HAVE_NUMPY:
        module = require_numpy()
        if isinstance(edges, module.ndarray):
            return [tuple(edge) for edge in edges.tolist()]
    return list(edges)
