"""Packed edge arrays and vectorized canonicalisation.

The canonical representation used across the package is a list of integer
pairs ``(u, v)`` with ``u < v``, deduplicated and sorted lexicographically
(:meth:`repro.graph.graph.Graph.degree_order`).  This module produces the
same *shape* of representation with array operations: orientation is a
``minimum``/``maximum``, deduplication is one :func:`numpy.unique` over
packed 64-bit edge keys, and the degree ranking is a ``bincount`` plus one
``lexsort``.

Tie-breaking differs deliberately from :class:`~repro.graph.graph.Graph`:
equal-degree vertices are ranked by *label* here (``repr``-string order
there, a historical artefact).  Rank-space output may therefore differ
between the two canonicalisers, but the triangle sets they induce are
identical in label space -- which is what the differential test suite pins.

Everything is gated on :data:`HAVE_NUMPY`; callers that need a guaranteed
array backend call :func:`require_numpy` and get a clear
:class:`~repro.exceptions.FastPathUnavailableError` instead of an
``ImportError`` from deep inside a kernel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.exceptions import FastPathUnavailableError, GraphFormatError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy

try:  # NumPy is optional: the container may be a bare interpreter.
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via force_python tests
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Accepted ``dtype`` option values of the vectorized algorithms.
DTYPES = ("auto", "int32", "int64")

#: Vertex-id ceiling of the packed edge keys: keys are ``u * n + v`` in
#: int64, so ``n`` must stay below ``2**31`` for the product to fit.
MAX_PACKED_VERTICES = 2**31


def require_numpy(feature: str = "the vectorized fast path") -> "numpy":
    """Return the ``numpy`` module or raise a descriptive error."""
    if not HAVE_NUMPY:
        raise FastPathUnavailableError(
            f"{feature} requires NumPy, which is not installed; "
            "use force_python=True (or the pure-Python algorithms) instead"
        )
    return np


def resolve_dtype(dtype: str, num_vertices: int) -> Any:
    """Map a ``dtype`` option value to a concrete NumPy integer dtype.

    ``auto`` picks ``int32`` while vertex ids fit (half the memory traffic
    of the kernels) and ``int64`` beyond; an explicit ``int32`` is rejected
    when the graph does not fit rather than silently overflowing.
    """
    module = require_numpy("dtype resolution")
    if dtype not in DTYPES:
        raise ValueError(f"dtype must be one of {', '.join(DTYPES)}, got {dtype!r}")
    fits32 = num_vertices < 2**31
    if dtype == "int32" and not fits32:
        raise ValueError(
            f"dtype='int32' cannot index {num_vertices} vertices; use 'auto' or 'int64'"
        )
    if dtype == "int64" or not fits32:
        return module.int64
    return module.int32


def pack_edges(edges: "Sequence[tuple[int, int]] | numpy.ndarray", dtype: str = "auto") -> Any:
    """Pack an edge sequence into a contiguous ``(E, 2)`` integer array.

    Already-array inputs are passed through (re-typed only if needed), so
    kernels can be fed either the engine's canonical tuple list or a
    previously packed array without copying twice.
    """
    module = require_numpy("edge packing")
    if isinstance(edges, module.ndarray):
        array = edges
        if array.ndim != 2 or (array.size and array.shape[1] != 2):
            raise GraphFormatError(f"edge array must have shape (E, 2), got {array.shape}")
    else:
        # ``fromiter`` over the flattened pairs is ~3x faster than
        # ``np.array`` on a list of tuples (no per-tuple sequence protocol).
        flat = module.fromiter(
            itertools.chain.from_iterable(edges), dtype=module.int64, count=2 * len(edges)
        )
        array = flat.reshape(-1, 2)
    if array.size == 0:
        # Route the empty shape through resolve_dtype too: an invalid
        # ``dtype`` option must raise here exactly as it would on a
        # non-empty input (and ``auto`` stays int32 -- zero vertices fit).
        return array.reshape(0, 2).astype(resolve_dtype(dtype, 0))
    if int(array.min()) < 0:
        # Negative ids would otherwise flow silently into ``num_vertices``
        # (via ``max() + 1``) and corrupt CSR indexing downstream.
        raise GraphFormatError("vertex ids must be non-negative")
    num_vertices = int(array.max()) + 1
    return module.ascontiguousarray(array, dtype=resolve_dtype(dtype, num_vertices))


@dataclass(frozen=True)
class CanonicalArrays:
    """The array-native canonical form of a raw edge list.

    ``edges`` is the ``(E, 2)`` ranked edge array (``u < v`` per row, rows
    sorted lexicographically, no duplicates); ``vertex_of[rank]`` maps a
    rank back to the original integer vertex label.
    """

    edges: Any
    vertex_of: Any

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_of.shape[0])

    def edge_list(self) -> list[tuple[int, int]]:
        """The canonical edges as the package-wide list-of-tuples form."""
        return [tuple(edge) for edge in self.edges.tolist()]


def canonicalize_edge_array(
    edges: "Iterable[tuple[int, int]] | numpy.ndarray", dtype: str = "auto"
) -> CanonicalArrays:
    """Vectorized dedup / orient / degree-rank of a raw integer edge list.

    Mirrors the semantics of building a :class:`~repro.graph.graph.Graph`
    and taking its degree order: self-loops raise
    :class:`~repro.exceptions.GraphFormatError`, duplicate edges (in either
    orientation) are merged, and vertices are ranked by ascending degree
    (ties broken by label; see the module docstring).  Isolated vertices
    cannot occur in an edge list, so ``vertex_of`` covers exactly the
    vertices with at least one edge.
    """
    module = require_numpy("vectorized canonicalisation")
    raw = edges if isinstance(edges, module.ndarray) else module.array(list(edges))
    if raw.size == 0:
        empty = module.empty((0, 2), dtype=module.int64)
        return CanonicalArrays(edges=empty, vertex_of=module.empty(0, dtype=module.int64))
    if raw.ndim != 2 or raw.shape[1] != 2:
        raise GraphFormatError(f"edge array must have shape (E, 2), got {raw.shape}")
    if not module.issubdtype(raw.dtype, module.integer):
        raise GraphFormatError(f"edge array must hold integers, got dtype {raw.dtype}")
    raw = raw.astype(module.int64, copy=False)
    if bool((raw < 0).any()):
        raise GraphFormatError("vertex ids must be non-negative")
    loops = raw[:, 0] == raw[:, 1]
    if bool(loops.any()):
        vertex = int(raw[loops][0, 0])
        raise GraphFormatError(f"self-loop on vertex {vertex} is not allowed in a simple graph")

    low = module.minimum(raw[:, 0], raw[:, 1])
    high = module.maximum(raw[:, 0], raw[:, 1])
    if int(high.max()) + 1 > MAX_PACKED_VERTICES:
        raise GraphFormatError(
            f"vertex ids beyond {MAX_PACKED_VERTICES} overflow the packed 64-bit edge keys"
        )
    span = int(high.max()) + 1
    unique_keys = module.unique(low * span + high)
    low, high = unique_keys // span, unique_keys % span

    labels, inverse = module.unique(module.concatenate([low, high]), return_inverse=True)
    degrees = module.bincount(inverse, minlength=labels.shape[0])
    # Ascending (degree, label); lexsort keys are least-significant first.
    order = module.lexsort((labels, degrees))
    rank_of = module.empty(labels.shape[0], dtype=module.int64)
    rank_of[order] = module.arange(labels.shape[0], dtype=module.int64)

    ranked = rank_of[inverse].reshape(2, -1)
    u = module.minimum(ranked[0], ranked[1])
    v = module.maximum(ranked[0], ranked[1])
    edge_order = module.lexsort((v, u))
    packed = module.stack([u[edge_order], v[edge_order]], axis=1)
    target = resolve_dtype(dtype, labels.shape[0])
    return CanonicalArrays(
        edges=module.ascontiguousarray(packed, dtype=target), vertex_of=labels[order]
    )


def canonicalize_edges_python(
    edges: Iterable[tuple[int, int]],
) -> tuple[list[tuple[int, int]], list[int]]:
    """Pure-Python mirror of :func:`canonicalize_edge_array`.

    The NumPy-absent fallback: returns ``(ranked_edges, vertex_of)`` with
    the same semantics -- and the same (degree, label) tie-breaking -- as
    the array version, so the two backends produce identical canonical
    forms.
    """
    unique: set[tuple[int, int]] = set()
    for u, v in edges:
        if u == v:
            raise GraphFormatError(f"self-loop on vertex {u} is not allowed in a simple graph")
        if u < 0 or v < 0:
            raise GraphFormatError("vertex ids must be non-negative")
        unique.add((u, v) if u < v else (v, u))
    degrees: dict[int, int] = {}
    # repro-lint: ignore[RPR102] -- integer increments commute; `degrees` is only read via sorted()
    for u, v in unique:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    ranked = sorted(degrees, key=lambda vertex: (degrees[vertex], vertex))
    rank_of = {vertex: rank for rank, vertex in enumerate(ranked)}
    out = []
    # repro-lint: ignore[RPR102] -- visit order cannot leak: `out` is sorted before returning
    for u, v in unique:
        ru, rv = rank_of[u], rank_of[v]
        out.append((ru, rv) if ru < rv else (rv, ru))
    out.sort()
    return out, ranked
