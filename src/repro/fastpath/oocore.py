"""Out-of-core triangle backend: the canonical graph lives in spill files.

The simulated substrates (:mod:`repro.extmem`) *model* the external-memory
cost of Pagh & Silvestri's algorithms; this module actually pays it.  A raw
edge stream of any length is canonicalised in bounded-memory passes over
``numpy`` arrays spilled to disk, and the compact-forward kernels then walk
the resulting CSR through ``numpy.memmap`` windows -- resident memory stays
``O(chunk_rows + V)`` regardless of E, so graphs 10-100x larger than RAM
stream through the same kernels the in-memory backend uses.

Canonicalisation pipeline (every O(E) structure on disk)
--------------------------------------------------------
1. **Ingest** -- stream edges in ``chunk_rows`` batches, validate
   (non-negative ids, no self-loops), orient each pair ``(low, high)`` and
   append the int64 pairs to ``raw.mmap``.
2. **Runs** -- re-read ``raw.mmap`` chunk by chunk, pack each chunk into
   64-bit label keys ``low * span + high``, sort in memory and append one
   sorted run per chunk to ``runs.mmap``.
3. **Merge** -- k-way ``heapq.merge`` over buffered run readers;
   deduplicate with a chunked diff-with-carry, scatter degree increments
   into a label-indexed memmap and write the unique oriented pairs to
   ``dedup.mmap``.
4. **Rank** -- scan the degree memmap for present labels, ``lexsort`` by
   ascending ``(degree, label)`` (the tie-break of
   :func:`~repro.fastpath.arrays.canonicalize_edge_array`) and materialise
   ``vertex_of`` (rank -> label) on disk plus a label-indexed ``rank_of``
   memmap.  This is the one pass holding ``O(V)`` in memory -- E never is.
5. **Remap** -- stream ``dedup.mmap``, map both endpoints through
   ``rank_of``, re-orient in rank space and external-sort the rank keys
   ``u * V + v`` into a second run file.
6. **CSR** -- merge the rank-key runs (already duplicate-free) into the
   final ``edges.mmap`` (the ``(E, 2)`` canonical array, whose columns are
   the CSR ``sources``/``indices``), ``keys.mmap`` (sorted probe keys with
   the kernels' trailing ``-1`` sentinel stored on disk) and a chunked
   cumsum-with-carry ``indptr.mmap``.

Sequential passes use buffered file reads/writes (``fromfile``/``tofile``)
so the bytes they move are visible to ``/proc/self/io`` -- the hook
``benchmarks/oocore_bench.py`` uses to cross-check the substrate's simulated
I/O counters against reality.  Memory maps are reserved for the structures
that are genuinely random-access (degrees, ranks, the final CSR), and the
kernels drop their resident pages with ``madvise(MADV_DONTNEED)`` after
every window so peak RSS stays near the chunk budget.

Intermediate files are deleted as soon as the next pass has consumed them;
everything lives in a per-store spill directory (``*.mmap`` files) that
:meth:`OocoreStore.close` removes -- with a ``weakref.finalize`` backstop,
so an abandoned store cannot leak spill past garbage collection.

Registered as ``oocore_count`` / ``oocore_enum`` (substrate ``in-memory``),
which buys differential parity coverage from ``tests/test_differential.py``
for free; the direct :func:`build_store` API is the entry point for inputs
too large to hold as a Python edge list (it accepts a stream of ``(E, 2)``
array chunks as well as plain pairs).
"""

from __future__ import annotations

import heapq
import itertools
import mmap as mmap_module
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.core.emit import emit_all
from repro.core.registry import (
    AlgorithmOptions,
    SubstrateContext,
    register_algorithm,
)
from repro.exceptions import GraphFormatError, OptionsError
from repro.fastpath.arrays import (
    DTYPES,
    MAX_PACKED_VERTICES,
    require_numpy,
    resolve_dtype,
)
from repro.fastpath.kernels import _chunk_expansion, _probe_hits

#: Suffix of every spill file; the leak tests glob for it.
SPILL_SUFFIX = ".mmap"

#: Edges (or keys) resident per pass at the default setting: 256k int64
#: pairs is ~4 MiB of array data per transient chunk.
DEFAULT_CHUNK_ROWS = 1 << 18

#: Same key-narrowing policy as :class:`~repro.fastpath.csr.CSRAdjacency`:
#: probe keys span [0, n^2), and 46340^2 is the largest square below 2^31.
_INT32_KEY_VERTICES = 46_340


# ----------------------------------------------------------------------
# spill directory lifecycle
# ----------------------------------------------------------------------
class _SpillDir:
    """A per-store scratch directory of ``*.mmap`` files, removed on close."""

    def __init__(self, base: str | None) -> None:
        if base is not None:
            os.makedirs(base, exist_ok=True)
        # mkdtemp gives a mode-0700 directory unique to this store, so many
        # stores (and many processes) can share one configured spill root.
        self.root = tempfile.mkdtemp(prefix="repro-oocore-", dir=base)
        self.bytes_written = 0

    def path(self, name: str) -> str:
        return os.path.join(self.root, name + SPILL_SUFFIX)

    def account(self, path: str) -> None:
        """Add a fully-written file to the spill-volume tally."""
        if os.path.exists(path):
            self.bytes_written += os.path.getsize(path)

    def discard(self, path: str) -> None:
        """Delete an intermediate file its consumer pass is done with."""
        if os.path.exists(path):
            os.remove(path)

    def close(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


# ----------------------------------------------------------------------
# chunked input normalisation
# ----------------------------------------------------------------------
def _edge_chunk_stream(module: Any, edges: Any, chunk_rows: int) -> Iterator[Any]:
    """Yield ``(k, 2)`` int64 chunks from any supported edge input.

    Accepts a packed ``(E, 2)`` array (windowed in place), an iterable of
    ``(u, v)`` pairs (batched through one transient list per chunk), or an
    iterable of ``(k, 2)`` array chunks -- the streaming form callers use
    when even the raw edge list never fits in memory.
    """
    if isinstance(edges, module.ndarray):
        if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
            raise GraphFormatError(f"edge array must have shape (E, 2), got {edges.shape}")
        for lo in range(0, edges.shape[0], chunk_rows):
            yield module.asarray(edges[lo : lo + chunk_rows], dtype=module.int64)
        return
    iterator = iter(edges)
    first = next(iterator, None)
    if first is None:
        return
    if isinstance(first, module.ndarray):
        for item in itertools.chain([first], iterator):
            array = module.asarray(item, dtype=module.int64)
            if array.ndim != 2 or (array.size and array.shape[1] != 2):
                raise GraphFormatError(
                    f"edge chunk must have shape (k, 2), got {array.shape}"
                )
            for lo in range(0, array.shape[0], chunk_rows):
                yield array[lo : lo + chunk_rows]
        return
    chained = itertools.chain([first], iterator)
    while True:
        batch = list(itertools.islice(chained, chunk_rows))
        if not batch:
            return
        array = module.array(batch, dtype=module.int64)
        if array.ndim != 2 or array.shape[1] != 2:
            raise GraphFormatError(f"edge pairs must have two endpoints, got {array.shape}")
        yield array


# ----------------------------------------------------------------------
# the canonicalisation passes
# ----------------------------------------------------------------------
def _ingest_oriented(
    module: Any, spill: _SpillDir, edges: Any, chunk_rows: int
) -> tuple[str, int, int]:
    """Pass 1: validate, orient and append raw int64 pairs; returns span."""
    path = spill.path("raw")
    rows = 0
    max_id = -1
    with open(path, "wb") as out:
        for chunk in _edge_chunk_stream(module, edges, chunk_rows):
            if chunk.shape[0] == 0:
                continue
            if int(chunk.min()) < 0:
                raise GraphFormatError("vertex ids must be non-negative")
            loops = chunk[:, 0] == chunk[:, 1]
            if bool(loops.any()):
                vertex = int(chunk[loops][0, 0])
                raise GraphFormatError(
                    f"self-loop on vertex {vertex} is not allowed in a simple graph"
                )
            low = module.minimum(chunk[:, 0], chunk[:, 1])
            high = module.maximum(chunk[:, 0], chunk[:, 1])
            max_id = max(max_id, int(high.max()))
            module.stack([low, high], axis=1).tofile(out)
            rows += int(chunk.shape[0])
    if max_id + 1 > MAX_PACKED_VERTICES:
        raise GraphFormatError(
            f"vertex ids beyond {MAX_PACKED_VERTICES} overflow the packed 64-bit edge keys"
        )
    spill.account(path)
    return path, rows, max_id + 1


def _sorted_key_runs(
    module: Any,
    spill: _SpillDir,
    name: str,
    pairs_path: str,
    rows: int,
    pack: Any,
    chunk_rows: int,
) -> tuple[str, list[tuple[int, int]]]:
    """External-sort pass: per-chunk key packing + in-memory sort into runs.

    ``pack(pairs)`` maps a ``(k, 2)`` int64 chunk to its int64 sort keys;
    the returned bounds are half-open key ranges of each sorted run inside
    the run file.
    """
    runs_path = spill.path(name)
    bounds: list[tuple[int, int]] = []
    offset = 0
    with open(pairs_path, "rb") as src, open(runs_path, "wb") as out:
        while offset < rows:
            take = min(chunk_rows, rows - offset)
            pairs = module.fromfile(src, dtype=module.int64, count=take * 2).reshape(-1, 2)
            keys = pack(pairs)
            keys.sort()
            keys.tofile(out)
            bounds.append((offset, offset + take))
            offset += take
    spill.account(runs_path)
    return runs_path, bounds


def _run_values(
    module: Any, path: str, start: int, stop: int, window: int
) -> Iterator[int]:
    """Stream one sorted run as Python ints through a bounded read buffer."""
    itemsize = 8  # int64 keys
    with open(path, "rb") as src:
        src.seek(start * itemsize)
        remaining = stop - start
        while remaining:
            take = min(window, remaining)
            yield from module.fromfile(src, dtype=module.int64, count=take).tolist()
            remaining -= take


def _merged_key_chunks(
    module: Any, runs_path: str, bounds: list[tuple[int, int]], chunk_rows: int
) -> Iterator[Any]:
    """K-way merge of the sorted runs, re-batched into int64 key chunks."""
    window = max(1024, chunk_rows // max(1, len(bounds)))
    streams = [_run_values(module, runs_path, lo, hi, window) for lo, hi in bounds]
    merged: Iterable[int] = heapq.merge(*streams) if len(streams) > 1 else streams[0]
    while True:
        batch = list(itertools.islice(merged, chunk_rows))
        if not batch:
            return
        yield module.array(batch, dtype=module.int64)


def _merge_dedup_degrees(
    module: Any,
    spill: _SpillDir,
    runs_path: str,
    bounds: list[tuple[int, int]],
    span: int,
    chunk_rows: int,
) -> tuple[str, str, int]:
    """Pass 3: merge runs, drop duplicate keys, stream degree increments."""
    dedup_path = spill.path("dedup")
    degree_path = spill.path("degree")
    degrees = module.memmap(degree_path, dtype=module.int64, mode="w+", shape=(span,))
    unique = 0
    previous = -1
    with open(dedup_path, "wb") as out:
        for keys in _merged_key_chunks(module, runs_path, bounds, chunk_rows):
            mask = module.empty(keys.shape[0], dtype=bool)
            mask[0] = keys[0] != previous
            mask[1:] = keys[1:] != keys[:-1]
            previous = int(keys[-1])
            keys = keys[mask]
            if keys.shape[0] == 0:
                continue
            low = keys // span
            high = keys - low * span
            module.add.at(degrees, low, 1)
            module.add.at(degrees, high, 1)
            module.stack([low, high], axis=1).tofile(out)
            unique += int(keys.shape[0])
    degrees.flush()
    del degrees
    spill.account(dedup_path)
    spill.account(degree_path)
    return dedup_path, degree_path, unique


def _rank_vertices(
    module: Any, spill: _SpillDir, degree_path: str, span: int, chunk_rows: int
) -> tuple[str, str, int]:
    """Pass 4: ascending (degree, label) ranking; O(V) resident, E on disk."""
    degrees = module.memmap(degree_path, dtype=module.int64, mode="r", shape=(span,))
    label_parts = []
    degree_parts = []
    for lo in range(0, span, chunk_rows):
        window = module.asarray(degrees[lo : lo + chunk_rows])
        present = module.flatnonzero(window)
        if present.shape[0]:
            label_parts.append(present + lo)
            degree_parts.append(window[present])
    if label_parts:
        labels = module.concatenate(label_parts)
        vertex_degrees = module.concatenate(degree_parts)
    else:  # pragma: no cover - empty graphs short-circuit before this pass
        labels = module.empty(0, dtype=module.int64)
        vertex_degrees = labels
    # Least-significant key first: ascending degree, ties by ascending
    # label -- the exact tie-break of canonicalize_edge_array.
    order = module.lexsort((labels, vertex_degrees))
    vertex_of = labels[order]
    num_vertices = int(vertex_of.shape[0])
    vertex_of_path = spill.path("vertex_of")
    with open(vertex_of_path, "wb") as out:
        vertex_of.tofile(out)
    rank_path = spill.path("rank_of")
    rank_of = module.memmap(rank_path, dtype=module.int64, mode="w+", shape=(span,))
    for lo in range(0, num_vertices, chunk_rows):
        hi = min(lo + chunk_rows, num_vertices)
        rank_of[vertex_of[lo:hi]] = module.arange(lo, hi, dtype=module.int64)
    rank_of.flush()
    del rank_of
    spill.account(vertex_of_path)
    spill.account(rank_path)
    return rank_path, vertex_of_path, num_vertices


def _remap_to_rank_runs(
    module: Any,
    spill: _SpillDir,
    dedup_path: str,
    unique: int,
    rank_path: str,
    span: int,
    num_vertices: int,
    chunk_rows: int,
) -> tuple[str, list[tuple[int, int]]]:
    """Pass 5: endpoint remap through ``rank_of`` + external sort of rank keys."""
    rank_of = module.memmap(rank_path, dtype=module.int64, mode="r", shape=(span,))

    def pack(pairs: Any) -> Any:
        ranked_a = rank_of[pairs[:, 0]]
        ranked_b = rank_of[pairs[:, 1]]
        u = module.minimum(ranked_a, ranked_b)
        v = module.maximum(ranked_a, ranked_b)
        return u * num_vertices + v

    return _sorted_key_runs(module, spill, "rankruns", dedup_path, unique, pack, chunk_rows)


def _write_csr(
    module: Any,
    spill: _SpillDir,
    runs_path: str,
    bounds: list[tuple[int, int]],
    num_vertices: int,
    dtype: str,
    chunk_rows: int,
) -> tuple[str, str, str, int, Any, Any]:
    """Pass 6: merge rank-key runs into the final edges/keys/indptr files."""
    edge_dtype = resolve_dtype(dtype, num_vertices)
    key_dtype = module.int32 if num_vertices <= _INT32_KEY_VERTICES else module.int64
    edges_path = spill.path("edges")
    keys_path = spill.path("keys")
    counts_path = spill.path("counts")
    counts = module.memmap(counts_path, dtype=module.int64, mode="w+", shape=(num_vertices,))
    written = 0
    with open(edges_path, "wb") as edges_out, open(keys_path, "wb") as keys_out:
        for keys in _merged_key_chunks(module, runs_path, bounds, chunk_rows):
            # The label-space dedup made keys globally unique, and the
            # label->rank remap is a bijection, so no second dedup here.
            u = keys // num_vertices
            v = keys - u * num_vertices
            module.add.at(counts, u, 1)
            module.stack([u, v], axis=1).astype(edge_dtype).tofile(edges_out)
            keys.astype(key_dtype).tofile(keys_out)
            written += int(keys.shape[0])
        # The kernels' probe sentinel lives on disk too: keys.mmap holds
        # E + 1 entries, the last being -1 (never a valid key).
        module.array([-1], dtype=key_dtype).tofile(keys_out)
    indptr_path = spill.path("indptr")
    indptr = module.memmap(indptr_path, dtype=module.int64, mode="w+", shape=(num_vertices + 1,))
    indptr[0] = 0
    carry = 0
    for lo in range(0, num_vertices, chunk_rows):
        hi = min(lo + chunk_rows, num_vertices)
        prefix = module.cumsum(module.asarray(counts[lo:hi])) + carry
        indptr[lo + 1 : hi + 1] = prefix
        carry = int(prefix[-1])
    indptr.flush()
    del indptr
    del counts
    spill.account(edges_path)
    spill.account(keys_path)
    spill.account(counts_path)
    spill.account(indptr_path)
    spill.discard(counts_path)
    return edges_path, keys_path, indptr_path, written, edge_dtype, key_dtype


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class OocoreStore:
    """A canonical graph spilled to disk, duck-typing the CSR protocol.

    Exposes the attribute set the compact-forward kernels consume
    (``sources`` / ``indices`` / ``indptr`` / ``edge_keys`` /
    ``num_vertices``), each backed by a read-only ``numpy.memmap`` over the
    spill files, plus ``vertex_of`` to translate store ranks back to the
    input's vertex labels.  Build through :func:`build_store`; release with
    :meth:`close` (also a context manager), which removes the spill
    directory.  A ``weakref.finalize`` backstop removes it on garbage
    collection if ``close`` was never called.
    """

    def __init__(
        self,
        spill: _SpillDir,
        edges: Any,
        edge_keys_padded: Any,
        indptr: Any,
        vertex_of: Any,
        num_vertices: int,
        num_edges: int,
        chunk_rows: int,
    ) -> None:
        self._spill = spill
        self._edges = edges
        self._edge_keys_padded = edge_keys_padded
        self._indptr = indptr
        self._vertex_of = vertex_of
        self.num_vertices = num_vertices
        self._num_edges = num_edges
        self.chunk_rows = chunk_rows
        self.spill_bytes = spill.bytes_written
        self._closed = False
        self._finalizer = weakref.finalize(self, shutil.rmtree, spill.root, ignore_errors=True)

    # -- CSR protocol (what the kernels consume) ------------------------
    @property
    def edges(self) -> Any:
        """The ``(E, 2)`` canonical rank-space edge array (memmap)."""
        return self._edges

    @property
    def sources(self) -> Any:
        return self._edges[:, 0]

    @property
    def indices(self) -> Any:
        return self._edges[:, 1]

    @property
    def indptr(self) -> Any:
        return self._indptr

    @property
    def edge_keys(self) -> Any:
        return self._edge_keys_padded[:-1]

    @property
    def edge_keys_padded(self) -> Any:
        """Sorted probe keys including the trailing ``-1`` sentinel slot."""
        return self._edge_keys_padded

    @property
    def vertex_of(self) -> Any:
        """Store rank -> input vertex label (memmap, length ``num_vertices``)."""
        return self._vertex_of

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def spill_root(self) -> str:
        """The spill directory owned (and removed on close) by this store."""
        return self._spill.root

    # -- resource lifecycle ---------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def release_pages(self) -> None:
        """Drop resident pages of the read-only maps (data stays on disk).

        ``MADV_DONTNEED`` on a read-only file-backed mapping discards the
        in-core pages; later accesses refault from the page cache (or
        disk).  The kernels call this after every window so peak RSS tracks
        the chunk budget rather than the file sizes.
        """
        for array in (self._edges, self._edge_keys_padded, self._indptr, self._vertex_of):
            backing = getattr(array, "_mmap", None)
            if backing is None:
                continue
            try:
                backing.madvise(mmap_module.MADV_DONTNEED)
            except (AttributeError, OSError, ValueError):  # pragma: no cover - platform
                pass

    def close(self) -> None:
        """Release the memmaps and remove the spill directory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        empty = _empty_arrays(require_numpy("the out-of-core store"), "auto")
        # Drop the mapped views before unlinking their files.
        self._edges, self._edge_keys_padded, self._indptr, self._vertex_of = empty
        self._finalizer()

    def __enter__(self) -> "OocoreStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"spill={self._spill.root}"
        return f"OocoreStore(V={self.num_vertices}, E={self._num_edges}, {state})"


def _empty_arrays(module: Any, dtype: str) -> tuple[Any, Any, Any, Any]:
    """In-RAM stand-ins for the zero-edge graph (memmaps cannot be empty)."""
    edge_dtype = resolve_dtype(dtype, 0)
    return (
        module.empty((0, 2), dtype=edge_dtype),
        module.array([-1], dtype=module.int32),
        module.zeros(1, dtype=module.int64),
        module.empty(0, dtype=module.int64),
    )


def build_store(
    edges: "Sequence[tuple[int, int]] | Iterable[Any] | Any",
    *,
    spill_dir: str | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    dtype: str = "auto",
) -> OocoreStore:
    """Canonicalise an edge stream into a spill-backed :class:`OocoreStore`.

    ``edges`` may be a packed ``(E, 2)`` array, any iterable of ``(u, v)``
    integer pairs, or an iterable of ``(k, 2)`` array chunks (the streaming
    form for inputs that never fit in memory).  Semantics match
    :func:`~repro.fastpath.arrays.canonicalize_edge_array` exactly:
    self-loops and negative ids raise
    :class:`~repro.exceptions.GraphFormatError`, duplicates (in either
    orientation) merge, vertices rank by ascending ``(degree, label)``.
    ``chunk_rows`` bounds the rows resident per pass; ``spill_dir`` roots
    the scratch files (a private temp directory by default).
    """
    module = require_numpy("the out-of-core backend")
    resolve_dtype(dtype, 0)  # validate the option before any file I/O
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    spill = _SpillDir(spill_dir)
    try:
        raw_path, rows, span = _ingest_oriented(module, spill, edges, chunk_rows)
        if rows == 0:
            spill.discard(raw_path)
            empty = _empty_arrays(module, dtype)
            return OocoreStore(spill, *empty, num_vertices=0, num_edges=0, chunk_rows=chunk_rows)
        runs_path, bounds = _sorted_key_runs(
            module, spill, "runs", raw_path, rows, lambda p: p[:, 0] * span + p[:, 1], chunk_rows
        )
        spill.discard(raw_path)
        dedup_path, degree_path, unique = _merge_dedup_degrees(
            module, spill, runs_path, bounds, span, chunk_rows
        )
        spill.discard(runs_path)
        rank_path, vertex_of_path, num_vertices = _rank_vertices(
            module, spill, degree_path, span, chunk_rows
        )
        spill.discard(degree_path)
        rank_runs_path, rank_bounds = _remap_to_rank_runs(
            module, spill, dedup_path, unique, rank_path, span, num_vertices, chunk_rows
        )
        spill.discard(dedup_path)
        spill.discard(rank_path)
        edges_path, keys_path, indptr_path, num_edges, edge_dtype, key_dtype = _write_csr(
            module, spill, rank_runs_path, rank_bounds, num_vertices, dtype, chunk_rows
        )
        spill.discard(rank_runs_path)
        return OocoreStore(
            spill,
            module.memmap(edges_path, dtype=edge_dtype, mode="r", shape=(num_edges, 2)),
            module.memmap(keys_path, dtype=key_dtype, mode="r", shape=(num_edges + 1,)),
            module.memmap(indptr_path, dtype=module.int64, mode="r", shape=(num_vertices + 1,)),
            module.memmap(vertex_of_path, dtype=module.int64, mode="r", shape=(num_vertices,)),
            num_vertices=num_vertices,
            num_edges=num_edges,
            chunk_rows=chunk_rows,
        )
    except BaseException:
        spill.close()
        raise


# ----------------------------------------------------------------------
# windowed compact-forward kernels over the store
# ----------------------------------------------------------------------
def count_triangles_store(store: OocoreStore, chunk_rows: int | None = None) -> int:
    """Triangle count of a spilled store; resident arrays stay window-sized."""
    module = require_numpy("the out-of-core count kernel")
    if store.num_edges == 0:
        return 0
    step = chunk_rows or store.chunk_rows
    padded = store.edge_keys_padded
    total = 0
    for lo in range(0, store.num_edges, step):
        hi = min(lo + step, store.num_edges)
        _counts, _w, keys = _chunk_expansion(module, store, lo, hi)
        if keys.shape[0]:
            total += int(module.count_nonzero(_probe_hits(module, padded, keys)))
        store.release_pages()
    return total


def iter_triangle_chunks_store(
    store: OocoreStore, chunk_rows: int | None = None
) -> Iterator[Any]:
    """Yield ``(k, 3)`` int64 arrays of store-rank triangles per edge window.

    Same deterministic discovery order as
    :func:`~repro.fastpath.kernels.iter_triangle_chunks_csr`: lexicographic
    by lowest edge, then closing vertex.  Map rows through
    :attr:`OocoreStore.vertex_of` to translate back to input labels.
    """
    module = require_numpy("the out-of-core enumeration kernel")
    if store.num_edges == 0:
        return
    step = chunk_rows or store.chunk_rows
    padded = store.edge_keys_padded
    for lo in range(0, store.num_edges, step):
        hi = min(lo + step, store.num_edges)
        counts, w, keys = _chunk_expansion(module, store, lo, hi)
        if keys.shape[0] == 0:
            store.release_pages()
            continue
        hits = _probe_hits(module, padded, keys)
        if bool(hits.any()):
            uu = keys[hits].astype(module.int64) // store.num_vertices
            vv = module.repeat(store.indices[lo:hi].astype(module.int64), counts)[hits]
            yield module.stack([uu, vv, w[hits].astype(module.int64)], axis=1)
        store.release_pages()


# ----------------------------------------------------------------------
# colour-pair partitioning for the sharder
# ----------------------------------------------------------------------
def color_partition(store: OocoreStore, coloring: Any) -> dict[tuple[int, int], Any]:
    """Partition the canonical edges by endpoint-colour pair, on disk.

    The memmap twin of the sharder's ``_partition_by_color_pairs``: classes
    hold identical edges in identical (canonical) order, but live as
    half-open row ranges of one grouped spill file instead of Python lists
    -- each returned :class:`~repro.poolexec.segments.MemmapSlice` is a
    picklable pointer shard workers resolve straight from disk.  Two
    streaming passes: count class sizes per window, then stable-group each
    window into its classes' file cursors.  The grouped file lives in the
    store's spill directory, so slices stay valid until ``store.close()``.
    """
    module = require_numpy("out-of-core colour partitioning")
    from repro.fastpath.coloring import edge_color_pairs
    from repro.poolexec.segments import MemmapSlice

    num_colors = coloring.num_colors
    num_classes = num_colors * num_colors
    step = store.chunk_rows
    class_sizes = module.zeros(num_classes, dtype=module.int64)
    for lo in range(0, store.num_edges, step):
        window = store.edges[lo : lo + step]
        colors_u, colors_v = edge_color_pairs(coloring, window)
        class_sizes += module.bincount(
            colors_u * num_colors + colors_v, minlength=num_classes
        )
    grouped_path = store._spill.path("classes")
    if store.num_edges == 0:
        return {}
    edge_dtype = store.edges.dtype
    grouped = module.memmap(grouped_path, dtype=edge_dtype, mode="w+", shape=(store.num_edges, 2))
    starts = module.zeros(num_classes, dtype=module.int64)
    module.cumsum(class_sizes[:-1], out=starts[1:])
    cursors = starts.copy()
    for lo in range(0, store.num_edges, step):
        window = module.asarray(store.edges[lo : lo + step])
        colors_u, colors_v = edge_color_pairs(coloring, window)
        keys = colors_u * num_colors + colors_v
        order = module.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_window = window[order]
        boundaries = module.flatnonzero(module.diff(sorted_keys)) + 1
        seg_starts = module.concatenate(([0], boundaries)).tolist()
        seg_stops = module.concatenate((boundaries, [sorted_keys.shape[0]])).tolist()
        for seg_lo, seg_hi in zip(seg_starts, seg_stops):
            key = int(sorted_keys[seg_lo])
            cursor = int(cursors[key])
            grouped[cursor : cursor + (seg_hi - seg_lo)] = sorted_window[seg_lo:seg_hi]
            cursors[key] = cursor + (seg_hi - seg_lo)
    grouped.flush()
    del grouped
    store._spill.account(grouped_path)
    dtype_name = module.dtype(edge_dtype).name
    slices: dict[tuple[int, int], Any] = {}
    for key in range(num_classes):
        size = int(class_sizes[key])
        if size == 0:
            continue
        start = int(starts[key])
        slices[(key // num_colors, key % num_colors)] = MemmapSlice(
            path=grouped_path, dtype=dtype_name, start=start, stop=start + size
        )
    return slices


# ----------------------------------------------------------------------
# registry entries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OocoreOptions(AlgorithmOptions):
    """Knobs of the out-of-core algorithms."""

    #: Root directory of the spill files; each run creates (and removes) a
    #: private subdirectory inside it.  Default: the system temp dir.
    spill_dir: str | None = None
    #: Rows resident per canonicalisation pass and per kernel window.
    chunk_rows: int = DEFAULT_CHUNK_ROWS
    #: Index dtype of the spilled edge array: ``auto`` / ``int32`` / ``int64``.
    dtype: str = "auto"

    def validate(self) -> None:
        if self.spill_dir is not None and not isinstance(self.spill_dir, str):
            raise OptionsError(f"spill_dir must be a string path, got {self.spill_dir!r}")
        if isinstance(self.chunk_rows, bool) or not isinstance(self.chunk_rows, int):
            raise OptionsError(f"chunk_rows must be an int, got {self.chunk_rows!r}")
        if self.chunk_rows < 1:
            raise OptionsError(f"chunk_rows must be >= 1, got {self.chunk_rows}")
        if self.dtype not in DTYPES:
            raise OptionsError(f"dtype must be one of {', '.join(DTYPES)}, got {self.dtype!r}")


@dataclass(frozen=True)
class OocoreReport:
    """Per-run metadata of an out-of-core run (spill volume, windowing)."""

    backend: str
    num_vertices: int
    num_edges: int
    chunk_rows: int
    spill_bytes: int
    windows: int


def _store_for_context(context: SubstrateContext, options: OocoreOptions) -> OocoreStore:
    """The engine's spilled store, built once per (engine, options) and cached.

    Cached in :attr:`SubstrateContext.cache` like the vectorized CSR, so
    sweeps re-run kernels without re-canonicalising; the engine's ``close``
    releases every cached store (removing its spill directory).
    """
    cache = context.cache
    key = f"oocore-store:{options.dtype}:{options.chunk_rows}:{options.spill_dir or ''}"
    if cache is not None:
        cached = cache.get(key)
        if cached is not None and not cached.closed:
            return cached
    store = build_store(
        context.edges,
        spill_dir=options.spill_dir,
        chunk_rows=options.chunk_rows,
        dtype=options.dtype,
    )
    if cache is not None:
        cache[key] = store
    return store


def _report(store: OocoreStore, windows: int) -> OocoreReport:
    return OocoreReport(
        backend="oocore",
        num_vertices=store.num_vertices,
        num_edges=store.num_edges,
        chunk_rows=store.chunk_rows,
        spill_bytes=store.spill_bytes,
        windows=windows,
    )


def _enumerate(context: SubstrateContext, sink: Any, options: OocoreOptions) -> OocoreReport:
    """Shared runner: windowed enumeration, translated back to engine ranks."""
    module = require_numpy("the out-of-core backend")
    store = _store_for_context(context, options)
    vertex_of = store.vertex_of
    windows = 0
    for chunk in iter_triangle_chunks_store(store, chunk_rows=options.chunk_rows):
        # Store ranks -> the engine's vertex labels (for engine-canonical
        # input these coincide, but the mapping keeps the algorithm correct
        # for any integer edge list), re-sorted ascending per row.
        mapped = module.sort(vertex_of[chunk], axis=1)
        emit_all(sink, [tuple(row) for row in mapped.tolist()])
        windows += 1
    return _report(store, windows)


def _count(context: SubstrateContext, options: OocoreOptions) -> tuple[int, OocoreReport]:
    """Count-only adapter: never materialises or translates a triangle."""
    store = _store_for_context(context, options)
    count = count_triangles_store(store, chunk_rows=options.chunk_rows)
    windows = -(-store.num_edges // options.chunk_rows)
    return count, _report(store, windows)


@register_algorithm(
    "oocore_count",
    summary="Out-of-core compact-forward count (memmap CSR, spill-backed canonicalisation)",
    section="1.3 (compact-forward, external arrays)",
    io_bound="real disk I/O (O(chunk_rows + V) resident)",
    substrate="in-memory",
    accepts_seed=False,
    options=OocoreOptions,
    counter=_count,
)
def _run_oocore_count(context: SubstrateContext, sink: Any, options: OocoreOptions) -> Any:
    # Reached only when the caller wants the triangles (sink / collect);
    # pure count queries dispatch to the counter adapter above.
    return _enumerate(context, sink, options)


@register_algorithm(
    "oocore_enum",
    summary="Out-of-core compact-forward enumeration (memmap CSR, windowed emission)",
    section="1.3 (compact-forward, external arrays)",
    io_bound="real disk I/O (O(chunk_rows + V) resident)",
    substrate="in-memory",
    accepts_seed=False,
    options=OocoreOptions,
)
def _run_oocore_enum(context: SubstrateContext, sink: Any, options: OocoreOptions) -> Any:
    return _enumerate(context, sink, options)
