"""Registry entries of the vectorized in-memory backend.

Two algorithms join the registry, both on the ``in-memory`` substrate:

``vector_count``
    The counting specialist: its count-only adapter never materialises a
    triangle (one running total per kernel chunk), which is what the engine's
    :meth:`~repro.core.engine.TriangleEngine.count` fast path dispatches to.
    When a sink or ``collect=True`` is supplied it enumerates like
    ``vector_enum``.

``vector_enum``
    The enumeration twin: yields every triangle through the sink's
    ``emit_many`` batch path, one kernel chunk at a time, so streaming
    consumers (``engine.stream``) hold one chunk of triangles at most.

Both carry :class:`VectorOptions` -- dtype selection, kernel chunk size and
a ``force_python`` escape hatch -- and both silently use the pure-Python
reference path when NumPy is absent, so registration (and every CLI /
experiment that sweeps the registry) never depends on NumPy being
installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.emit import emit_all
from repro.core.registry import (
    AlgorithmOptions,
    SubstrateContext,
    register_algorithm,
)
from repro.core.baselines.in_memory import triangles_in_memory
from repro.exceptions import OptionsError
from repro.fastpath.arrays import DTYPES, HAVE_NUMPY
from repro.fastpath.csr import CSRAdjacency
from repro.fastpath.kernels import (
    DEFAULT_CHUNK_SIZE,
    count_triangles_csr,
    iter_triangle_chunks_csr,
)


@dataclass(frozen=True)
class VectorOptions(AlgorithmOptions):
    """Knobs of the vectorized in-memory algorithms."""

    #: Index dtype of the CSR arrays: ``auto`` (int32 while vertex ids fit,
    #: the default), or an explicit ``int32`` / ``int64``.
    dtype: str = "auto"
    #: Edges per kernel chunk; bounds the transient candidate arrays (and
    #: the size of each ``emit_many`` batch).
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Force the pure-Python reference path even when NumPy is available
    #: (differential tests pin backend parity with this).
    force_python: bool = False

    def validate(self) -> None:
        if self.dtype not in DTYPES:
            raise OptionsError(f"dtype must be one of {', '.join(DTYPES)}, got {self.dtype!r}")
        if isinstance(self.chunk_size, bool) or not isinstance(self.chunk_size, int):
            raise OptionsError(f"chunk_size must be an int, got {self.chunk_size!r}")
        if self.chunk_size < 1:
            raise OptionsError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if not isinstance(self.force_python, bool):
            raise OptionsError(f"force_python must be a bool, got {self.force_python!r}")


@dataclass(frozen=True)
class VectorReport:
    """Per-run metadata of a vectorized algorithm (which backend actually ran)."""

    backend: str
    chunks: int


def _backend(options: VectorOptions) -> str:
    return "python" if options.force_python or not HAVE_NUMPY else "numpy"


def _csr_for_context(context: SubstrateContext, options: VectorOptions) -> CSRAdjacency:
    """The context's CSR adjacency, built once per engine and dtype.

    The engine canonicalises the graph once and shares a scratch dict
    across runs (:attr:`SubstrateContext.cache`); the packed CSR is a pure
    function of the canonical edges and the dtype option, so repeat runs --
    the ``repro compare`` sweep, the experiment grids, ``engine.count`` in
    a loop -- skip the array packing entirely.
    """
    cache = context.cache
    key = f"fastpath-csr:{options.dtype}"
    if cache is not None and key in cache:
        return cache[key]
    csr = CSRAdjacency.from_canonical_edges(context.edges, dtype=options.dtype)
    if cache is not None:
        cache[key] = csr
    return csr


def _enumerate(context: SubstrateContext, sink: Any, options: VectorOptions) -> VectorReport:
    """Shared runner: stream kernel chunks into the sink's batch path."""
    chunks = 0
    if _backend(options) == "python":
        triangles = triangles_in_memory(context.edges)
        for lo in range(0, len(triangles), options.chunk_size):
            emit_all(sink, triangles[lo : lo + options.chunk_size])
            chunks += 1
        return VectorReport(backend="python", chunks=chunks)
    csr = _csr_for_context(context, options)
    for chunk in iter_triangle_chunks_csr(csr, chunk_size=options.chunk_size):
        emit_all(sink, [tuple(row) for row in chunk.tolist()])
        chunks += 1
    return VectorReport(backend="numpy", chunks=chunks)


def _count(context: SubstrateContext, options: VectorOptions) -> tuple[int, VectorReport]:
    """Shared counter: one running total, no triangle ever materialised.

    Returns ``(count, report)`` so a count-only run still records which
    backend executed (``RunResult.report.backend``).
    """
    if _backend(options) == "python":
        return len(triangles_in_memory(context.edges)), VectorReport(backend="python", chunks=0)
    csr = _csr_for_context(context, options)
    count = count_triangles_csr(csr, chunk_size=options.chunk_size)
    chunks = -(-csr.num_edges // options.chunk_size)
    return count, VectorReport(backend="numpy", chunks=chunks)


@register_algorithm(
    "vector_count",
    summary="Vectorized compact-forward count (NumPy CSR kernels, no simulated I/O)",
    section="1.3 (compact-forward, array-native)",
    io_bound="none (internal memory)",
    substrate="in-memory",
    accepts_seed=False,
    options=VectorOptions,
    counter=_count,
)
def _run_vector_count(context: SubstrateContext, sink: Any, options: VectorOptions) -> Any:
    # Only reached when the caller wants the triangles themselves (a sink or
    # collect=True); pure count queries dispatch to the counter above.
    return _enumerate(context, sink, options)


@register_algorithm(
    "vector_enum",
    summary="Vectorized compact-forward enumeration (NumPy CSR kernels, no simulated I/O)",
    section="1.3 (compact-forward, array-native)",
    io_bound="none (internal memory)",
    substrate="in-memory",
    accepts_seed=False,
    options=VectorOptions,
)
def _run_vector_enum(context: SubstrateContext, sink: Any, options: VectorOptions) -> Any:
    return _enumerate(context, sink, options)
