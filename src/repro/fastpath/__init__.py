"""Array-native fast path: a vectorized in-memory backend.

The simulated substrates (:mod:`repro.extmem`) measure I/O; this package
measures nothing and simply runs as fast as the hardware allows.  It holds
the canonical edge list in packed NumPy arrays, builds a CSR adjacency over
them, and counts / enumerates triangles with compact-forward kernels whose
inner loops are array operations (``searchsorted`` membership probes over a
sorted edge-key array) instead of per-edge Python bytecode.

The package degrades gracefully: every entry point has a pure-Python
fallback (delegating to the reference oracle in
:mod:`repro.core.baselines.in_memory`) that is selected automatically when
NumPy is not importable, so the package -- and the registered
``vector_count`` / ``vector_enum`` algorithms -- work, merely slower, on a
bare interpreter.  :data:`HAVE_NUMPY` reports which backend is active.

Layout:

* :mod:`repro.fastpath.arrays` -- the NumPy gate, packed edge arrays and
  vectorized canonicalisation (dedup / orient / degree-rank).
* :mod:`repro.fastpath.csr` -- the CSR adjacency builder.
* :mod:`repro.fastpath.kernels` -- vectorized compact-forward count and
  enumeration kernels.
* :mod:`repro.fastpath.coloring` -- batch colour assignment over vertex
  arrays (accelerates the ``shards=c`` partitioning).
* :mod:`repro.fastpath.algorithms` -- the ``vector_count`` / ``vector_enum``
  registry entries (imported lazily with the built-ins).
* :mod:`repro.fastpath.oocore` -- the out-of-core sibling: spill-backed
  canonicalisation and memmapped CSR kernels, registered as
  ``oocore_count`` / ``oocore_enum`` (imported lazily with the built-ins
  too; like the rest of the package it degrades to a clear
  :class:`~repro.exceptions.FastPathUnavailableError` without NumPy).
"""

from repro.fastpath.arrays import (
    HAVE_NUMPY,
    CanonicalArrays,
    canonicalize_edge_array,
    pack_edges,
)
from repro.fastpath.coloring import colors_for_vertices, edge_color_pairs
from repro.fastpath.csr import CSRAdjacency
from repro.fastpath.kernels import (
    count_triangles_fast,
    enumerate_triangles_fast,
    iter_triangle_chunks,
)

__all__ = [
    "CSRAdjacency",
    "CanonicalArrays",
    "HAVE_NUMPY",
    "canonicalize_edge_array",
    "colors_for_vertices",
    "count_triangles_fast",
    "edge_color_pairs",
    "enumerate_triangles_fast",
    "iter_triangle_chunks",
    "pack_edges",
]
