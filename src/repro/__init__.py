"""Reproduction of *The Input/Output Complexity of Triangle Enumeration*.

This package reimplements, in pure Python, the algorithms and analysis of
Pagh & Silvestri (PODS 2014) together with every substrate they rely on:

* :mod:`repro.extmem` -- a simulated external-memory machine that counts
  block transfers, with both an explicit (cache-aware) interface and a
  cache-oblivious virtual machine backed by an LRU block cache.
* :mod:`repro.hashing` -- 4-wise independent hash families, ``GF(2^m)``
  arithmetic and the AGHP small-bias sample space used for derandomization.
* :mod:`repro.graph` -- graph representation, degree ordering and workload
  generators.
* :mod:`repro.core` -- the paper's triangle-enumeration algorithms
  (cache-aware randomized, cache-aware deterministic, cache-oblivious
  randomized) plus the external-memory baselines they are compared against.
* :mod:`repro.joins` -- the database motivation: 3-way cyclic joins computed
  via triangle enumeration.
* :mod:`repro.analysis` -- closed-form I/O bounds and measurement
  verification helpers.
* :mod:`repro.experiments` -- the experiment harness reproducing every
  quantitative claim of the paper.

The most convenient entry point is :func:`repro.enumerate_triangles`.
"""

from repro.analysis.model import MachineParams
from repro.core.api import (
    ALGORITHMS,
    count_triangles,
    enumerate_triangles,
    list_algorithms,
)
from repro.core.emit import CollectingSink, CountingSink, Triangle
from repro.extmem.stats import IOStats
from repro.graph.graph import Graph

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "CollectingSink",
    "CountingSink",
    "Graph",
    "IOStats",
    "MachineParams",
    "Triangle",
    "__version__",
    "count_triangles",
    "enumerate_triangles",
    "list_algorithms",
]
