"""Reproduction of *The Input/Output Complexity of Triangle Enumeration*.

This package reimplements, in pure Python, the algorithms and analysis of
Pagh & Silvestri (PODS 2014) together with every substrate they rely on:

* :mod:`repro.extmem` -- a simulated external-memory machine that counts
  block transfers, with both an explicit (cache-aware) interface and a
  cache-oblivious virtual machine backed by an LRU block cache.
* :mod:`repro.hashing` -- 4-wise independent hash families, ``GF(2^m)``
  arithmetic and the AGHP small-bias sample space used for derandomization.
* :mod:`repro.graph` -- graph representation, degree ordering and workload
  generators.
* :mod:`repro.core` -- the paper's triangle-enumeration algorithms
  (cache-aware randomized, cache-aware deterministic, cache-oblivious
  randomized) plus the external-memory baselines they are compared against,
  all registered in a declarative algorithm registry and executed by the
  reusable :class:`~repro.core.engine.TriangleEngine`.
* :mod:`repro.joins` -- the database motivation: 3-way cyclic joins computed
  via triangle enumeration.
* :mod:`repro.analysis` -- closed-form I/O bounds and measurement
  verification helpers.
* :mod:`repro.experiments` -- the experiment harness reproducing every
  quantitative claim of the paper.

The most convenient entry points are :class:`repro.TriangleEngine` (prepare
a graph once, run many configurations) and the one-shot
:func:`repro.enumerate_triangles` wrapper.
"""

from repro.analysis.model import MachineParams
from repro.core.api import (
    ALGORITHMS,
    count_triangles,
    enumerate_triangles,
    list_algorithms,
)
from repro.core.emit import CollectingSink, CountingSink, Triangle
from repro.core.engine import TriangleEngine
from repro.core.registry import AlgorithmSpec, algorithm_specs, register_algorithm
from repro.core.result import EnumerationResult, RunResult
from repro.extmem.stats import IOStats
from repro.graph.graph import Graph

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "CollectingSink",
    "CountingSink",
    "EnumerationResult",
    "Graph",
    "IOStats",
    "MachineParams",
    "RunResult",
    "Triangle",
    "TriangleEngine",
    "__version__",
    "algorithm_specs",
    "count_triangles",
    "enumerate_triangles",
    "list_algorithms",
    "register_algorithm",
]
