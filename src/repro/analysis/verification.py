"""Helpers for comparing measured I/O counts against the paper's bounds.

The experiments never try to match absolute constants; instead they verify
*shapes*:

* :func:`ratio_series` -- the measured/predicted ratio along a parameter
  sweep should stay inside a bounded band if the asymptotic form is right;
* :func:`fit_power_law` -- a log-log least-squares slope, used e.g. to check
  that I/Os grow like ``E^{1.5}`` for our algorithms versus ``E^2`` for the
  Hu-Tao-Chung baseline, or shrink like ``M^{-1/2}`` versus ``M^{-1}``.

Implemented with plain Python so the core library keeps zero dependencies;
``numpy`` is available in the environment but not required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log-log linear regression ``y ~ scale * x^exponent``."""

    exponent: float
    scale: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = scale * x^exponent`` by least squares in log-log space.

    Raises ``ValueError`` for fewer than two points or non-positive values,
    which cannot be log-transformed.
    """
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("a power-law fit needs at least two points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits require strictly positive data")

    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(log_x)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    ss_xx = sum((x - mean_x) ** 2 for x in log_x)
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_x, log_y))
    if ss_xx == 0:
        raise ValueError("all x values are identical; exponent is undefined")
    exponent = ss_xy / ss_xx
    intercept = mean_y - exponent * mean_x
    predictions = [intercept + exponent * x for x in log_x]
    ss_res = sum((y - p) ** 2 for y, p in zip(log_y, predictions))
    ss_tot = sum((y - mean_y) ** 2 for y in log_y)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=exponent, scale=math.exp(intercept), r_squared=r_squared)


def ratio_series(measured: Sequence[float], predicted: Sequence[float]) -> list[float]:
    """Element-wise measured/predicted ratios (``inf`` where predicted is zero)."""
    if len(measured) != len(predicted):
        raise ValueError(f"series length mismatch: {len(measured)} vs {len(predicted)}")
    ratios: list[float] = []
    for m, p in zip(measured, predicted):
        ratios.append(math.inf if p == 0 else m / p)
    return ratios


def bounded_ratio_band(ratios: Sequence[float]) -> float:
    """Spread of a ratio series: max/min.  Small spread means matching shape."""
    finite = [r for r in ratios if math.isfinite(r) and r > 0]
    if not finite:
        return math.inf
    return max(finite) / min(finite)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if the sequence is empty)."""
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))
