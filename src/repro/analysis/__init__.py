"""Cost model, closed-form I/O bounds and measurement verification."""

from repro.analysis.bounds import (
    bnlj_io,
    cache_aware_io,
    cache_oblivious_io,
    dementiev_io,
    hu_tao_chung_io,
    lower_bound_io,
    scan_io,
    sort_io,
    work_upper_bound,
)
from repro.analysis.model import MachineParams
from repro.analysis.verification import fit_power_law, ratio_series

__all__ = [
    "MachineParams",
    "bnlj_io",
    "cache_aware_io",
    "cache_oblivious_io",
    "dementiev_io",
    "fit_power_law",
    "hu_tao_chung_io",
    "lower_bound_io",
    "ratio_series",
    "scan_io",
    "sort_io",
    "work_upper_bound",
]
