"""Closed-form I/O and work bounds from the paper.

These functions evaluate the *asymptotic* expressions of the paper with unit
constants.  They are not meant to predict absolute I/O counts (constants
differ between the formulas and the operational simulator); experiments use
them to check the *shape* of measured curves: ratios of measured to predicted
values should stay within a bounded band as ``E``, ``M``, ``B`` and ``t``
vary.
"""

from __future__ import annotations

import math

from repro.analysis.model import MachineParams


def scan_io(n: int, params: MachineParams) -> float:
    """``scan(n) = ceil(n / B)``: I/Os to read ``n`` records sequentially."""
    return math.ceil(n / params.block_words)


def sort_io(n: int, params: MachineParams) -> float:
    """``sort(n)``: I/Os of external multiway merge sort.

    Uses the standard ``(n/B) * (1 + ceil(log_{M/B}(n/M)))`` form (run
    formation plus merge passes); the logarithm is clamped at zero for inputs
    that fit in memory.
    """
    if n <= 0:
        return 0.0
    memory = params.memory_words
    blocks = n / params.block_words
    if n <= memory:
        return max(1.0, blocks)
    fan_in = max(2, params.blocks_in_memory - 1)
    passes = math.ceil(math.log(n / memory, fan_in)) if n > memory else 0
    return blocks * (1 + max(0, passes))


def bnlj_io(edges: int, params: MachineParams) -> float:
    """Block-nested-loop-join baseline: ``E^3 / (M^2 B)`` I/Os (plus a scan)."""
    memory = params.memory_words
    block = params.block_words
    return edges**3 / (memory**2 * block) + scan_io(edges, params)


def hu_tao_chung_io(edges: int, params: MachineParams) -> float:
    """Hu-Tao-Chung (SIGMOD 2013): ``E^2 / (M B)`` I/Os (plus a scan)."""
    memory = params.memory_words
    block = params.block_words
    return edges**2 / (memory * block) + scan_io(edges, params)


def dementiev_io(edges: int, params: MachineParams) -> float:
    """Dementiev's sort-based algorithm: ``sort(E^{3/2})`` I/Os."""
    return sort_io(int(edges**1.5), params)


def cache_aware_io(edges: int, params: MachineParams) -> float:
    """Theorem 4: the randomized cache-aware algorithm, ``E^{3/2} / (sqrt(M) B)``."""
    memory = params.memory_words
    block = params.block_words
    return edges**1.5 / (math.sqrt(memory) * block) + scan_io(edges, params)


def cache_oblivious_io(edges: int, params: MachineParams) -> float:
    """Theorem 1: the cache-oblivious algorithm, ``E^{3/2} / (sqrt(M) B)``.

    The asymptotic bound coincides with the cache-aware one; the operational
    difference (an extra log factor from binary merge sort) is discussed in
    EXPERIMENTS.md.
    """
    return cache_aware_io(edges, params)


def lower_bound_io(triangles: int, params: MachineParams) -> float:
    """Theorem 3: ``t / (sqrt(M) B) + t^{2/3} / B`` I/Os to emit ``t`` triangles."""
    if triangles <= 0:
        return 0.0
    memory = params.memory_words
    block = params.block_words
    return triangles / (math.sqrt(memory) * block) + triangles ** (2.0 / 3.0) / block


def enumeration_lower_bound_for_clique(vertices: int, params: MachineParams) -> float:
    """Lower bound instantiated for a ``vertices``-clique (``t = C(n, 3)``)."""
    triangles = math.comb(vertices, 3)
    return lower_bound_io(triangles, params)


def work_upper_bound(edges: int) -> float:
    """Work bound: every algorithm in the paper performs ``O(E^{3/2})`` operations."""
    return float(edges) ** 1.5


def colour_count(edges: int, memory: int) -> int:
    """The number of colours ``c = sqrt(E / M)`` used by the cache-aware algorithm.

    The paper assumes ``sqrt(E/M)`` is an integer; we round it *up* so that
    the number of colour classes ``c^2`` is at least ``E/M``, which is what
    the Lemma 3 bound ``E[X_xi] <= E*M`` needs.  The deterministic variant
    additionally rounds up to a power of two.
    """
    if edges <= memory:
        return 1
    return max(1, math.ceil(math.sqrt(edges / memory)))


def high_degree_threshold(edges: int, memory: int) -> float:
    """Degree threshold ``sqrt(E * M)`` separating ``V_h`` from ``V_l`` (Section 2)."""
    return math.sqrt(edges * memory)


def expected_colour_collisions(edges: int, memory: int) -> float:
    """Lemma 3: upper bound ``E * M`` on ``E[X_xi]`` for the random colouring."""
    return float(edges) * float(memory)


def improvement_factor(edges: int, memory: int) -> float:
    """The paper's headline improvement ``min(sqrt(E/M), sqrt(M))`` over prior work."""
    if memory <= 0 or edges <= 0:
        return 1.0
    return min(math.sqrt(edges / memory), math.sqrt(memory))
