"""Machine parameters for the external-memory model.

The external-memory (I/O) model of Aggarwal & Vitter has two parameters: the
internal-memory capacity ``M`` and the block size ``B``, both measured here
in records ("words", see DESIGN.md).  :class:`MachineParams` bundles and
validates them and is shared by the explicit machine, the cache-oblivious VM
and the closed-form bounds in :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidConfigurationError


@dataclass(frozen=True)
class MachineParams:
    """External-memory machine parameters ``(M, B)`` in words.

    Attributes
    ----------
    memory_words:
        Internal-memory capacity ``M``.
    block_words:
        Block transfer size ``B``.
    """

    memory_words: int
    block_words: int

    def __post_init__(self) -> None:
        if self.block_words < 1:
            raise InvalidConfigurationError(
                f"block size must be at least one word, got {self.block_words}"
            )
        if self.memory_words < self.block_words:
            raise InvalidConfigurationError(
                f"internal memory ({self.memory_words}) must hold at least one block "
                f"({self.block_words})"
            )
        if self.memory_words < 2 * self.block_words:
            raise InvalidConfigurationError(
                "internal memory must hold at least two blocks for merging "
                f"(M={self.memory_words}, B={self.block_words})"
            )

    @property
    def blocks_in_memory(self) -> int:
        """``M / B``: the number of blocks that fit in internal memory."""
        return self.memory_words // self.block_words

    @property
    def is_tall_cache(self) -> bool:
        """Whether the tall-cache assumption ``M >= B^2`` holds.

        The paper (and cache-oblivious sorting in general) assumes a tall
        cache; the simulator does not *enforce* it, but experiments use
        configurations that satisfy it.
        """
        return self.memory_words >= self.block_words * self.block_words

    def scaled_memory(self, factor: float) -> "MachineParams":
        """Return a copy with the memory capacity scaled by ``factor``.

        Used by the regularity-condition experiment (``Q(n, M, B) =
        O(Q(n, 2M, B))``).
        """
        return MachineParams(
            memory_words=max(2 * self.block_words, int(self.memory_words * factor)),
            block_words=self.block_words,
        )

    @classmethod
    def default(cls) -> "MachineParams":
        """A small default configuration suitable for tests and examples."""
        return cls(memory_words=512, block_words=16)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(M={self.memory_words}, B={self.block_words})"
