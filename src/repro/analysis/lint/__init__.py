"""``repro lint`` -- the AST-based invariant analyzer.

The reproduction's headline claim (bit-identical counters and triangle
sets across serial, sharded, persistent-pool, faulted and service-tier
execution) rests on repo-wide contracts that used to live only in
convention: registry-only algorithm dispatch, deterministic iteration on
counted paths, spawn-safe callables shipped to worker pools, paired
resource cleanup, atomic artifact writes, and lock-guarded shared state.
This package turns each contract into a checked rule (stable ``RPR1xx``
codes, one :class:`~repro.analysis.lint.rules.Rule` visitor per code)
with inline ``# repro-lint: ignore[RPRnnn]`` suppressions and a
checked-in baseline so adoption never blocks on pre-existing findings.

Entry points: the ``repro lint`` CLI subcommand and, programmatically,
:func:`run_lint` / :func:`lint_source`.
"""

from repro.analysis.lint.baseline import Baseline, BaselineEntry
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.reporters import render_human, render_json
from repro.analysis.lint.rules import ALL_RULES, Rule, rule_catalog
from repro.analysis.lint.runner import LintReport, lint_source, run_lint

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "Rule",
    "lint_source",
    "render_human",
    "render_json",
    "rule_catalog",
    "run_lint",
]
