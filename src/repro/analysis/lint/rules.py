"""The six invariant rules, one :class:`ast.NodeVisitor`-style checker each.

Every rule is grounded in a contract this repo already relies on (and, for
most, a bug that slipped past review before the contract was checked):

========  ==============================================================
RPR101    algorithm-name string dispatch outside the registry
RPR102    nondeterministic iteration / RNG on counted algorithm paths
RPR103    spawn-unsafe callables handed to worker pools
RPR104    unpaired resource acquisition (shared memory, temp files, locks)
RPR105    non-atomic JSON writes targeting store/results paths
RPR106    lock-guarded fields touched outside their ``with <lock>`` block
========  ==============================================================

Rules are deliberately syntactic: they inspect one file's AST with a small
amount of local name tracking and a declarative guarded-field map, no
import resolution or cross-module dataflow.  That keeps them fast, fully
deterministic and runnable on any checkout -- the price is that each rule
documents the approximation it makes, and deliberate exceptions carry an
inline ``# repro-lint: ignore[RPRnnn]`` with a justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import ClassVar, Iterator, Sequence

from repro.analysis.lint.findings import Finding


# ----------------------------------------------------------------------
# per-file context shared by the rules
# ----------------------------------------------------------------------
@dataclass
class FileContext:
    """One parsed file: path, source, AST, and a parent map for ancestry."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str]
    parents: dict[ast.AST, ast.AST]

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            parents=parents,
        )

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def source_line(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            file=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            source=self.source_line(node),
        )


class Rule:
    """Base class: a stable code, catalog text, a path scope and a checker."""

    code: ClassVar[str]
    name: ClassVar[str]
    summary: ClassVar[str]
    rationale: ClassVar[str]

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _callee_name(func: ast.expr) -> str | None:
    """The rightmost name of a call target: ``a.b.c(...)`` -> ``c``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _keyword_constant(call: ast.Call, name: str) -> object:
    for keyword in call.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            return keyword.value.value
    return None


def _inside_with_lock(context: FileContext, node: ast.AST, accepted: Sequence[str]) -> bool:
    """True when ``node`` sits in the body of ``with <expr>`` for an accepted expr."""
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if ast.unparse(item.context_expr) in accepted:
                    return True
    return False


def _inside_init(context: FileContext, node: ast.AST) -> bool:
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor.name == "__init__"
    return False


def _enclosing_function(
    context: FileContext, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def _contains(root: ast.AST, node: ast.AST) -> bool:
    return any(candidate is node for candidate in ast.walk(root))


# ----------------------------------------------------------------------
# RPR101 -- registry-only algorithm dispatch
# ----------------------------------------------------------------------
#: Fallback when the live registry is not importable (e.g. linting a
#: broken checkout): the registered names as of this rule's writing.
_STATIC_ALGORITHM_NAMES = frozenset(
    {
        "cache_aware",
        "deterministic",
        "cache_oblivious",
        "hu_tao_chung",
        "dementiev",
        "bnlj",
        "in_memory",
        "vector_count",
        "vector_enum",
    }
)

_ALGORITHM_NAMES_CACHE: frozenset[str] | None = None


def algorithm_name_constants() -> frozenset[str]:
    """The string constants RPR101 treats as algorithm names.

    The live registry is consulted when importable so newly registered
    algorithms are covered without touching the rule; the static fallback
    keeps the linter usable on a tree whose registry does not import.
    """
    global _ALGORITHM_NAMES_CACHE
    if _ALGORITHM_NAMES_CACHE is None:
        names = set(_STATIC_ALGORITHM_NAMES)
        try:
            from repro.core.registry import algorithm_names

            names.update(algorithm_names())
        except Exception:  # pragma: no cover - registry import is best-effort
            pass
        _ALGORITHM_NAMES_CACHE = frozenset(names)
    return _ALGORITHM_NAMES_CACHE


def _dispatch_comparison(test: ast.expr, names: frozenset[str]) -> str | None:
    """An algorithm name compared against in ``test``, or ``None``."""
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for operator, right in zip(node.ops, node.comparators):
            if isinstance(operator, (ast.Eq, ast.NotEq)):
                for side in operands:
                    if isinstance(side, ast.Constant) and side.value in names:
                        return str(side.value)
            elif isinstance(operator, (ast.In, ast.NotIn)):
                if isinstance(right, (ast.Tuple, ast.List, ast.Set)):
                    for element in right.elts:
                        if isinstance(element, ast.Constant) and element.value in names:
                            return str(element.value)
    return None


class RegistryDispatchRule(Rule):
    code = "RPR101"
    name = "registry-dispatch"
    summary = "no algorithm-name string dispatch outside the registry"
    rationale = (
        "PR 3 deleted the if/elif algorithm dispatch chains in favour of "
        "@register_algorithm; a branch or dispatch table keyed on algorithm "
        "names outside core/registry.py and core/algorithms.py is that "
        "design regrowing, and silently misses newly registered algorithms."
    )

    def applies_to(self, path: str) -> bool:
        return not path.endswith(("core/registry.py", "core/algorithms.py"))

    def check(self, context: FileContext) -> Iterator[Finding]:
        names = algorithm_name_constants()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.If, ast.IfExp)):
                matched = _dispatch_comparison(node.test, names)
                if matched is not None:
                    yield context.finding(
                        node,
                        self.code,
                        f"branch on algorithm name {matched!r}: dispatch belongs in "
                        "the registry (use get_algorithm/AlgorithmSpec metadata)",
                    )
            elif isinstance(node, ast.Dict):
                matched_keys = sorted(
                    str(key.value)
                    for key in node.keys
                    if isinstance(key, ast.Constant) and key.value in names
                )
                # A dispatch table maps names to callables.  Config maps
                # (name -> spec/results) are fine: only flag when a value
                # is a bare callable reference or lambda.
                dispatches = any(
                    isinstance(value, (ast.Lambda, ast.Name, ast.Attribute))
                    for value in node.values
                )
                if len(matched_keys) >= 2 and dispatches:
                    yield context.finding(
                        node,
                        self.code,
                        f"dict literal mapping algorithm names {matched_keys} to "
                        "callables: dispatch tables belong in the registry",
                    )
            elif isinstance(node, ast.Match):
                for case in node.cases:
                    for pattern in ast.walk(case.pattern):
                        if (
                            isinstance(pattern, ast.MatchValue)
                            and isinstance(pattern.value, ast.Constant)
                            and pattern.value.value in names
                        ):
                            yield context.finding(
                                node,
                                self.code,
                                f"match statement on algorithm name "
                                f"{pattern.value.value!r}: dispatch belongs in the registry",
                            )
                            break
                    else:
                        continue
                    break


# ----------------------------------------------------------------------
# RPR102 -- determinism on counted paths
# ----------------------------------------------------------------------
#: Builtins whose result does not depend on iteration order.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"any", "all", "sum", "len", "min", "max", "sorted", "set", "frozenset"}
)

_SET_ANNOTATION_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _callee_name(node.func) in ("set", "frozenset")
    return False


def _is_set_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_ANNOTATION_NAMES
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_ANNOTATION_NAMES
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    return False


def _set_bound_names(scope: ast.AST) -> set[str]:
    """Local names that are only ever bound to set values in ``scope``.

    Conservative by construction: one non-set binding anywhere in the
    scope (including nested functions, which this deliberately does not
    separate) removes the name.  ``AugAssign`` (``s |= other``) keeps the
    inferred type.
    """
    set_bound: set[str] = set()
    otherwise_bound: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            is_set = _is_set_expression(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    (set_bound if is_set else otherwise_bound).add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expression(node.value)
            ):
                set_bound.add(node.target.id)
            else:
                otherwise_bound.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    otherwise_bound.add(target.id)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    otherwise_bound.add(target.id)
    return set_bound - otherwise_bound


class DeterminismRule(Rule):
    code = "RPR102"
    name = "determinism"
    summary = "no unordered set iteration or unseeded RNG on counted paths"
    rationale = (
        "The golden I/O counters and triangle-order parity tests (PR 1, "
        "PR 4) only hold if every loop feeding counters or emission visits "
        "records in a deterministic order and every random choice flows "
        "from the plumbed seed.  Iterating a set without sorted(), or "
        "calling the global random/time APIs, silently breaks bit-identical "
        "replay across processes and interpreter runs."
    )

    _SCOPED_DIRS = ("repro/core/", "repro/fastpath/", "repro/hashing/")

    def applies_to(self, path: str) -> bool:
        return any(directory in path for directory in self._SCOPED_DIRS)

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from self._check_set_iteration(context)
        yield from self._check_rng_sources(context)

    # -- unordered iteration -------------------------------------------
    def _scope_set_names(self, context: FileContext, node: ast.AST) -> set[str]:
        scope: ast.AST = _enclosing_function(context, node) or context.tree
        return _set_bound_names(scope)

    def _is_set_iterable(self, context: FileContext, node: ast.expr, site: ast.AST) -> bool:
        if _is_set_expression(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._scope_set_names(context, site)
        return False

    def _check_set_iteration(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_iterable(context, node.iter, node):
                    yield self._iteration_finding(context, node.iter)
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if isinstance(node, ast.GeneratorExp) and self._order_insensitive(context, node):
                    continue
                for generator in node.generators:
                    if self._is_set_iterable(context, generator.iter, node):
                        yield self._iteration_finding(context, generator.iter)
            elif isinstance(node, ast.Call):
                if _callee_name(node.func) in ("list", "tuple") and node.args:
                    if self._is_set_iterable(context, node.args[0], node):
                        yield self._iteration_finding(context, node.args[0])

    def _order_insensitive(self, context: FileContext, node: ast.GeneratorExp) -> bool:
        parent = context.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE_CONSUMERS
        )

    def _iteration_finding(self, context: FileContext, node: ast.expr) -> Finding:
        return context.finding(
            node,
            self.code,
            "iteration over a set on a counted path: wrap it in sorted(...) "
            "(or consume it order-insensitively) so replay is bit-identical",
        )

    # -- nondeterministic sources --------------------------------------
    def _check_rng_sources(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                base, attr = func.value.id, func.attr
                if base == "random":
                    if attr == "Random" and (node.args or node.keywords):
                        continue  # explicitly seeded: the plumbed-seed idiom
                    yield context.finding(
                        node,
                        self.code,
                        f"random.{attr}() on an algorithm path: derive randomness "
                        "from the plumbed seed (random.Random(seed)), never the "
                        "global or unseeded RNG",
                    )
                elif base == "time" and attr in ("time", "time_ns"):
                    yield context.finding(
                        node,
                        self.code,
                        f"time.{attr}() on an algorithm path: wall-clock values "
                        "must not influence counted behaviour (perf_counter "
                        "timing of phases is fine)",
                    )
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
                inner = func.value
                if inner.attr == "random" and isinstance(inner.value, ast.Name):
                    if inner.value.id in ("np", "numpy"):
                        yield context.finding(
                            node,
                            self.code,
                            f"numpy.random.{func.attr}() uses numpy's global RNG: "
                            "use a seeded Generator instead",
                        )
            elif isinstance(func, ast.Name) and func.id == "Random":
                if not node.args and not node.keywords:
                    yield context.finding(
                        node,
                        self.code,
                        "Random() without a seed on an algorithm path: pass the "
                        "plumbed seed explicitly",
                    )


# ----------------------------------------------------------------------
# RPR103 -- spawn-safe pool callables
# ----------------------------------------------------------------------
class SpawnSafetyRule(Rule):
    code = "RPR103"
    name = "spawn-safety"
    summary = "only module-level callables cross the pool boundary"
    rationale = (
        "Every pool in this repo uses the spawn start method (PR 2/PR 7), "
        "so submitted callables are pickled by qualified name: lambdas, "
        "nested functions and bound methods either fail to pickle or drag "
        "their whole instance across the boundary.  The supervised tier's "
        "contract (supervised_map_unordered) says 'importable by name' -- "
        "this rule makes the contract checkable at the call site."
    )

    _SINK_METHODS = frozenset(
        {"submit", "apply_async", "map_async", "imap", "imap_unordered", "starmap_async"}
    )
    _SINK_FUNCTIONS = frozenset({"supervised_map_unordered", "spawn_map_unordered"})

    def check(self, context: FileContext) -> Iterator[Finding]:
        nested = self._nested_function_names(context)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node.func)
            target: ast.expr | None = None
            if callee in self._SINK_FUNCTIONS or (
                isinstance(node.func, ast.Attribute) and callee in self._SINK_METHODS
            ):
                target = node.args[0] if node.args else None
            elif callee == "Process":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        target = keyword.value
            if target is None:
                continue
            offence = self._spawn_unsafe(target, nested)
            if offence is not None:
                yield context.finding(
                    target,
                    self.code,
                    f"{offence} passed to {callee}(): pool callables must be "
                    "module-level functions (picklable by qualified name under "
                    "the spawn start method)",
                )

    @staticmethod
    def _nested_function_names(context: FileContext) -> frozenset[str]:
        nested: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                for child in ast.walk(node):
                    if child is not node and isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        nested.add(child.name)
        return frozenset(nested)

    @staticmethod
    def _spawn_unsafe(target: ast.expr, nested: frozenset[str]) -> str | None:
        if isinstance(target, ast.Lambda):
            return "lambda"
        if isinstance(target, ast.Name) and target.id in nested:
            return f"nested function {target.id!r}"
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
        ):
            return f"bound method {ast.unparse(target)}"
        return None


# ----------------------------------------------------------------------
# RPR104 -- paired resource lifecycle
# ----------------------------------------------------------------------
#: Repo-specific acquisition helpers, per path suffix: calling these is
#: acquiring the underlying resource even though the stdlib name is hidden.
_EXTRA_ACQUIRERS: dict[str, frozenset[str]] = {
    "poolexec/segments.py": frozenset({"_create_segment"}),
}


class ResourceLifecycleRule(Rule):
    code = "RPR104"
    name = "resource-lifecycle"
    summary = "acquired resources are released on every path"
    rationale = (
        "The service-smoke CI gate fails on a single leaked /dev/shm "
        "segment (PR 7/PR 8), and a lock acquired outside try/finally "
        "deadlocks the whole job manager on the first exception.  Every "
        "SharedMemory(create=True), NamedTemporaryFile(delete=False) and "
        "lock.acquire() must sit in a with block, a try with cleanup, or "
        "be returned to a caller that owns the release."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        extra = frozenset()
        for suffix, names in _EXTRA_ACQUIRERS.items():
            if context.path.endswith(suffix):
                extra = names
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._acquisition(node, extra)
            if what is None:
                continue
            if self._protected(context, node):
                continue
            yield context.finding(
                node,
                self.code,
                f"{what} is not enclosed in `with`, try/cleanup, or returned "
                "to an owning caller: an exception on this path leaks the "
                "resource",
            )

    @staticmethod
    def _acquisition(node: ast.Call, extra: frozenset[str]) -> str | None:
        callee = _callee_name(node.func)
        if callee == "SharedMemory" and _keyword_constant(node, "create") is True:
            return "SharedMemory(create=True)"
        if callee == "NamedTemporaryFile" and _keyword_constant(node, "delete") is False:
            return "NamedTemporaryFile(delete=False)"
        if callee in extra:
            return f"{callee}() (a registered resource acquirer)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and any(
                hint in ast.unparse(node.func.value).lower()
                for hint in ("lock", "sem", "condition")
            )
        ):
            return f"{ast.unparse(node.func)}()"
        return None

    @classmethod
    def _protected(cls, context: FileContext, node: ast.Call) -> bool:
        for ancestor in context.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if _contains(item.context_expr, node):
                        return True
            elif isinstance(ancestor, ast.Try):
                in_body = any(_contains(statement, node) for statement in ancestor.body)
                if in_body and (ancestor.finalbody or ancestor.handlers):
                    return True
            elif isinstance(ancestor, ast.Return):
                return True  # ownership transfer: the caller releases
        return cls._guarded_by_next_statement(context, node)

    @staticmethod
    def _guarded_by_next_statement(context: FileContext, node: ast.Call) -> bool:
        """Accept the acquire-then-try idiom::

            resource = acquire()
            try:
                ...
            finally:          # (or except: cleanup; raise)
                resource.release()
        """
        statement: ast.AST = node
        while statement in context.parents and not isinstance(statement, ast.stmt):
            statement = context.parents[statement]
        parent = context.parents.get(statement)
        if parent is None:
            return False
        for body_field in ("body", "orelse", "finalbody"):
            body = getattr(parent, body_field, None)
            if isinstance(body, list) and statement in body:
                index = body.index(statement)
                if index + 1 < len(body):
                    following = body[index + 1]
                    return isinstance(following, ast.Try) and bool(
                        following.finalbody or following.handlers
                    )
        return False


# ----------------------------------------------------------------------
# RPR105 -- atomic write discipline
# ----------------------------------------------------------------------
class AtomicWriteRule(Rule):
    code = "RPR105"
    name = "atomic-writes"
    summary = "JSON artifacts are written through the atomic writers"
    rationale = (
        "PR 4's torn-summary bug and PR 8's temp-name race both came from "
        "bare writes to results files; experiments/store.py's "
        "atomic_write_json/atomic_write_text (temp file + os.replace, "
        "collision-proof temp names) exist so a crash mid-write can never "
        "leave a torn artifact.  A bare open(...,'w')+json.dump or "
        "write_text(json.dumps(...)) bypasses all of that."
    )

    def applies_to(self, path: str) -> bool:
        return not path.endswith("experiments/store.py")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "dump"
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                yield context.finding(
                    node,
                    self.code,
                    "json.dump() to an open file handle is a torn write waiting "
                    "to happen: use experiments.store.atomic_write_json",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "write_text":
                if self._contains_json_dumps(node):
                    yield context.finding(
                        node,
                        self.code,
                        "write_text(json.dumps(...)) is not atomic: use "
                        "experiments.store.atomic_write_json (temp file + rename)",
                    )
            elif isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_mode(node)
                if mode and ("w" in mode or "a" in mode) and node.args:
                    if ".json" in ast.unparse(node.args[0]):
                        yield context.finding(
                            node,
                            self.code,
                            "open(<json path>, 'w') bypasses the atomic writers: "
                            "use experiments.store.atomic_write_json",
                        )

    @staticmethod
    def _contains_json_dumps(call: ast.Call) -> bool:
        for argument in [*call.args, *[keyword.value for keyword in call.keywords]]:
            for node in ast.walk(argument):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "dumps"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "json"
                ):
                    return True
        return False

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            value = node.args[1].value
            return value if isinstance(value, str) else None
        keyword_value = _keyword_constant(node, "mode")
        return keyword_value if isinstance(keyword_value, str) else None


# ----------------------------------------------------------------------
# RPR106 -- lock discipline over declared guarded fields
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GuardedField:
    """One field that may only be touched under one of ``locks``."""

    field: str
    locks: tuple[str, ...]
    #: ``attribute`` matches ``<anything>.<field>``; ``global`` matches the
    #: bare module-level name.
    kind: str = "attribute"


#: The declarative guarded-field map: path suffix -> contract.  Adding an
#: entry is how a module opts its documented locking contract into the
#: analyzer; the strings are the exact ``with`` context expressions
#: (``ast.unparse`` form) accepted as holding the guard.
GUARDED_FIELD_MAP: dict[str, tuple[GuardedField, ...]] = {
    "service/jobs.py": (
        GuardedField("_graphs", ("self._lock",)),
        GuardedField("_jobs", ("self._lock",)),
        GuardedField("_futures", ("self._lock",)),
        GuardedField("counters", ("self._lock",)),
        GuardedField("_closed", ("self._lock",)),
        GuardedField("_events", ("self._condition",)),
        GuardedField("job_ids", ("self._lock",)),
        GuardedField(
            "engine",
            ("entry.lock", "self._locks_for(run_kwargs, entry)"),
        ),
    ),
    "poolexec/segments.py": (
        GuardedField("_LIVE", ("_LOCK",), kind="global"),
        GuardedField("_BY_TOKEN", ("_LOCK",), kind="global"),
        GuardedField("_STATS", ("_LOCK",), kind="global"),
        GuardedField("_ATTACHED", ("_LOCK",), kind="global"),
        GuardedField("_refs", ("_LOCK",)),
        GuardedField("_unlinked", ("_LOCK",)),
    ),
}


class LockDisciplineRule(Rule):
    code = "RPR106"
    name = "lock-discipline"
    summary = "declared lock-guarded fields are only touched under their lock"
    rationale = (
        "The job manager's tables and the segment registry are documented "
        "as lock-guarded (PR 7/PR 8 docstrings), but nothing checked it -- "
        "and an unguarded read of a table another thread mutates is exactly "
        "the class of bug the PR 8 concurrent-writer race was.  The map "
        "below is the machine-readable form of those docstrings; touching "
        "a declared field outside its `with <lock>` block is a finding."
    )

    def applies_to(self, path: str) -> bool:
        return any(path.endswith(suffix) for suffix in GUARDED_FIELD_MAP)

    def check(self, context: FileContext) -> Iterator[Finding]:
        contract: tuple[GuardedField, ...] = ()
        for suffix, fields in GUARDED_FIELD_MAP.items():
            if context.path.endswith(suffix):
                contract = fields
        attribute_fields = {
            guarded.field: guarded for guarded in contract if guarded.kind == "attribute"
        }
        global_fields = {guarded.field: guarded for guarded in contract if guarded.kind == "global"}
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute) and node.attr in attribute_fields:
                guarded = attribute_fields[node.attr]
                if _inside_with_lock(context, node, guarded.locks):
                    continue
                if _inside_init(context, node):
                    continue  # construction precedes sharing
                yield self._finding(context, node, f".{node.attr}", guarded)
            elif isinstance(node, ast.Name) and node.id in global_fields:
                guarded = global_fields[node.id]
                if _inside_with_lock(context, node, guarded.locks):
                    continue
                if _enclosing_function(context, node) is None:
                    continue  # the module-level definition itself
                yield self._finding(context, node, node.id, guarded)

    def _finding(
        self, context: FileContext, node: ast.AST, what: str, guarded: GuardedField
    ) -> Finding:
        locks = " or ".join(f"`with {lock}`" for lock in guarded.locks)
        return context.finding(
            node,
            self.code,
            f"{what} is declared lock-guarded but is touched outside {locks}",
        )


# ----------------------------------------------------------------------
# the rule registry
# ----------------------------------------------------------------------
ALL_RULES: tuple[Rule, ...] = (
    RegistryDispatchRule(),
    DeterminismRule(),
    SpawnSafetyRule(),
    ResourceLifecycleRule(),
    AtomicWriteRule(),
    LockDisciplineRule(),
)


def rule_catalog() -> list[dict[str, str]]:
    """The rule table ``repro lint --list-rules`` and the docs render."""
    return [
        {
            "code": rule.code,
            "name": rule.name,
            "summary": rule.summary,
            "rationale": rule.rationale,
        }
        for rule in ALL_RULES
    ]
