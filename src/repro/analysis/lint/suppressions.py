"""Inline ``# repro-lint: ignore[RPRnnn]`` suppressions.

A suppression comment names the codes it silences, optionally followed by
a free-form justification::

    shm = grab()  # repro-lint: ignore[RPR104] -- released by the caller

On a line of its own it applies to the next non-blank, non-comment line
(so a long flagged statement can carry its justification above itself).
Comments are found with :mod:`tokenize`, not regexes, so the marker text
inside a string literal never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_MARKER = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9*,\s]+)\]")


@dataclass
class Suppression:
    """One suppression comment and the codes it silences."""

    #: Line the comment sits on (1-based).
    comment_line: int
    #: Line the suppression applies to (the same line, or the next code line).
    target_line: int
    #: Codes silenced; ``{"*"}`` silences every rule.
    codes: frozenset[str]
    #: Codes that actually matched a finding (unused-suppression reporting).
    used: set[str] = field(default_factory=set)

    def matches(self, code: str) -> bool:
        return "*" in self.codes or code in self.codes


def parse_suppressions(source: str) -> list[Suppression]:
    """Every suppression comment in ``source``, with resolved target lines."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    comments: list[tuple[int, bool, frozenset[str]]] = []
    code_lines: set[int] = set()
    for token in tokens:
        if token.type == tokenize.COMMENT:
            match = _MARKER.search(token.string)
            if match is None:
                continue
            codes = frozenset(part.strip() for part in match.group(1).split(",") if part.strip())
            own_line = token.line[: token.start[1]].strip() == ""
            comments.append((token.start[0], own_line, codes))
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(token.start[0])

    suppressions: list[Suppression] = []
    for line, own_line, codes in comments:
        target = line
        if own_line:
            later = [number for number in code_lines if number > line]
            target = min(later) if later else line
        suppressions.append(Suppression(comment_line=line, target_line=target, codes=codes))
    return suppressions
