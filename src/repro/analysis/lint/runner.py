"""File collection, rule execution, suppression and baseline application."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.lint.baseline import Baseline, BaselineEntry
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules import ALL_RULES, FileContext, Rule
from repro.analysis.lint.suppressions import Suppression, parse_suppressions

#: Code attached to files the analyzer cannot parse at all.
PARSE_ERROR_CODE = "RPR100"


@dataclass
class UnusedSuppression:
    """A ``# repro-lint: ignore[...]`` that silenced nothing."""

    file: str
    line: int
    codes: tuple[str, ...]

    def to_json(self) -> dict[str, object]:
        return {"file": self.file, "line": self.line, "codes": list(self.codes)}


@dataclass
class LintReport:
    """Everything one lint run produced, pre-split against the baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    unused_suppressions: list[UnusedSuppression] = field(default_factory=list)
    files_checked: int = 0

    @property
    def all_findings(self) -> list[Finding]:
        return sorted([*self.new, *self.baselined])

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 on new findings (and, under strict, stale entries)."""
        if self.new:
            return 1
        if strict and self.stale:
            return 1
        return 0


def _apply_suppressions(
    findings: Sequence[Finding], suppressions: Sequence[Suppression]
) -> list[Finding]:
    kept: list[Finding] = []
    for finding in findings:
        silenced = False
        for suppression in suppressions:
            if suppression.target_line == finding.line and suppression.matches(finding.code):
                suppression.used.add(finding.code)
                silenced = True
        if not silenced:
            kept.append(finding)
    return kept


def lint_source(
    source: str,
    path: str = "<memory>",
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Finding]:
    """Lint one in-memory source blob; the primary hook for rule tests.

    ``path`` drives path-scoped rules (e.g. pass ``src/repro/core/x.py`` to
    put the blob on RPR102's counted paths), and inline suppressions in
    ``source`` are honoured exactly as they are on disk.
    """
    findings, _ = _lint_one(source, path, rules)
    return findings


def _lint_one(
    source: str, path: str, rules: Sequence[Rule]
) -> tuple[list[Finding], list[UnusedSuppression]]:
    try:
        context = FileContext.parse(path, source)
    except (SyntaxError, ValueError) as error:
        parse_failure = Finding(
            file=path,
            line=getattr(error, "lineno", None) or 1,
            column=0,
            code=PARSE_ERROR_CODE,
            message=f"file does not parse: {error}",
        )
        return [parse_failure], []

    raw: list[Finding] = []
    for rule in rules:
        if rule.applies_to(path):
            raw.extend(rule.check(context))
    # One finding per (line, column, code): overlapping AST walks must not
    # double-report a single offending expression.
    unique: dict[tuple[int, int, str], Finding] = {}
    for finding in raw:
        unique.setdefault((finding.line, finding.column, finding.code), finding)

    suppressions = parse_suppressions(source)
    kept = _apply_suppressions(sorted(unique.values()), suppressions)
    unused = [
        UnusedSuppression(
            file=path, line=suppression.comment_line, codes=tuple(sorted(suppression.codes))
        )
        for suppression in suppressions
        if not suppression.used
    ]
    return kept, unused


def _collect_files(paths: Sequence[str | Path], root: Path) -> list[Path]:
    collected: list[Path] = []
    for entry in paths:
        target = Path(entry)
        if not target.is_absolute():
            target = root / target
        if target.is_dir():
            for candidate in sorted(target.rglob("*.py")):
                parts = candidate.relative_to(target).parts
                if any(part == "__pycache__" or part.startswith(".") for part in parts):
                    continue
                collected.append(candidate)
        elif target.suffix == ".py":
            collected.append(target)
    # De-duplicate while preserving the sorted-per-entry order.
    seen: set[Path] = set()
    unique: list[Path] = []
    for candidate in collected:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[str | Path],
    root: str | Path = ".",
    rules: Sequence[Rule] = ALL_RULES,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) under ``root``.

    Findings are split against ``baseline`` (an empty one if ``None``):
    ``report.new`` is what a gate should fail on, ``report.baselined`` is
    accepted debt, and ``report.stale`` is baseline entries whose finding
    no longer exists (the entry must be removed alongside the fix).
    """
    root = Path(root).resolve()
    report = LintReport()
    all_findings: list[Finding] = []
    for file_path in _collect_files(paths, root):
        relative = _relative_posix(file_path.resolve(), root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as error:
            all_findings.append(
                Finding(
                    file=relative,
                    line=1,
                    column=0,
                    code=PARSE_ERROR_CODE,
                    message=f"file is unreadable: {error}",
                )
            )
            continue
        findings, unused = _lint_one(source, relative, rules)
        all_findings.extend(findings)
        report.unused_suppressions.extend(unused)
        report.files_checked += 1

    match = (baseline or Baseline()).match(all_findings)
    report.new = match.new
    report.baselined = match.baselined
    report.stale = match.stale
    return report
