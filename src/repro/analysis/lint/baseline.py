"""The checked-in findings baseline (``.repro-lint-baseline.json``).

Adopting a new rule on an old tree should not force a big-bang cleanup:
``repro lint --write-baseline`` records the pre-existing findings, and
subsequent runs fail only on findings *not* in the baseline.  Entries are
matched by ``(file, code, source-line hash)`` -- content, not line number
-- so unrelated edits do not churn the file.

Policy (enforced by CI's shrink guard and ``--strict``):

* baseline entries may only disappear together with the code change that
  resolves them -- never by hand-editing the file;
* an entry whose finding no longer exists is *stale* and fails
  ``--strict`` until it is removed (with the fix that removed it);
* deliberate, permanent exemptions belong in inline suppressions with a
  justification comment, not in the baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.lint.findings import Finding

BASELINE_SCHEMA = "repro-lint-baseline/v1"

#: Default baseline path, relative to the linted tree's repo root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """``count`` accepted findings of ``code`` in ``file`` on matching lines."""

    file: str
    code: str
    source_hash: str
    count: int = 1

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.file, self.code, self.source_hash)

    def to_json(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "code": self.code,
            "source_hash": self.source_hash,
            "count": self.count,
        }

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "BaselineEntry":
        return cls(
            file=str(document["file"]),
            code=str(document["code"]),
            source_hash=str(document["source_hash"]),
            count=int(document.get("count", 1)),
        )


@dataclass
class BaselineMatch:
    """The three-way split of a run's findings against the baseline."""

    new: list[Finding]
    baselined: list[Finding]
    stale: list[BaselineEntry]


class Baseline:
    """A set of accepted findings loaded from (or written to) disk."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    def __len__(self) -> int:
        return sum(entry.count for entry in self.entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        if not isinstance(document, dict) or document.get("schema") != BASELINE_SCHEMA:
            raise ValueError(f"{path} is not a {BASELINE_SCHEMA} document")
        return cls([BaselineEntry.from_json(entry) for entry in document.get("entries", [])])

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts = Counter(finding.baseline_key for finding in findings)
        return cls(
            [
                BaselineEntry(file=file, code=code, source_hash=digest, count=count)
                for (file, code, digest), count in sorted(counts.items())
            ]
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": BASELINE_SCHEMA,
            "entries": [entry.to_json() for entry in sorted(self.entries, key=lambda e: e.key)],
        }

    def write(self, path: str | Path) -> None:
        # Imported lazily: the experiments package is heavier than the
        # analyzer and only needed when a baseline is actually (re)written.
        from repro.experiments.store import atomic_write_json

        atomic_write_json(path, self.to_json())

    def match(self, findings: Sequence[Finding]) -> BaselineMatch:
        """Split ``findings`` into new vs baselined, and find stale entries.

        Each entry absorbs up to ``count`` findings with its key; findings
        beyond that are new, and entries with leftover capacity are stale
        (their finding was fixed, so the entry must be dropped with the fix).
        """
        capacity: Counter[tuple[str, str, str]] = Counter()
        for entry in self.entries:
            capacity[entry.key] += entry.count
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in sorted(findings):
            if capacity[finding.baseline_key] > 0:
                capacity[finding.baseline_key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [
            BaselineEntry(file=file, code=code, source_hash=digest, count=leftover)
            for (file, code, digest), leftover in sorted(capacity.items())
            if leftover > 0
        ]
        return BaselineMatch(new=new, baselined=baselined, stale=stale)
