"""Human and JSON renderings of a :class:`~..runner.LintReport`."""

from __future__ import annotations

from typing import Any

from repro.analysis.lint.runner import LintReport
from repro.analysis.lint.rules import rule_catalog

#: Schema tag for the ``--format json`` document (CI archives these).
REPORT_SCHEMA = "repro-lint/v1"


def render_human(report: LintReport, strict: bool = False) -> str:
    """The terminal rendering: one line per new finding, then a summary."""
    lines: list[str] = [finding.render() for finding in report.new]
    if report.stale:
        if lines:
            lines.append("")
        lines.append("stale baseline entries (fixed findings -- remove with the fix):")
        for entry in report.stale:
            lines.append(f"  {entry.file}: {entry.code} x{entry.count} ({entry.source_hash})")
    if report.unused_suppressions:
        if lines:
            lines.append("")
        lines.append("unused suppressions:")
        for unused in report.unused_suppressions:
            lines.append(f"  {unused.file}:{unused.line}: ignore[{', '.join(unused.codes)}]")
    summary = (
        f"{report.files_checked} files checked: "
        f"{len(report.new)} new, {len(report.baselined)} baselined, "
        f"{len(report.stale)} stale baseline entries"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    if report.exit_code(strict=strict) == 0 and not report.new:
        lines.append("clean")
    return "\n".join(lines)


def render_json(report: LintReport, strict: bool = False) -> dict[str, Any]:
    """The machine rendering CI archives as an artifact."""
    return {
        "schema": REPORT_SCHEMA,
        "summary": {
            "files_checked": report.files_checked,
            "new": len(report.new),
            "baselined": len(report.baselined),
            "stale_baseline": len(report.stale),
            "unused_suppressions": len(report.unused_suppressions),
            "exit_code": report.exit_code(strict=strict),
        },
        "findings": [finding.to_json() for finding in report.new],
        "baselined": [finding.to_json() for finding in report.baselined],
        "stale_baseline": [entry.to_json() for entry in report.stale],
        "unused_suppressions": [unused.to_json() for unused in report.unused_suppressions],
        "rules": rule_catalog(),
    }
