"""The :class:`Finding` record every rule emits.

A finding is content-addressed for baseline matching by ``(file, code,
source line hash)`` rather than by line *number*, so unrelated edits above
a baselined finding do not churn the baseline file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any


def source_hash(source: str) -> str:
    """Stable short hash of a finding's (stripped) source line."""
    return hashlib.sha256(source.strip().encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Repo-relative posix path of the offending file.
    file: str
    #: 1-based line of the offending node.
    line: int
    #: 0-based column of the offending node.
    column: int
    #: Stable rule code, e.g. ``RPR104``.
    code: str
    #: Human-readable description of the violation.
    message: str
    #: The stripped source line the finding points at (baseline identity).
    source: str = ""

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching: file, code, line-content hash."""
        return (self.file, self.code, source_hash(self.source))

    def to_json(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
            "source": self.source,
        }

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "Finding":
        return cls(
            file=str(document["file"]),
            line=int(document["line"]),
            column=int(document["column"]),
            code=str(document["code"]),
            message=str(document["message"]),
            source=str(document.get("source", "")),
        )

    def render(self) -> str:
        """The one-line human rendering: ``path:line:col: CODE message``."""
        return f"{self.file}:{self.line}:{self.column + 1}: {self.code} {self.message}"
