"""Fault-tolerant execution tier: supervised pools and fault injection.

The package has two halves:

:mod:`repro.resilience.supervisor`
    :func:`supervised_map_unordered` -- the drop-in, fault-tolerant
    counterpart of :func:`repro.parallel.spawn_map_unordered`: per-task
    worker tracking, dead-worker detection, task timeouts, deterministic
    retries with seeded backoff, and graceful degradation to in-process
    execution.  Every consumer of process parallelism in the package (the
    experiment orchestrator, the colour-sharded engine) runs through it.

:mod:`repro.resilience.faults`
    :class:`FaultPlan` -- deterministic, environment-activated fault
    injection (crash / hang / exception / corrupt-artifact), so every
    failure mode the supervisor handles is testable and reproducible.

Because every work unit in this codebase is a pure function of its payload
(content-addressed run specs, colour-shard tasks), a retried task returns a
bit-identical result; supervision therefore changes *when* work happens,
never *what* it computes.
"""

from repro.resilience.faults import (
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    active_plan,
)
from repro.resilience.supervisor import (
    BackoffPolicy,
    SupervisedResult,
    TaskOutcome,
    supervised_map_unordered,
)

__all__ = [
    "BackoffPolicy",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "SupervisedResult",
    "TaskOutcome",
    "active_plan",
    "supervised_map_unordered",
]
