"""Deterministic fault injection for the supervised execution tier.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries, each injecting
one failure mode -- ``crash`` (the worker process dies with a non-zero exit
code), ``hang`` (the attempt sleeps far past any sane task timeout),
``exception`` (a :class:`FaultInjected` is raised inside the attempt) or
``corrupt`` (the stored artifact is truncated after a successful run) -- into
the tasks whose *fault key* matches the rule.  Fault keys are small strings
the supervisor derives from the work unit (``spec:<hash>`` for orchestrated
experiment cells, ``shard:<index>`` for colour shards), so a plan can target
one exact cell or sample a deterministic fraction of all of them.

Everything is deterministic and wall-clock-free: whether a rule selects a
key is a pure function of ``(seed, key, rate)`` (a SHA-256 coin flip), and
rules gate on the *attempt number*, so the canonical "kill 20% of cells on
their first attempt" plan injects the identical faults on every machine and
every re-run.  Because the injected failures are retried by the supervisor
and every task is a pure function of its payload, a faulted run produces
results bit-identical to the fault-free run -- which is exactly the property
the fault-injection CI leg asserts.

Plans cross the ``multiprocessing`` *spawn* boundary through the
:data:`FAULT_PLAN_ENV` environment variable (inline JSON, or a path to a
JSON file), which child interpreters inherit; :meth:`FaultPlan.activate`
sets and restores it around a block of code.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ReproError

#: Environment variable carrying the active plan across the spawn boundary.
#: Holds inline JSON (first non-space character ``{`` or ``[``) or the path
#: of a JSON file.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The injectable failure modes.
FAULT_KINDS = ("crash", "hang", "exception", "corrupt")

#: Kinds injected *inside* a task attempt (``corrupt`` instead fires in the
#: orchestrator, after the artifact has been persisted).
ATTEMPT_KINDS = ("crash", "hang", "exception")


class FaultInjected(ReproError):
    """Raised by an ``exception`` fault (or an in-process crash/hang fault)."""


class FaultPlanError(ReproError):
    """Raised when a fault plan cannot be parsed or validated."""


def _selected(key: str, seed: int, rate: float) -> bool:
    """Deterministic coin flip: does ``rate`` sampling select ``key``?

    A pure function of ``(seed, key)`` -- no wall-clock randomness -- so the
    same plan selects the same keys in every process and on every re-run.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2**64
    return fraction < rate


@dataclass(frozen=True)
class FaultRule:
    """One injected failure mode, targeted by key pattern and attempt number.

    ``match`` is an ``fnmatch`` pattern over fault keys; ``rate`` samples a
    deterministic fraction of the matched keys (seeded by ``seed``, so
    independent rules sample independent subsets); ``attempts`` lists the
    attempt numbers the fault fires on (``None`` means every attempt -- a
    *permanent* fault that retries cannot outlast).
    """

    kind: str
    match: str = "*"
    rate: float = 1.0
    attempts: tuple[int, ...] | None = (0,)
    exit_code: int = 1
    hang_seconds: float = 3600.0
    seed: int = 0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.hang_seconds < 0:
            raise FaultPlanError(f"hang_seconds must be >= 0, got {self.hang_seconds!r}")

    def applies(self, key: str, attempt: int) -> bool:
        """Does this rule fire for ``key`` on attempt number ``attempt``?"""
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if not fnmatchcase(key, self.match):
            return False
        return _selected(key, self.seed, self.rate)

    def to_mapping(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind, "match": self.match, "rate": self.rate}
        payload["attempts"] = list(self.attempts) if self.attempts is not None else None
        payload["exit_code"] = self.exit_code
        payload["hang_seconds"] = self.hang_seconds
        payload["seed"] = self.seed
        return payload

    @classmethod
    def from_mapping(cls, payload: Any) -> "FaultRule":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault rule must be an object, got {payload!r}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(f"unknown fault rule field(s): {', '.join(unknown)}")
        if "kind" not in payload:
            raise FaultPlanError("fault rule is missing its 'kind'")
        attempts = payload.get("attempts", (0,))
        if attempts is not None:
            attempts = tuple(int(a) for a in attempts)
        rule = cls(
            kind=payload["kind"],
            match=payload.get("match", "*"),
            rate=float(payload.get("rate", 1.0)),
            attempts=attempts,
            exit_code=int(payload.get("exit_code", 1)),
            hang_seconds=float(payload.get("hang_seconds", 3600.0)),
            seed=int(payload.get("seed", 0)),
        )
        rule.validate()
        return rule


@dataclass(frozen=True)
class FaultPlan:
    """An ordered list of fault rules; the first matching rule wins."""

    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def rule_for(
        self, key: str, attempt: int, kinds: tuple[str, ...] = ATTEMPT_KINDS
    ) -> FaultRule | None:
        """The first rule of an eligible kind that fires for ``(key, attempt)``."""
        for rule in self.rules:
            if rule.kind in kinds and rule.applies(key, attempt):
                return rule
        return None

    def fire(self, key: str, attempt: int, in_process: bool = False) -> None:
        """Inject the first matching attempt fault, if any.

        ``crash`` kills the calling process with the rule's exit code and
        ``hang`` sleeps for ``hang_seconds`` (then continues normally -- the
        supervisor's task timeout is what turns the sleep into a failure).
        With ``in_process=True`` (serial, pool-less execution) both degrade
        to a raised :class:`FaultInjected` so an injected fault can never
        kill or hang the coordinating process itself.
        """
        rule = self.rule_for(key, attempt)
        if rule is None:
            return
        if rule.kind == "exception" or in_process:
            raise FaultInjected(
                f"injected {rule.kind!r} fault for {key!r} on attempt {attempt}"
                + (" (in-process: simulated as an exception)" if rule.kind != "exception" else "")
            )
        if rule.kind == "crash":
            os._exit(rule.exit_code)
        if rule.kind == "hang":
            time.sleep(rule.hang_seconds)

    def should_corrupt(self, key: str) -> bool:
        """Does a ``corrupt`` rule select ``key``? (Checked post-persist.)"""
        return self.rule_for(key, 0, kinds=("corrupt",)) is not None

    def to_json(self) -> str:
        return json.dumps({"rules": [rule.to_mapping() for rule in self.rules]}, sort_keys=True)

    @classmethod
    def from_mapping(cls, payload: Any) -> "FaultPlan":
        if isinstance(payload, list):
            payload = {"rules": payload}
        if not isinstance(payload, dict) or not isinstance(payload.get("rules"), list):
            raise FaultPlanError(
                "fault plan must be a JSON object with a 'rules' list (or a bare list of rules)"
            )
        return cls(rules=tuple(FaultRule.from_mapping(rule) for rule in payload["rules"]))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_mapping(payload)

    @contextmanager
    def activate(self) -> Iterator["FaultPlan"]:
        """Set :data:`FAULT_PLAN_ENV` to this plan for the enclosed block.

        Environment variables are inherited by ``spawn`` children, so the
        plan is live in every worker the supervisor starts while the block
        is active.  The previous value is restored on exit.
        """
        previous = os.environ.get(FAULT_PLAN_ENV)
        os.environ[FAULT_PLAN_ENV] = self.to_json()
        try:
            yield self
        finally:
            if previous is None:
                os.environ.pop(FAULT_PLAN_ENV, None)
            else:
                os.environ[FAULT_PLAN_ENV] = previous


#: Per-process parse cache: (raw env value, parsed plan).
_CACHE: tuple[str | None, FaultPlan | None] = (None, None)


def active_plan() -> FaultPlan | None:
    """The plan named by :data:`FAULT_PLAN_ENV`, or ``None``.

    Inline JSON is recognised by its first non-space character; anything
    else is treated as the path of a JSON file.  The parse is cached per
    process keyed on the raw value, so the per-attempt lookup is one
    ``os.environ`` read.
    """
    global _CACHE
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    cached_raw, cached_plan = _CACHE
    if raw == cached_raw:
        return cached_plan
    text = raw if raw.lstrip()[:1] in ("{", "[") else Path(raw).read_text(encoding="utf-8")
    plan = FaultPlan.from_json(text)
    _CACHE = (raw, plan)
    return plan
