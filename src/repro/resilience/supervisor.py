"""The supervised worker pool: per-task monitoring, timeouts and retries.

:func:`supervised_map_unordered` is the fault-tolerant counterpart of
:func:`repro.parallel.spawn_map_unordered`.  Instead of streaming items
through ``Pool.imap_unordered`` -- where one OOM-killed worker silently
loses its task and a hung task stalls the whole run -- every item is
submitted individually via ``apply_async`` and supervised:

* **worker-started tracking.**  The worker-side shim announces
  ``(index, attempt, pid)`` over a ``SimpleQueue`` (synchronous pipe write,
  so the message survives an immediately-following crash) before invoking
  the task, giving the supervisor an exact task→worker map.
* **worker-death detection.**  A started task whose worker pid is no longer
  among the pool's live workers (``exitcode`` set, i.e. died with a
  non-zero status or was killed) is *lost*: the pool replaces the dead
  worker on its own, and the supervisor recharges only the lost task.
* **timeouts.**  A started task running past ``task_timeout`` has its
  worker killed (``SIGKILL``; the pool replaces it) and is retried.
  Deadlines run from the *started* message, never from submission, so a
  saturated pool cannot time out tasks that are merely queued.
* **retries with deterministic backoff.**  Failed attempts (raised
  exception, timeout, lost worker) are retried up to ``max_retries`` times
  with capped exponential backoff; jitter is seeded from ``(key, attempt)``
  -- no wall-clock randomness, so scheduling never leaks into results.
* **graceful degradation.**  Pool-level failures (a broken or unusable
  pool) rebuild the pool; after ``max_pool_failures`` rebuilds the
  remaining items run serially in-process, which cannot lose tasks.
* **pluggable pools.**  The pool itself comes from a
  :class:`repro.poolexec.pool.PoolProvider` lease: the default
  :class:`~repro.poolexec.pool.EphemeralPoolProvider` spawns a fresh pool
  per map (the historical semantics), while the persistent provider hands
  out the process-wide warm pool and keeps it alive across maps.  Because
  a persistent pool's started-message queue outlives individual maps,
  every submitted task and every started message is stamped with the
  lease's *epoch*; messages from another epoch are discarded.  Fault
  plans are shipped *inside* each task payload rather than relied upon
  via the environment -- a warm worker spawned before the plan was
  activated would never see the variable.

Every item yields a :class:`SupervisedResult` carrying the task's value and
a structured :class:`TaskOutcome` (attempt count, per-attempt failure kinds
and durations, final error).  Determinism: tasks are pure functions of
their payload, so a retried attempt returns a bit-identical value and the
*set* of yielded results is independent of faults, ordering and job count
-- the property the fault-injection tests pin.

Injected faults (:mod:`repro.resilience.faults`) are applied by the same
worker-side shim, keyed by the caller's ``fault_key``, so every failure
mode above is reproducible on demand.
"""

from __future__ import annotations

import os
import random
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.parallel import effective_jobs
from repro.poolexec.pool import (
    EphemeralPoolProvider,
    PoolLease,
    PoolProvider,
    worker_started_queue,
)
from repro.resilience.faults import FaultPlan, active_plan

Item = TypeVar("Item")

#: Failure kinds that count against ``max_retries`` (``pool-broken`` does
#: not: a broken pool is the infrastructure's fault, not the task's, and is
#: bounded separately by ``max_pool_failures``).
CHARGED_FAILURES = ("exception", "timeout", "worker-lost")


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic, seeded jitter.

    The delay before retry ``attempt`` (1-based) is
    ``min(cap, base * factor**(attempt-1))`` scaled by a jitter factor drawn
    from ``random.Random(f"{key}:{attempt}")`` -- a pure function of the
    task key and attempt number, so two runs of the same plan back off
    identically and results can never depend on wall-clock randomness.
    """

    base_seconds: float = 0.05
    factor: float = 2.0
    cap_seconds: float = 2.0
    jitter: float = 0.1

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` of task ``key``."""
        raw = min(self.cap_seconds, self.base_seconds * self.factor ** max(0, attempt - 1))
        if raw <= 0 or self.jitter <= 0:
            return max(0.0, raw)
        rng = random.Random(f"{key}:{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass
class TaskOutcome:
    """Structured per-item supervision record."""

    index: int
    key: str
    ok: bool = False
    #: Number of attempts started (successful + failed + preempted).
    attempts: int = 0
    #: Failure kind per failed attempt, in order: ``exception`` /
    #: ``timeout`` / ``worker-lost`` / ``pool-broken``.
    failures: list[str] = field(default_factory=list)
    #: Traceback text (or description) of the most recent failure.
    error: str | None = None
    #: Wall seconds of each attempt (worker-side where available).
    durations: list[float] = field(default_factory=list)
    #: True when the item ran in-process (serial path or degraded mode).
    executed_serially: bool = False

    @property
    def charged_failures(self) -> int:
        """Failures that count against the retry budget."""
        return sum(1 for kind in self.failures if kind in CHARGED_FAILURES)


@dataclass
class SupervisedResult:
    """One supervised item: its value (``None`` on failure) plus outcome."""

    value: Any
    outcome: TaskOutcome

    @property
    def index(self) -> int:
        return self.outcome.index

    @property
    def ok(self) -> bool:
        return self.outcome.ok


@dataclass
class _AttemptResult:
    """What one attempt reports back (picklable; never an exception)."""

    ok: bool
    value: Any = None
    error: str | None = None
    duration: float = 0.0


#: Sentinel: resolve the fault plan from the environment (the serial path;
#: pool attempts instead receive the coordinator's plan inside the payload).
_ENV_PLAN: Any = object()


def _run_attempt(
    function: Callable[[Any], Any],
    item: Any,
    key: str,
    attempt: int,
    in_process: bool,
    plan: Any = _ENV_PLAN,
) -> _AttemptResult:
    """Execute one attempt, applying the given fault plan; never raises."""
    started = time.perf_counter()
    try:
        if plan is _ENV_PLAN:
            plan = active_plan()
        if plan is not None:
            plan.fire(key, attempt, in_process=in_process)
        value = function(item)
        return _AttemptResult(ok=True, value=value, duration=time.perf_counter() - started)
    except Exception:  # noqa: BLE001 - the traceback is the payload
        return _AttemptResult(
            ok=False, error=traceback.format_exc(), duration=time.perf_counter() - started
        )


def _pool_attempt(packed: tuple) -> tuple[str, int, _AttemptResult]:
    """Worker entry point: announce the attempt, then run it.

    The payload carries the coordinator's fault plan (as JSON) instead of
    the worker consulting its own environment: a persistent worker may have
    been spawned before the plan was activated -- or after it was retired
    -- so only the coordinator's view at submission time is authoritative.
    """
    epoch, index, attempt, function, item, key, plan_json = packed
    queue = worker_started_queue()
    if queue is not None:
        # SimpleQueue.put is a synchronous pipe write (no feeder thread), so
        # the supervisor learns about this attempt even if the task crashes
        # the interpreter on the very next line.
        queue.put((epoch, index, attempt, os.getpid()))
    plan = FaultPlan.from_json(plan_json) if plan_json is not None else None
    return (
        epoch,
        index,
        _run_attempt(function, item, key, attempt, in_process=False, plan=plan),
    )


def _complete_serially(
    function: Callable[[Any], Any],
    item: Any,
    outcome: TaskOutcome,
    max_retries: int,
    backoff: BackoffPolicy,
) -> SupervisedResult:
    """Drive one item to completion in-process (no pool, no timeouts).

    Continues from whatever failures ``outcome`` already carries, so the
    degraded mode resumes each task's remaining retry budget.  Crash and
    hang faults degrade to exceptions in-process (see
    :meth:`~repro.resilience.faults.FaultPlan.fire`), so this path always
    terminates.
    """
    outcome.executed_serially = True
    while True:
        attempt = outcome.charged_failures
        if attempt > max_retries:
            return SupervisedResult(None, outcome)
        if attempt > 0:
            time.sleep(backoff.delay(outcome.key, attempt))
        outcome.attempts += 1
        result = _run_attempt(function, item, outcome.key, attempt, in_process=True)
        outcome.durations.append(result.duration)
        if result.ok:
            outcome.ok = True
            outcome.error = None
            return SupervisedResult(result.value, outcome)
        outcome.failures.append("exception")
        outcome.error = result.error


@dataclass
class _InFlight:
    """Supervisor-side record of one submitted attempt."""

    async_result: Any
    attempt: int
    submitted_at: float
    started_at: float | None = None
    pid: int | None = None


class _PoolSupervisor:
    """Drives one supervised map over a spawn pool.  Single-use."""

    def __init__(
        self,
        function: Callable[[Any], Any],
        items: list,
        keys: list[str],
        jobs: int,
        task_timeout: float | None,
        max_retries: int,
        backoff: BackoffPolicy,
        poll_interval: float,
        max_pool_failures: int,
        provider: PoolProvider,
    ) -> None:
        self.function = function
        self.items = items
        self.keys = keys
        self.jobs = jobs
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.poll_interval = poll_interval
        self.max_pool_failures = max_pool_failures
        self.provider = provider
        plan = active_plan()
        #: The coordinator's fault plan, serialised once and shipped inside
        #: every task payload (see :func:`_pool_attempt`).
        self.plan_json = plan.to_json() if plan is not None else None

        self.outcomes = {i: TaskOutcome(index=i, key=keys[i]) for i in range(len(items))}
        #: (earliest submit monotonic time, index) of tasks awaiting (re)submission.
        self.ready: list[tuple[float, int]] = [(0.0, i) for i in range(len(items))]
        self.inflight: dict[int, _InFlight] = {}
        self.finished: list[SupervisedResult] = []
        self.remaining = len(items)
        self.lease: PoolLease | None = None
        self.pool_failures = 0
        self.degraded = False

    # -- pool lifecycle ------------------------------------------------
    def _start_pool(self) -> None:
        self.lease = self.provider.lease()

    def _stop_pool(self) -> None:
        lease, self.lease = self.lease, None
        if lease is not None:
            self.provider.release(lease)

    def _pool_broken(self, error: str) -> None:
        """A pool-level failure: resubmit in-flight work, rebuild or degrade.

        ``pool-broken`` failures are recorded on the affected tasks but do
        not count against their retry budgets -- the infrastructure failed,
        not the task; runaway pools are bounded by ``max_pool_failures``,
        after which everything remaining runs serially in-process.
        """
        self.pool_failures += 1
        now = time.monotonic()
        for index, flight in list(self.inflight.items()):
            outcome = self.outcomes[index]
            outcome.failures.append("pool-broken")
            outcome.error = error
            outcome.durations.append(now - flight.submitted_at)
            self.ready.append((now, index))
        self.inflight.clear()
        lease, self.lease = self.lease, None
        if lease is not None:
            self.provider.invalidate(lease)
        if self.pool_failures >= self.max_pool_failures:
            self.degraded = True
        else:
            self._start_pool()

    def _worker_pids(self) -> set[int] | None:
        """Pids of the pool's *live* workers, or ``None`` when unknowable.

        Reads the pool's worker list (stable CPython internals); a worker
        whose ``exitcode`` is already set has died and is excluded, which is
        what makes death detection immediate rather than waiting for the
        pool's own reaper thread.
        """
        pool = self.lease.pool if self.lease is not None else None
        workers = getattr(pool, "_pool", None)
        if workers is None:
            return None
        try:
            return {w.pid for w in workers if w.exitcode is None and w.pid is not None}
        except Exception:  # pragma: no cover - defensive against internals drift
            return None

    def _kill_worker(self, pid: int | None) -> None:
        """Forcibly stop the worker running a timed-out task; pool self-heals."""
        if pid is None:
            return
        try:
            os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
        except (ProcessLookupError, PermissionError, OSError):
            pass

    # -- supervision steps ---------------------------------------------
    def _submit_ready(self) -> None:
        now = time.monotonic()
        queue = self.ready
        self.ready = []
        while queue:
            not_before, index = queue.pop(0)
            if not_before > now:
                self.ready.append((not_before, index))
                continue
            outcome = self.outcomes[index]
            attempt = outcome.charged_failures
            packed = (
                self.lease.epoch if self.lease is not None else "",
                index,
                attempt,
                self.function,
                self.items[index],
                self.keys[index],
                self.plan_json,
            )
            try:
                async_result = self.lease.pool.apply_async(_pool_attempt, (packed,))
            except Exception:
                # Put the unsubmitted work back before handling the broken
                # pool so nothing is dropped.
                self.ready.append((now, index))
                self.ready.extend(queue)
                self._pool_broken(f"pool rejected a task submission:\n{traceback.format_exc()}")
                return
            outcome.attempts += 1
            self.inflight[index] = _InFlight(
                async_result=async_result, attempt=attempt, submitted_at=now
            )

    def _drain_started(self) -> None:
        lease = self.lease
        queue = lease.started_queue if lease is not None else None
        while queue is not None and not queue.empty():
            epoch, index, attempt, pid = queue.get()
            if epoch != lease.epoch:
                # A message from a previous map over the same (persistent)
                # pool -- its indices mean nothing here; drop it.
                continue
            flight = self.inflight.get(index)
            if flight is not None and flight.attempt == attempt:
                flight.started_at = time.monotonic()
                flight.pid = pid

    def _attempt_failed(
        self, index: int, kind: str, error: str, duration: float | None = None
    ) -> None:
        """Record a charged failure; schedule a retry or finalise the task."""
        flight = self.inflight.pop(index)
        outcome = self.outcomes[index]
        outcome.failures.append(kind)
        outcome.error = error
        if duration is None:
            started = flight.started_at if flight.started_at is not None else flight.submitted_at
            duration = time.monotonic() - started
        outcome.durations.append(duration)
        retry = outcome.charged_failures
        if retry > self.max_retries:
            self.finished.append(SupervisedResult(None, outcome))
            self.remaining -= 1
        else:
            delay = self.backoff.delay(outcome.key, retry)
            self.ready.append((time.monotonic() + delay, index))

    def _finish(self, index: int, value: Any) -> None:
        self.inflight.pop(index, None)
        outcome = self.outcomes[index]
        outcome.ok = True
        outcome.error = None
        self.finished.append(SupervisedResult(value, outcome))
        self.remaining -= 1

    def _reap_completed(self) -> None:
        for index, flight in list(self.inflight.items()):
            if not flight.async_result.ready():
                continue
            try:
                _, _, result = flight.async_result.get()
            except Exception:  # unpicklable result / pool-internal error
                self._attempt_failed(index, "exception", traceback.format_exc())
                continue
            if result.ok:
                self.outcomes[index].durations.append(result.duration)
                self._finish(index, result.value)
            else:
                self._attempt_failed(index, "exception", result.error, duration=result.duration)

    def _check_lost_and_hung(self) -> None:
        if not self.inflight:
            return
        live_pids = self._worker_pids()
        now = time.monotonic()
        for index, flight in list(self.inflight.items()):
            if flight.async_result.ready():
                # Completed between _reap_completed and now -- let the next
                # _reap_completed collect it rather than charging a failure.
                continue
            if flight.pid is not None:
                dead = (
                    flight.pid not in live_pids
                    if live_pids is not None
                    else not _pid_alive(flight.pid)
                )
                if dead:
                    # The worker may have posted this task's result just
                    # before dying (it crashed on its *next* task); give the
                    # pool's result-handler thread a beat to deliver it so a
                    # finished task is not spuriously charged with the crash.
                    flight.async_result.wait(0.1)
                    if flight.async_result.ready():
                        continue
                    self._attempt_failed(
                        index,
                        "worker-lost",
                        f"worker pid {flight.pid} died (non-zero exit) while running this task",
                    )
                    continue
            if (
                self.task_timeout is not None
                and flight.started_at is not None
                and now - flight.started_at > self.task_timeout
            ):
                self._kill_worker(flight.pid)
                self._attempt_failed(
                    index,
                    "timeout",
                    f"task exceeded task_timeout={self.task_timeout}s "
                    f"(worker pid {flight.pid} killed)",
                )

    # -- the drive loop ------------------------------------------------
    def run(self) -> Iterator[SupervisedResult]:
        try:
            self._start_pool()
            while self.remaining > 0:
                if self.degraded:
                    yield from self._drain_serially()
                    return
                self._submit_ready()
                self._drain_started()
                self._reap_completed()
                self._check_lost_and_hung()
                while self.finished:
                    yield self.finished.pop(0)
                if self.remaining > 0 and not self.finished:
                    time.sleep(self.poll_interval)
        finally:
            # Unconditional teardown: a consumer abandoning the iterator, a
            # KeyboardInterrupt mid-poll, or normal exhaustion all terminate
            # and reap the worker processes before control returns.
            self._stop_pool()

    def _drain_serially(self) -> Iterator[SupervisedResult]:
        """Degraded mode: finish every remaining item in-process."""
        leftover = sorted(set(i for _, i in self.ready) | set(self.inflight))
        self.inflight.clear()
        self.ready = []
        for index in leftover:
            outcome = self.outcomes[index]
            yield _complete_serially(
                self.function, self.items[index], outcome, self.max_retries, self.backoff
            )
            self.remaining -= 1


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - e.g. EPERM: alive but not ours
        return True
    return True


def supervised_map_unordered(
    function: Callable[[Item], Any],
    items: Sequence[Item],
    jobs: int,
    *,
    task_timeout: float | None = None,
    max_retries: int = 2,
    backoff: BackoffPolicy | None = None,
    fault_key: Callable[[int, Item], str] | None = None,
    poll_interval: float = 0.05,
    max_pool_failures: int = 3,
    pool_provider: PoolProvider | None = None,
) -> Iterator[SupervisedResult]:
    """Apply ``function`` to every item under supervision; yield as completed.

    The fault-tolerant execution tier (see the module docstring for the
    supervision model).  Yields exactly one :class:`SupervisedResult` per
    item, in completion order on the pool path and input order on the
    serial path; a result's ``outcome.ok`` is ``False`` when the task kept
    failing past ``max_retries`` -- supervision never raises for a task
    failure, so one poisoned item cannot abort its siblings.

    ``function`` must be importable by name and items/results picklable
    (the :func:`repro.parallel.spawn_map_unordered` contract).  ``fault_key``
    derives the stable per-item key used for fault injection, backoff
    jitter seeding and diagnostics; it defaults to the item's index.

    Serial execution (``jobs=1``, single item, or a daemonic caller --
    see :func:`repro.parallel.effective_jobs`) runs in-process: exceptions
    are still retried with backoff, but ``task_timeout`` cannot be enforced
    on the caller's own thread and is ignored.

    ``pool_provider`` selects the pool strategy: ``None`` (the default)
    spawns a fresh ephemeral pool for this map and terminates it on exit --
    the historical behaviour -- while a
    :class:`repro.poolexec.pool.PersistentPoolProvider` leases the
    process-wide warm pool and leaves it running for the next map.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(f"task_timeout must be positive, got {task_timeout}")
    items = list(items)
    keys = [fault_key(i, item) if fault_key is not None else str(i) for i, item in enumerate(items)]
    policy = backoff if backoff is not None else BackoffPolicy()

    if effective_jobs(jobs, len(items)) == 1:
        for index, item in enumerate(items):
            outcome = TaskOutcome(index=index, key=keys[index])
            yield _complete_serially(function, item, outcome, max_retries, policy)
        return

    resolved_jobs = effective_jobs(jobs, len(items))
    supervisor = _PoolSupervisor(
        function=function,
        items=items,
        keys=keys,
        jobs=resolved_jobs,
        task_timeout=task_timeout,
        max_retries=max_retries,
        backoff=policy,
        poll_interval=poll_interval,
        max_pool_failures=max_pool_failures,
        provider=(
            pool_provider if pool_provider is not None else EphemeralPoolProvider(resolved_jobs)
        ),
    )
    yield from supervisor.run()
