"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ExternalMemoryError(ReproError):
    """Base class for errors raised by the external-memory simulator."""


class MemoryExceededError(ExternalMemoryError):
    """Raised when an algorithm tries to hold more than ``M`` words in memory.

    The explicit (cache-aware) machine tracks internal-memory leases; any
    attempt to lease past the configured capacity raises this error, which is
    how the simulator keeps cache-aware algorithms honest about their stated
    memory footprint.
    """


class FileClosedError(ExternalMemoryError):
    """Raised when accessing an external-memory file that has been deleted."""


class InvalidConfigurationError(ReproError):
    """Raised for invalid machine parameters (e.g. ``B > M`` or ``B <= 0``)."""


class GraphFormatError(ReproError):
    """Raised when an edge list violates the canonical graph representation."""


class AlgorithmError(ReproError):
    """Raised when an enumeration algorithm is invoked with unusable input."""


class RegistrationError(ReproError):
    """Raised when an algorithm registration is malformed.

    Registering two algorithms under the same name, or declaring an unknown
    substrate kind, is a programming error in the registering module; it is
    reported eagerly at import time rather than at dispatch time.
    """


class OptionsError(AlgorithmError):
    """Raised when per-algorithm options fail typed validation.

    Covers unknown option names (the old ``**kwargs`` pass-through turned
    these into late ``TypeError``s deep inside an algorithm) as well as
    values of the wrong type or out of range.
    """


class StreamWorkerError(ReproError):
    """Raised at the consuming side of :meth:`TriangleEngine.stream`.

    Wraps an unexpected (non-:class:`ReproError`) exception raised by the
    streaming run's worker thread, so consumers see one typed error at the
    point of iteration instead of a silently truncated stream; the original
    exception is attached as ``__cause__``.  Library errors
    (:class:`ReproError` subclasses, e.g. an :class:`OptionsError` for an
    unknown option) re-raise unchanged.
    """


class FastPathUnavailableError(ReproError):
    """Raised when the vectorized fast path is requested but NumPy is absent.

    The ``vector_*`` algorithms never raise this -- they fall back to the
    pure-Python reference path automatically; only direct calls into
    :mod:`repro.fastpath` array helpers surface it.
    """


class DerandomizationError(AlgorithmError):
    """Raised when the greedy derandomization cannot certify its potential.

    This can only happen when the caller caps the small-bias family below the
    size required by Lemma 6 of the paper; with the full family a suitable
    two-colouring always exists.
    """
