"""The persistent execution tier: shared-memory segments + warm worker pools.

Two halves, mirroring the two costs PR 4's spawn-pool sharding kept paying:

:mod:`repro.poolexec.segments`
    Zero-copy graph shipping.  The coordinator packs an edge list once into
    a ``multiprocessing.shared_memory`` segment
    (:func:`~repro.poolexec.segments.publish_edges`) and ships workers a
    tiny picklable :class:`~repro.poolexec.segments.SegmentSlice` instead
    of the records themselves; workers attach the segment read-only, keyed
    by its content hash, and cache the decoded edge list so a run over many
    shard tasks transfers the graph at most once per worker -- and a
    *repeated* run on the same graph transfers nothing at all.  Segments
    are refcounted and unlinked on close (engine close, interpreter exit),
    so ``/dev/shm`` never leaks.

:mod:`repro.poolexec.pool`
    Warm worker pools.  A :class:`~repro.poolexec.pool.PoolProvider` hands
    the resilience supervisor its pool:
    :class:`~repro.poolexec.pool.EphemeralPoolProvider` reproduces the old
    spawn-per-map behaviour, while
    :class:`~repro.poolexec.pool.PersistentPoolProvider` leases a
    process-wide :class:`~repro.poolexec.pool.SharedWorkerPool` that
    survives across ``engine.run`` calls and orchestrator cells, so the
    interpreter+import startup cost is paid once per process instead of
    once per run.  Supervision (retries, timeouts, dead-worker detection)
    composes unchanged: a crashed persistent worker is replaced by the
    pool itself, and the replacement simply re-attaches the warm segments.
"""

from repro.poolexec.pool import (
    EphemeralPoolProvider,
    PersistentPoolProvider,
    PoolLease,
    SharedWorkerPool,
    provider_for,
)
from repro.poolexec.segments import (
    EdgeSource,
    MemmapSlice,
    SegmentHandle,
    SegmentRef,
    SegmentSlice,
    attached_edges,
    memmap_slice_edges,
    publish_edges,
    resolve_edges,
    segment_stats,
)

#: The selectable pool strategies (the ``--pool`` flag / ``pool=`` knob).
POOL_MODES = ("persistent", "spawn")

__all__ = [
    "POOL_MODES",
    "EdgeSource",
    "EphemeralPoolProvider",
    "MemmapSlice",
    "PersistentPoolProvider",
    "PoolLease",
    "SegmentHandle",
    "SegmentRef",
    "SegmentSlice",
    "SharedWorkerPool",
    "attached_edges",
    "memmap_slice_edges",
    "provider_for",
    "publish_edges",
    "resolve_edges",
    "segment_stats",
]
