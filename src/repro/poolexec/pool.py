"""Worker-pool providers: ephemeral spawn pools and the shared warm pool.

The resilience supervisor (:mod:`repro.resilience.supervisor`) no longer
builds pools itself; it asks a *provider* for a :class:`PoolLease` and
hands it back when the map finishes.  Two strategies implement the
contract:

:class:`EphemeralPoolProvider` (``--pool spawn``)
    The pre-existing behaviour: a fresh spawn pool per supervised map,
    terminated on release.  Tests that assert pool teardown, and one-shot
    scripts that should leave nothing behind, keep this semantics -- it is
    the default when the supervisor is called without a provider.

:class:`PersistentPoolProvider` (``--pool persistent``)
    Leases the process-wide :class:`SharedWorkerPool`: one spawn pool that
    survives across supervised maps, ``engine.run`` calls and orchestrator
    cells, so the interpreter+import startup cost (~150 ms/worker on the
    recording host) is paid once per process.  ``release`` keeps the pool
    warm; ``invalidate`` (a broken pool) rebuilds the inner pool but keeps
    the coordinator's shared-memory segments, which replacement workers
    simply re-attach.

Every lease carries an *epoch* token.  The started-message queue of a
persistent pool outlives individual maps, so a worker announcement from a
previous map could otherwise collide with the current map's ``(index,
attempt)`` numbering; the supervisor stamps its epoch into every submitted
task and discards started messages from any other epoch.

Both providers are idempotent under double release/invalidate: the second
teardown of an already-reaped pool is a no-op, not a crash (the historical
double-``terminate()`` between the orchestrator and the supervisor).
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import threading
from dataclasses import dataclass
from typing import Any, Protocol

_EPOCHS = itertools.count(1)


def _next_epoch() -> str:
    return f"epoch-{next(_EPOCHS)}"


#: Worker-process handle to the started-message queue (set by the pool
#: initializer; ``None`` in the coordinating process).
_WORKER_STARTED_QUEUE: Any = None


def _init_worker(started_queue: Any) -> None:
    """Pool initializer: runs in every (re)spawned worker, including the
    replacements a persistent pool creates after a worker crash."""
    global _WORKER_STARTED_QUEUE
    _WORKER_STARTED_QUEUE = started_queue


def worker_started_queue() -> Any:
    """The started-message queue of the current worker process (or ``None``)."""
    return _WORKER_STARTED_QUEUE


@dataclass
class PoolLease:
    """One supervisor's claim on a pool: the pool, its queue, an epoch."""

    pool: Any
    started_queue: Any
    epoch: str
    persistent: bool


class PoolProvider(Protocol):
    """What the supervisor needs from a pool strategy."""

    def lease(self) -> PoolLease:  # pragma: no cover - protocol
        """A ready pool plus a fresh epoch."""
        ...

    def invalidate(self, lease: PoolLease) -> None:  # pragma: no cover - protocol
        """The leased pool broke: tear down / rebuild the backing pool."""
        ...

    def release(self, lease: PoolLease) -> None:  # pragma: no cover - protocol
        """The map is done with the lease (keep warm or terminate)."""
        ...


class EphemeralPoolProvider:
    """A fresh spawn pool per lease, terminated on release (PR 6 semantics)."""

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs

    def lease(self) -> PoolLease:
        context = multiprocessing.get_context("spawn")
        queue = context.SimpleQueue()
        pool = context.Pool(processes=self.jobs, initializer=_init_worker, initargs=(queue,))
        return PoolLease(pool=pool, started_queue=queue, epoch=_next_epoch(), persistent=False)

    def invalidate(self, lease: PoolLease) -> None:
        self.release(lease)

    def release(self, lease: PoolLease) -> None:
        # Idempotent: the lease's references are nulled as they are reaped,
        # so a second release (supervisor finally + an outer teardown) is a
        # no-op instead of a double-terminate on a dead pool.
        pool, lease.pool = lease.pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        queue, lease.started_queue = lease.started_queue, None
        if queue is not None:
            queue.close()


class SharedWorkerPool:
    """The process-wide warm pool behind every persistent lease.

    One spawn pool (plus its started-message queue) kept alive for the
    lifetime of the process, grown on demand: ``ensure(jobs)`` reuses the
    current pool when it is at least ``jobs`` wide and rebuilds it wider
    otherwise.  Individual worker crashes do *not* go through here --
    ``multiprocessing.Pool`` replaces dead workers itself (re-running the
    initializer, so replacements get the queue) -- only a broken pool
    (failed submission) forces :meth:`rebuild`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pool: Any = None
        self._queue: Any = None
        self._size = 0

    def ensure(self, jobs: int) -> tuple[Any, Any]:
        """The live ``(pool, queue)``, at least ``jobs`` workers wide."""
        with self._lock:
            if self._pool is None or self._size < jobs:
                self._rebuild_locked(max(jobs, self._size))
            return self._pool, self._queue

    def rebuild(self) -> None:
        """Replace a broken pool with a fresh one of the same width."""
        with self._lock:
            if self._size:
                self._rebuild_locked(self._size)

    def shutdown(self) -> None:
        """Terminate the warm pool (interpreter exit, explicit cleanup)."""
        with self._lock:
            self._stop_locked()
            self._size = 0

    @property
    def size(self) -> int:
        """Width of the current warm pool (0 when none is live)."""
        return self._size

    def worker_pids(self) -> list[int]:
        """Pids of the current pool's workers (tests introspect these)."""
        with self._lock:
            workers = getattr(self._pool, "_pool", None) or []
            return [w.pid for w in workers if w.pid is not None]

    def _stop_locked(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        queue, self._queue = self._queue, None
        if queue is not None:
            queue.close()

    def _rebuild_locked(self, jobs: int) -> None:
        self._stop_locked()
        context = multiprocessing.get_context("spawn")
        self._queue = context.SimpleQueue()
        self._pool = context.Pool(
            processes=jobs, initializer=_init_worker, initargs=(self._queue,)
        )
        self._size = jobs


#: The one shared pool of this process (created lazily, torn down atexit).
_SHARED = SharedWorkerPool()
atexit.register(_SHARED.shutdown)


def shared_pool() -> SharedWorkerPool:
    """The process-wide :class:`SharedWorkerPool` singleton."""
    return _SHARED


class PersistentPoolProvider:
    """Leases the shared warm pool; release keeps it warm for the next map."""

    def __init__(self, jobs: int, shared: SharedWorkerPool | None = None) -> None:
        self.jobs = jobs
        self.shared = shared if shared is not None else _SHARED

    def lease(self) -> PoolLease:
        pool, queue = self.shared.ensure(self.jobs)
        return PoolLease(pool=pool, started_queue=queue, epoch=_next_epoch(), persistent=True)

    def invalidate(self, lease: PoolLease) -> None:
        # Drop the lease's references first so a concurrent release is a
        # no-op, then swap the broken pool for a fresh one.  The published
        # shared-memory segments belong to the coordinator, not the pool:
        # the fresh workers re-attach them on their first task.
        broken, lease.pool = lease.pool, None
        lease.started_queue = None
        if broken is not None:
            self.shared.rebuild()

    def release(self, lease: PoolLease) -> None:
        lease.pool = None
        lease.started_queue = None


def provider_for(pool: str, jobs: int) -> PoolProvider:
    """The provider behind a ``--pool persistent|spawn`` selection."""
    if pool == "spawn":
        return EphemeralPoolProvider(jobs)
    if pool == "persistent":
        return PersistentPoolProvider(jobs)
    raise ValueError(f"unknown pool strategy {pool!r}; expected 'persistent' or 'spawn'")
