"""Shared-memory edge segments: publish once, attach everywhere.

The coordinator of a sharded run packs an edge list into one
``multiprocessing.shared_memory`` segment (int64 ``(u, v)`` pairs,
little-endian, NumPy when available, ``array('q')`` otherwise) and ships
workers a :class:`SegmentSlice` -- segment name, content token, half-open
record range -- instead of pickling the records into every task.  Workers
attach the segment read-only, decode it once, and serve every subsequent
slice of the same segment from an in-process cache, so one graph crosses
the process boundary at most once per worker regardless of how many shard
tasks reference it.

Lifecycle
---------
Segments are *owned by the publishing process*.  Publishing is deduplicated
by content hash: asking to publish bytes that are already live returns the
existing :class:`SegmentHandle` with its refcount bumped, and
:meth:`SegmentHandle.close` unlinks the segment only when the last holder
lets go.  Every live handle is also registered with ``atexit``, so an
abandoned run cannot leak ``/dev/shm`` entries past interpreter exit.

Attaching processes never own the segment: on Python <= 3.12 merely opening
a ``SharedMemory(name=...)`` registers it with the *attaching* process's
``resource_tracker``, which would both warn at worker exit and -- worse --
unlink a segment the coordinator still uses.  :func:`_open_untracked`
therefore immediately unregisters the attachment (or passes ``track=False``
on 3.13+), and workers close their mapping as soon as the records are
decoded, holding plain Python data instead of shared mappings.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence, Union

from repro.fastpath.arrays import HAVE_NUMPY

RankedEdge = tuple[int, int]

#: Bytes per packed edge: two little-endian int64 words.
_EDGE_BYTES = 16

#: ``/dev/shm`` name prefix of every segment this package creates; the
#: lifecycle tests glob for it to prove nothing leaks.
SEGMENT_PREFIX = "repro-seg"

_SEQUENCE = itertools.count(1)
_LOCK = threading.Lock()

#: Live handles owned by this process: segment name -> handle.
_LIVE: dict[str, "SegmentHandle"] = {}
#: Content-hash index over the live handles (publish deduplication).
_BY_TOKEN: dict[str, "SegmentHandle"] = {}

#: Coordinator-side publish counters (the zero-re-transfer tests read these).
_STATS = {
    "published_segments": 0,
    "published_bytes": 0,
    "deduplicated_publishes": 0,
    "attached_segments": 0,
    "attach_cache_hits": 0,
}


def segment_stats() -> dict[str, int]:
    """A snapshot of the publish/attach counters of *this* process."""
    with _LOCK:
        return dict(_STATS)


@dataclass(frozen=True)
class SegmentRef:
    """A picklable pointer to a published segment (no data)."""

    name: str
    length: int
    token: str


@dataclass(frozen=True)
class SegmentSlice:
    """A half-open record range ``[start, stop)`` of a published segment."""

    ref: SegmentRef
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class MemmapSlice:
    """A half-open record range of packed ``(u, v)`` pairs in a spill file.

    The disk-backed sibling of :class:`SegmentSlice`: the out-of-core
    backend (:mod:`repro.fastpath.oocore`) partitions its memmapped
    canonical edge array into colour-pair classes on disk and ships workers
    these picklable pointers instead of shared-memory slices.  ``dtype`` is
    the NumPy dtype name of the packed integers (``int32`` / ``int64``,
    native byte order); the file must outlive every worker that resolves
    the slice -- it does, because the owning store removes its spill
    directory only on close.
    """

    path: str
    dtype: str
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


#: What shard tasks carry for an edge payload: a slice of a published
#: segment, a slice of an on-disk spill file, or the records inline (the
#: in-process / empty-input fallback).
EdgeSource = Union[SegmentSlice, MemmapSlice, list, tuple]

#: Stdlib decode table of the memmap dtypes (typecode, bytes per item);
#: resolving a :class:`MemmapSlice` must not require NumPy in the worker.
_MEMMAP_DTYPES = {"int32": ("i", 4), "int64": ("q", 8)}


def memmap_slice_edges(source: MemmapSlice) -> list[RankedEdge]:
    """Read one spill-file slice back into ``(u, v)`` tuples.

    A plain buffered read of the byte range (no mapping is retained), so
    workers hold decoded Python data exactly as they do for shared-memory
    segments.  Stdlib-only on purpose: a NumPy-less worker can still
    resolve slices written by a NumPy coordinator.
    """
    spec = _MEMMAP_DTYPES.get(source.dtype)
    if spec is None:
        raise ValueError(
            f"unsupported memmap slice dtype {source.dtype!r}; "
            f"expected one of {sorted(_MEMMAP_DTYPES)}"
        )
    typecode, itemsize = spec
    import array as array_module

    with open(source.path, "rb") as payload:
        payload.seek(source.start * 2 * itemsize)
        raw = payload.read((source.stop - source.start) * 2 * itemsize)
    flat = array_module.array(typecode)
    flat.frombytes(raw)
    endpoints = iter(flat)
    return list(zip(endpoints, endpoints))


class SegmentHandle:
    """An owned, refcounted shared-memory segment of packed edges."""

    def __init__(self, shm: shared_memory.SharedMemory, length: int, token: str) -> None:
        self._shm = shm
        self.name = shm.name
        self.length = length
        self.token = token
        self._refs = 1
        self._unlinked = False

    def ref(self) -> SegmentRef:
        """The picklable pointer workers attach by."""
        return SegmentRef(name=self.name, length=self.length, token=self.token)

    def slice(self, start: int, stop: int) -> SegmentSlice:
        """A :class:`SegmentSlice` over ``[start, stop)`` of this segment."""
        if not (0 <= start <= stop <= self.length):
            raise ValueError(
                f"slice [{start}, {stop}) out of bounds for segment of {self.length} records"
            )
        return SegmentSlice(ref=self.ref(), start=start, stop=stop)

    def acquire(self) -> "SegmentHandle":
        """Add one holder (publish deduplication path)."""
        with _LOCK:
            self._refs += 1
        return self

    def close(self) -> None:
        """Release one holder; the last release unlinks the segment.

        Idempotent past zero: closing an already-unlinked handle (engine
        close racing the ``atexit`` sweep, a double teardown) is a no-op
        rather than an error.
        """
        with _LOCK:
            if self._unlinked:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._unlinked = True
            _LIVE.pop(self.name, None)
            _BY_TOKEN.pop(self.token, None)
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    @property
    def closed(self) -> bool:
        """True once the underlying segment has been unlinked."""
        with _LOCK:
            return self._unlinked

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        # repro-lint: ignore[RPR106] -- best-effort debug snapshot; repr must never block on a lock
        state = "closed" if self._unlinked else f"refs={self._refs}"
        return f"SegmentHandle({self.name}, {self.length} edges, {state})"


def _pack_edges(edges: Sequence[RankedEdge]) -> bytes:
    """Pack ``(u, v)`` pairs into little-endian int64 bytes."""
    if HAVE_NUMPY:
        import numpy as np

        return np.ascontiguousarray(edges, dtype="<i8").tobytes()
    import array

    flat = array.array("q", (value for edge in edges for value in edge))
    return flat.tobytes()


def _unpack_edges(raw: bytes, length: int) -> list[RankedEdge]:
    """Decode packed bytes back into a list of ``(u, v)`` tuples."""
    if HAVE_NUMPY:
        import numpy as np

        pairs = np.frombuffer(raw, dtype="<i8", count=length * 2).reshape(length, 2)
        return list(map(tuple, pairs.tolist()))
    import array

    flat = array.array("q")
    flat.frombytes(raw[: length * _EDGE_BYTES])
    endpoints = iter(flat)
    return list(zip(endpoints, endpoints))


def publish_edges(edges: Sequence[RankedEdge]) -> SegmentHandle | None:
    """Place an edge list in shared memory; return its (refcounted) handle.

    Returns ``None`` for an empty list (shared-memory segments cannot be
    zero-sized; callers fall back to inline records).  Publishing content
    that is already live returns the existing handle with one more holder
    instead of a second segment -- repeated runs on the same graph transfer
    nothing.
    """
    if not edges:
        return None
    payload = _pack_edges(edges)
    token = hashlib.sha256(payload).hexdigest()
    with _LOCK:
        existing = _BY_TOKEN.get(token)
        if existing is not None and not existing._unlinked:
            existing._refs += 1
            _STATS["deduplicated_publishes"] += 1
            return existing

    shm = _create_segment(len(payload))
    try:
        shm.buf[: len(payload)] = payload
        handle = SegmentHandle(shm, length=len(edges), token=token)
    except BaseException:
        # The segment exists but was never registered: unlink it here or
        # it leaks in /dev/shm until reboot.
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        raise
    with _LOCK:
        _LIVE[handle.name] = handle
        _BY_TOKEN[token] = handle
        _STATS["published_segments"] += 1
        _STATS["published_bytes"] += len(payload)
    return handle


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a named segment, retrying on (unlikely) name collisions."""
    while True:
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEQUENCE)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:  # pragma: no cover - pid reuse collision
            continue


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting ownership of it.

    On 3.13+ ``track=False`` skips resource-tracker registration.  Earlier
    interpreters register every attachment, and the right correction
    depends on *whose* tracker that was:

    - A pool worker shares its parent coordinator's tracker process (the
      fd is inherited across spawn), so the attach-registration is a
      set-level no-op -- and undoing it would strip the *coordinator's*
      registration, making the eventual owner unlink crash the tracker
      with a ``KeyError``.  Leave it alone.
    - An independent process (no multiprocessing parent) lazily starts its
      own tracker, which would warn about -- and unlink! -- a segment the
      coordinator still owns.  There the registration must be undone
      immediately.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        shm = shared_memory.SharedMemory(name=name)
        if multiprocessing.parent_process() is not None:
            return shm  # shared tracker: the registration belongs to the owner
        try:
            resource_tracker.unregister(getattr(shm, "_name", f"/{name}"), "shared_memory")
        except Exception:  # pragma: no cover - tracker internals drift
            pass
        return shm


#: Worker-side decoded-segment cache: segment name -> edge list.  Bounded
#: LRU; entries are plain Python data (the shared mapping is closed as soon
#: as it is decoded), so eviction frees memory without touching the segment.
_ATTACHED: "OrderedDict[str, list[RankedEdge]]" = OrderedDict()
_ATTACH_CACHE_LIMIT = 8


def attached_edges(ref: SegmentRef) -> list[RankedEdge]:
    """The full decoded edge list of ``ref``'s segment (cached per process)."""
    with _LOCK:
        cached = _ATTACHED.get(ref.name)
        if cached is not None:
            _ATTACHED.move_to_end(ref.name)
            _STATS["attach_cache_hits"] += 1
            return cached
    shm = _open_untracked(ref.name)
    try:
        raw = bytes(shm.buf[: ref.length * _EDGE_BYTES])
    finally:
        shm.close()
    edges = _unpack_edges(raw, ref.length)
    with _LOCK:
        _ATTACHED[ref.name] = edges
        while len(_ATTACHED) > _ATTACH_CACHE_LIMIT:
            _ATTACHED.popitem(last=False)
        _STATS["attached_segments"] += 1
    return edges


def resolve_edges(source: EdgeSource) -> list[RankedEdge]:
    """Materialise an edge payload: attach, read from spill, or pass inline."""
    if isinstance(source, SegmentSlice):
        return attached_edges(source.ref)[source.start : source.stop]
    if isinstance(source, MemmapSlice):
        return memmap_slice_edges(source)
    return list(source)


def _close_all_live() -> None:
    """``atexit`` sweep: unlink every segment this process still owns."""
    with _LOCK:
        handles = list(_LIVE.values())
    for handle in handles:
        with _LOCK:
            handle._refs = min(handle._refs, 1)
        handle.close()


atexit.register(_close_all_live)
