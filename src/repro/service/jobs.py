"""Graphs, jobs and the :class:`JobManager` behind the service endpoints.

The manager is the service's model layer, independent of HTTP:

* **Graphs** are registered once and content-addressed: the canonical JSON
  of the registration payload (an explicit edge list, or a ``[factory,
  kwargs]`` reference into the experiment workload registry) hashes to the
  graph id, so registering the same graph twice returns the same entry and
  re-canonicalises nothing.  Each entry owns one
  :class:`~repro.core.engine.TriangleEngine` -- the graph is canonicalised
  at registration and every job on it shares the engine's substrate cache
  (packed CSR, published shared-memory segments), which is what makes
  repeated queries near-free.
* **Jobs** are content-addressed too, by the :class:`RunSpec` hashing the
  experiment orchestrator already uses (task ``"service"``): the job id is
  the spec hash of ``(graph, algorithm, mode, memory, block, seed, shards,
  options)``.  Submitting a query that already ran returns the finished
  job from the in-process memo; across server restarts the
  :class:`~repro.experiments.store.ResultStore` artifact answers it
  (``jobs=...`` is deliberately *not* part of the address: sharded results
  are bit-identical for any worker count, so queries differing only in
  parallelism share one cache line).
* **Execution** happens on a bounded thread pool.  Jobs on the same graph
  serialise on the entry lock (engine runs share mutable substrate-cache
  state); sharded jobs additionally serialise process-wide, because
  concurrent supervised maps must not interleave on the shared persistent
  worker pool's started-message queue.  Enumeration jobs run through
  ``engine.stream()`` and publish per-batch progress events, which is what
  the server's SSE endpoint replays.

Every mutation of a job appends to its event log and wakes waiters on its
condition variable, so any number of SSE subscribers can follow one job
without polling the manager.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait as futures_wait
from typing import Any, Iterable, Mapping

from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.core.registry import get_algorithm
from repro.exceptions import ReproError
from repro.experiments.specs import RunSpec, canonical_json, make_spec
from repro.experiments.store import ResultStore
from repro.experiments.workloads import build_workload
from repro.graph.graph import Graph
from repro.poolexec import POOL_MODES
from repro.service.protocol import (
    JOB_MODES,
    ServiceError,
    as_int,
    not_found,
    require_mapping,
)

#: Task name of every service artifact in the result store.
SERVICE_TASK = "service"

#: How many triangles an enumeration job accumulates between progress events.
PROGRESS_BATCH = 2048

#: Default width of the job executor thread pool.
DEFAULT_MAX_WORKERS = 4


def _now() -> float:
    return time.time()


# ----------------------------------------------------------------------
# graph registration
# ----------------------------------------------------------------------
def normalize_graph_payload(body: Any) -> tuple[dict[str, Any], str]:
    """Validate a graph-registration body; return ``(normalized, graph_id)``.

    Two shapes are accepted: ``{"edges": [[u, v], ...]}`` (labels are ints
    or strings) and ``{"workload": [factory, kwargs]}`` referencing the
    experiment workload registry.  The graph id is the spec hash of the
    normalized payload -- the same content addressing the artifact store
    uses -- so identical registrations collapse to one graph.
    """
    body = require_mapping(body, "graph registration body")
    edges = body.get("edges")
    workload = body.get("workload")
    if (edges is None) == (workload is None):
        raise ServiceError("provide exactly one of 'edges' or 'workload'")
    name = body.get("name")
    if name is not None and not isinstance(name, str):
        raise ServiceError("'name' must be a string")
    if edges is not None:
        if not isinstance(edges, (list, tuple)):
            raise ServiceError("'edges' must be a list of [u, v] pairs")
        cleaned: list[list[Any]] = []
        for index, pair in enumerate(edges):
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ServiceError(f"edge #{index} is not a [u, v] pair: {pair!r}")
            u, v = pair
            for label in (u, v):
                if isinstance(label, bool) or not isinstance(label, (int, str)):
                    raise ServiceError(
                        f"edge #{index} has a non-int/str label: {label!r}"
                    )
            cleaned.append([u, v])
        normalized: dict[str, Any] = {"edges": cleaned}
    else:
        if (
            not isinstance(workload, (list, tuple))
            or len(workload) != 2
            or not isinstance(workload[0], str)
        ):
            raise ServiceError("'workload' must be a [factory_name, kwargs] pair")
        factory, kwargs = workload
        normalized = {"workload": [factory, dict(require_mapping(kwargs, "workload kwargs"))]}
    # The id hashes the *content* only -- the display name is a label, so
    # registering the same edges under two names is still one graph.
    graph_id = make_spec("graph", **normalized).spec_hash
    if name:
        normalized["name"] = name
    return normalized, graph_id


class GraphEntry:
    """One registered graph: its engine, lock and bookkeeping."""

    def __init__(self, graph_id: str, payload: dict[str, Any]) -> None:
        self.graph_id = graph_id
        self.payload = payload
        self.created_at = _now()
        #: Serialises engine runs on this graph (the engine's substrate
        #: cache is shared mutable state across runs).
        self.lock = threading.Lock()
        self.job_ids: list[str] = []
        if "edges" in payload:
            self.source = "edges"
            graph = Graph.from_edge_list(tuple(edge) for edge in payload["edges"])
            self.name = payload.get("name") or f"edges-{graph_id}"
        else:
            self.source = "workload"
            built = build_workload(payload["workload"])
            graph = built.graph
            self.name = payload.get("name") or built.name
        self.engine = TriangleEngine(graph)
        self.num_vertices = graph.num_vertices
        self.num_edges = self.engine.num_edges

    def to_json(self, jobs: int) -> dict[str, Any]:
        """The graph document; ``jobs`` is the job count, which the caller
        must read under the manager lock (``job_ids`` is guarded there)."""
        return {
            "id": self.graph_id,
            "name": self.name,
            "source": self.source,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "created_at": self.created_at,
            "jobs": jobs,
        }


# ----------------------------------------------------------------------
# job queries
# ----------------------------------------------------------------------
def normalize_query(body: Any) -> dict[str, Any]:
    """Validate a job-submission body into the canonical query document.

    Algorithm names resolve through the registry, algorithm options are
    validated against the spec's typed options dataclass and sharding knobs
    against :meth:`AlgorithmSpec.resolve_sharding` -- a bad query is a 400
    at submission time, never a failed job.
    """
    body = require_mapping(body, "job submission body") if body else {}
    unknown = set(body) - {
        "algorithm",
        "mode",
        "memory",
        "block",
        "seed",
        "shards",
        "jobs",
        "options",
    }
    if unknown:
        raise ServiceError(f"unknown job field(s): {', '.join(sorted(unknown))}")
    algorithm = body.get("algorithm", "cache_aware")
    if not isinstance(algorithm, str):
        raise ServiceError("'algorithm' must be a string")
    mode = body.get("mode", "count")
    if mode not in JOB_MODES:
        raise ServiceError(f"'mode' must be one of {JOB_MODES}, got {mode!r}")
    memory = as_int(body.get("memory"), "memory", default=512, minimum=1)
    block = as_int(body.get("block"), "block", default=16, minimum=1)
    seed = as_int(body.get("seed"), "seed", default=0)
    shards = as_int(body.get("shards"), "shards", default=None, minimum=1)
    jobs = as_int(body.get("jobs"), "jobs", default=1, minimum=1)
    options = body.get("options") or {}
    options = dict(require_mapping(options, "'options'"))
    try:
        MachineParams(memory_words=memory, block_words=block)
        spec = get_algorithm(algorithm)
        spec.resolve_options(options or None, None)
        spec.resolve_sharding(shards, jobs)
    except ReproError as error:
        raise ServiceError(str(error)) from error
    return {
        "algorithm": algorithm,
        "mode": mode,
        "memory": memory,
        "block": block,
        "seed": seed,
        "shards": shards,
        "jobs": jobs,
        "options": options,
    }


def query_spec(graph_id: str, query: Mapping[str, Any]) -> RunSpec:
    """The content address of a query: graph plus everything result-affecting.

    ``jobs`` is excluded on purpose -- sharded execution is bit-identical
    for any worker count, so the same query at different parallelism must
    hit the same cache line.
    """
    return make_spec(
        SERVICE_TASK,
        graph=graph_id,
        algorithm=query["algorithm"],
        mode=query["mode"],
        memory=query["memory"],
        block=query["block"],
        seed=query["seed"],
        shards=query["shards"],
        options=query["options"],
    )


class Job:
    """One submitted query: state machine, result, event log."""

    def __init__(self, job_id: str, graph_id: str, query: dict[str, Any]) -> None:
        self.id = job_id
        self.graph_id = graph_id
        self.query = query
        self.state = "queued"
        self.created_at = _now()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        #: Where the answer came from: ``executed`` (this process ran it),
        #: ``store`` (a previous process persisted it).
        self.source = "executed"
        #: True once at least one submission was answered without executing.
        self.cache_hit = False
        #: Times this query was re-submitted after the job already existed.
        self.hits = 0
        self.triangles: list[tuple[Any, Any, Any]] | None = None
        self._condition = threading.Condition()
        self._events: list[tuple[str, dict[str, Any]]] = []
        self.emit("status", {"state": self.state})

    # -- event log ------------------------------------------------------
    def emit(self, event: str, data: dict[str, Any]) -> None:
        with self._condition:
            self._events.append((event, data))
            self._condition.notify_all()

    def events_since(self, index: int, timeout: float) -> list[tuple[int, str, dict[str, Any]]]:
        """Events from ``index`` on, blocking up to ``timeout`` for news.

        Returns ``(event_index, event, data)`` triples; an empty list means
        the wait timed out (SSE subscribers send a heartbeat and retry).
        """
        with self._condition:
            if index >= len(self._events):
                self._condition.wait(timeout)
            new = self._events[index:]
        return [(index + i, event, data) for i, (event, data) in enumerate(new)]

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    @property
    def event_count(self) -> int:
        with self._condition:
            return len(self._events)

    # -- transitions ----------------------------------------------------
    def mark_running(self) -> None:
        self.state = "running"
        self.started_at = _now()
        self.emit("status", {"state": self.state})

    def finish(
        self,
        result: dict[str, Any],
        triangles: list[tuple[Any, Any, Any]] | None = None,
        source: str = "executed",
    ) -> None:
        self.result = result
        self.triangles = triangles
        self.source = source
        self.state = "done"
        self.finished_at = _now()
        self.emit("done", self.summary())

    def fail(self, message: str, state: str = "failed") -> None:
        self.error = message
        self.state = state
        self.finished_at = _now()
        self.emit("error", {"state": state, "message": message})

    # -- serialisation --------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """The compact job document every endpoint returns."""
        document: dict[str, Any] = {
            "id": self.id,
            "graph": self.graph_id,
            "state": self.state,
            "query": self.query,
            "source": self.source,
            "cache_hit": self.cache_hit,
            "hits": self.hits,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.result is not None:
            document["result"] = {
                key: value for key, value in self.result.items() if key != "triangle_list"
            }
            if self.triangles is not None:
                document["result"]["num_stored_triangles"] = len(self.triangles)
        if self.error is not None:
            document["error"] = self.error
        return document


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------
class JobManager:
    """Registered graphs, submitted jobs, and the executor that runs them.

    Parameters
    ----------
    store:
        The artifact store completed jobs persist to (and are resumed
        from).  ``None`` keeps everything in memory.
    pool:
        Worker-pool strategy handed to sharded engine runs (``persistent``
        leases the process-wide warm pool, ``spawn`` starts fresh).
    max_workers:
        Width of the job thread pool.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        pool: str = "persistent",
        max_workers: int = DEFAULT_MAX_WORKERS,
    ) -> None:
        if pool not in POOL_MODES:
            raise ValueError(f"pool must be one of {POOL_MODES}, got {pool!r}")
        self.store = store
        self.pool = pool
        self._graphs: dict[str, GraphEntry] = {}
        self._jobs: dict[str, Job] = {}
        self._futures: dict[str, Future] = {}
        self._lock = threading.Lock()
        #: Concurrent supervised maps must not share the persistent pool's
        #: started-message queue; sharded jobs serialise on this.
        self._sharded_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-job"
        )
        self._closed = False
        self.counters = {
            "graphs_registered": 0,
            "jobs_submitted": 0,
            "jobs_executed": 0,
            "jobs_failed": 0,
            "cache_hits_memo": 0,
            "cache_hits_store": 0,
        }

    # -- graphs ---------------------------------------------------------
    def register_graph(self, body: Any) -> tuple[GraphEntry, bool]:
        """Register (or look up) a graph; returns ``(entry, created)``."""
        payload, graph_id = normalize_graph_payload(body)
        with self._lock:
            existing = self._graphs.get(graph_id)
            if existing is not None:
                return existing, False
        try:
            entry = GraphEntry(graph_id, payload)
        except ServiceError:
            raise
        except (ReproError, KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"graph rejected: {error}") from error
        with self._lock:
            raced = self._graphs.get(graph_id)
            if raced is not None:
                return raced, False
            self._graphs[graph_id] = entry
            self.counters["graphs_registered"] += 1
        return entry, True

    def graph(self, graph_id: str) -> GraphEntry:
        with self._lock:
            entry = self._graphs.get(graph_id)
        if entry is None:
            raise not_found("graph", graph_id)
        return entry

    def graphs(self) -> list[GraphEntry]:
        with self._lock:
            return sorted(self._graphs.values(), key=lambda entry: entry.created_at)

    def describe_graph(self, graph_id: str) -> dict[str, Any]:
        """One graph's JSON document, with the job count read under the lock."""
        with self._lock:
            entry = self._graphs.get(graph_id)
            if entry is not None:
                return entry.to_json(jobs=len(entry.job_ids))
        raise not_found("graph", graph_id)

    def describe_graphs(self) -> list[dict[str, Any]]:
        """Every graph's JSON document (index endpoint), lock held once."""
        with self._lock:
            entries = sorted(self._graphs.values(), key=lambda entry: entry.created_at)
            return [entry.to_json(jobs=len(entry.job_ids)) for entry in entries]

    def drop_graph(self, graph_id: str) -> None:
        """Unregister a graph and release its engine's substrate cache."""
        with self._lock:
            entry = self._graphs.pop(graph_id, None)
        if entry is None:
            raise not_found("graph", graph_id)
        with entry.lock:
            entry.engine.close()

    # -- jobs -----------------------------------------------------------
    def submit(self, graph_id: str, body: Any) -> tuple[Job, bool]:
        """Submit a query against a graph; returns ``(job, created)``.

        Identical queries collapse onto one job: a repeat submission while
        the first is still running simply returns it, and a repeat of a
        finished job is a pure cache hit.  On a memo miss the artifact
        store is consulted, so answers survive server restarts.
        """
        entry = self.graph(graph_id)
        query = normalize_query(body)
        spec = query_spec(graph_id, query)
        job_id = spec.spec_hash
        with self._lock:
            if self._closed:
                raise ServiceError("server is shutting down", status=503, code="shutting_down")
            existing = self._jobs.get(job_id)
            if existing is not None:
                existing.hits += 1
                if existing.terminal and existing.state == "done":
                    existing.cache_hit = True
                    self.counters["cache_hits_memo"] += 1
                return existing, False
            job = Job(job_id, graph_id, query)
            self._jobs[job_id] = job
            entry.job_ids.append(job_id)
            self.counters["jobs_submitted"] += 1
        stored = self.store.get(spec) if self.store is not None else None
        if stored is not None:
            triangles = stored.get("triangle_list")
            if triangles is not None:
                triangles = [tuple(triangle) for triangle in triangles]
            job.cache_hit = True
            with self._lock:
                self.counters["cache_hits_store"] += 1
            job.finish(
                {key: value for key, value in stored.items() if key != "triangle_list"},
                triangles,
                source="store",
            )
            return job, True
        # repro-lint: ignore[RPR103] -- ThreadPoolExecutor shares the process; nothing is pickled
        future = self._executor.submit(self._execute, job, entry, spec)
        with self._lock:
            self._futures[job_id] = future
        return job, True

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise not_found("job", job_id)
        return job

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    # -- execution ------------------------------------------------------
    def _execute(self, job: Job, entry: GraphEntry, spec: RunSpec) -> None:
        query = job.query
        with self._lock:
            if self._closed:
                job.fail("server shut down before the job started", state="cancelled")
                return
            self.counters["jobs_executed"] += 1
        job.mark_running()
        try:
            params = MachineParams(memory_words=query["memory"], block_words=query["block"])
            sharded = query["shards"] is not None
            run_kwargs: dict[str, Any] = {
                "params": params,
                "seed": query["seed"],
                "options": query["options"] or None,
            }
            if sharded:
                run_kwargs.update(
                    shards=query["shards"], jobs=query["jobs"], pool=self.pool
                )
            started = time.perf_counter()
            if query["mode"] == "count":
                result, triangles = self._run_count(entry, query["algorithm"], run_kwargs)
            else:
                result, triangles = self._run_enum(job, entry, query["algorithm"], run_kwargs)
            result["execution_seconds"] = round(time.perf_counter() - started, 6)
            result["algorithm"] = query["algorithm"]
            result["mode"] = query["mode"]
            result["graph"] = job.graph_id
            if self.store is not None:
                artifact = dict(result)
                if triangles is not None:
                    artifact["triangle_list"] = [list(triangle) for triangle in triangles]
                self.store.put(spec, artifact)
            job.finish(result, triangles)
        except Exception as error:  # a failed job is data, not a server crash
            with self._lock:
                self.counters["jobs_failed"] += 1
            job.fail(f"{type(error).__name__}: {error}")
        finally:
            with self._lock:
                self._futures.pop(job.id, None)

    def _run_count(
        self, entry: GraphEntry, algorithm: str, run_kwargs: dict[str, Any]
    ) -> tuple[dict[str, Any], None]:
        """Count-only queries go through ``engine.run`` (counter fast path)."""
        with self._locks_for(run_kwargs, entry):
            result = entry.engine.run(algorithm, collect=False, **run_kwargs)
        return {
            "triangles": result.triangle_count,
            "reads": result.io.reads,
            "writes": result.io.writes,
            "operations": result.io.operations,
            "total_ios": result.io.total,
            "disk_peak_words": result.disk_peak_words,
        }, None

    def _run_enum(
        self, job: Job, entry: GraphEntry, algorithm: str, run_kwargs: dict[str, Any]
    ) -> tuple[dict[str, Any], list[tuple[Any, Any, Any]]]:
        """Enumeration queries stream batches and publish progress events.

        Unsharded jobs ride ``engine.stream()`` (the algorithm runs on a
        worker thread, triangles cross a bounded queue in batches);
        sharded jobs collect through the sharded path, which already
        merges deterministically.  The stored triangle order is the
        deterministic serial emission order either way.
        """
        triangles: list[tuple[Any, Any, Any]] = []
        if "shards" in run_kwargs:
            with self._locks_for(run_kwargs, entry):
                result = entry.engine.run(algorithm, collect=True, **run_kwargs)
            triangles = list(result.triangles or [])
            job.emit("progress", {"triangles": len(triangles)})
            counters = {
                "reads": result.io.reads,
                "writes": result.io.writes,
                "operations": result.io.operations,
                "total_ios": result.io.total,
            }
        else:
            stream_kwargs = dict(run_kwargs)
            options = stream_kwargs.pop("options")
            with self._locks_for(run_kwargs, entry):
                for batch in entry.engine.stream(
                    algorithm, batch_size=PROGRESS_BATCH, options=options, **stream_kwargs
                ):
                    triangles.extend(batch)
                    job.emit("progress", {"triangles": len(triangles)})
            # The stream path discards the per-run I/O meter (the simulated
            # counters live on the worker's substrate); counts come from
            # the triangle list itself.
            counters = {"reads": None, "writes": None, "operations": None, "total_ios": None}
        return {"triangles": len(triangles), **counters}, triangles

    def _locks_for(self, run_kwargs: dict[str, Any], entry: GraphEntry):
        """Entry lock always; the process-wide sharded lock when fanning out."""
        if "shards" in run_kwargs:
            return _StackedLocks((self._sharded_lock, entry.lock))
        return entry.lock

    # -- introspection / lifecycle --------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self.counters)
            graphs = len(self._graphs)
            jobs = len(self._jobs)
            in_flight = len(self._futures)
        answered = counters["cache_hits_memo"] + counters["cache_hits_store"]
        total = counters["jobs_submitted"] + counters["cache_hits_memo"]
        return {
            **counters,
            "graphs": graphs,
            "jobs": jobs,
            "jobs_in_flight": in_flight,
            "cache_hit_rate": round(answered / total, 4) if total else None,
            "pool": self.pool,
        }

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for in-flight jobs; returns True when everything finished."""
        with self._lock:
            pending = list(self._futures.values())
        if not pending:
            return True
        done, not_done = futures_wait(pending, timeout=timeout)
        return not not_done

    def close(self, drain_timeout: float | None = 30.0) -> None:
        """Drain, stop the executor, release engines (and their segments).

        Safe to call twice.  Queued-but-unstarted jobs are cancelled (their
        state says so); the persistent worker pool itself is owned by the
        process (:func:`repro.poolexec.pool.shared_pool`), the server
        shutdown path tears it down explicitly.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.drain(drain_timeout)
        self._executor.shutdown(wait=False, cancel_futures=True)
        with self._lock:
            jobs = list(self._jobs.values())
            entries = list(self._graphs.values())
        for job in jobs:
            if not job.terminal and job.state == "queued":
                job.fail("server shut down before the job started", state="cancelled")
        for entry in entries:
            with entry.lock:
                entry.engine.close()


class _StackedLocks:
    """Context manager acquiring several locks in order (releasing reversed)."""

    def __init__(self, locks: Iterable[threading.Lock]) -> None:
        self._locks = tuple(locks)

    def __enter__(self) -> "_StackedLocks":
        for lock in self._locks:
            # repro-lint: ignore[RPR104] -- paired release in __exit__; this IS the with-block plumbing
            lock.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for lock in reversed(self._locks):
            lock.release()
