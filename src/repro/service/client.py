"""Zero-dependency client for the triangle-analytics service.

Pure ``urllib`` -- importable (and useful) in a bare stdlib interpreter,
the same ethos as the server side.  :class:`ServiceClient` mirrors the
endpoints one-for-one and layers three conveniences on top:

* :meth:`ServiceClient.wait` polls a job to a terminal state,
* :meth:`ServiceClient.triangles` walks the cursor pagination for you and
  yields triangles one by one,
* :meth:`ServiceClient.events` subscribes to the SSE stream and yields
  parsed ``(event, data)`` pairs until the job's terminal event.

Errors round-trip: a response carrying the service's JSON error envelope
is re-raised as the same :class:`~repro.service.protocol.ServiceError`
(status and code preserved), so client code handles one exception type
whether the check failed locally or on the server.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Iterator

from repro.service.protocol import ServiceError, parse_sse

DEFAULT_URL = "http://127.0.0.1:8765"


class ServiceClient:
    """A thin HTTP client bound to one server URL."""

    def __init__(self, base_url: str = DEFAULT_URL, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        stream: bool = False,
        timeout: float | None = None,
    ) -> Any:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            response = urllib.request.urlopen(request, timeout=timeout or self.timeout)
        except urllib.error.HTTPError as error:
            raise self._service_error(error) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach {self.base_url}: {error.reason}", status=0, code="unreachable"
            ) from None
        if stream:
            return response
        with response:
            return json.loads(response.read())

    @staticmethod
    def _service_error(error: urllib.error.HTTPError) -> ServiceError:
        """Rehydrate the server's error envelope; fall back to the raw status."""
        try:
            document = json.loads(error.read())
            envelope = document["error"]
            return ServiceError(envelope["message"], status=error.code, code=envelope["code"])
        except (ValueError, KeyError, TypeError):
            return ServiceError(f"HTTP {error.code}: {error.reason}", status=error.code)

    # -- one call per endpoint ------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def graphs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/graphs")["graphs"]

    def graph(self, graph_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/graphs/{graph_id}")["graph"]

    def drop_graph(self, graph_id: str) -> None:
        self._request("DELETE", f"/v1/graphs/{graph_id}")

    def register_graph(
        self,
        *,
        edges: list | None = None,
        workload: list | None = None,
        name: str | None = None,
    ) -> dict[str, Any]:
        """Register an edge list or a workload reference; idempotent."""
        body: dict[str, Any] = {}
        if edges is not None:
            body["edges"] = [list(edge) for edge in edges]
        if workload is not None:
            body["workload"] = list(workload)
        if name is not None:
            body["name"] = name
        return self._request("POST", "/v1/graphs", body)

    def submit(self, graph_id: str, **query: Any) -> dict[str, Any]:
        """Submit a job; returns the response (``job`` + ``created``)."""
        body = {key: value for key, value in query.items() if value is not None}
        return self._request("POST", f"/v1/graphs/{graph_id}/jobs", body)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    # -- conveniences ---------------------------------------------------
    def wait(self, job_id: str, timeout: float = 120.0, poll: float = 0.05) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its summary.

        Raises :class:`ServiceError` (``job_failed`` / ``wait_timeout``)
        rather than returning a failed or unfinished job, so callers can
        use the result unconditionally.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if job["state"] in ("failed", "cancelled"):
                raise ServiceError(
                    f"job {job_id} {job['state']}: {job.get('error')}",
                    status=500,
                    code="job_failed",
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout}s",
                    status=0,
                    code="wait_timeout",
                )
            time.sleep(poll)

    def count(self, graph_id: str, **query: Any) -> dict[str, Any]:
        """Submit a count query and wait for it; returns the finished job."""
        query.setdefault("mode", "count")
        job = self.submit(graph_id, **query)["job"]
        if job["state"] == "done":
            return job
        return self.wait(job["id"])

    def triangles(
        self, job_id: str, *, limit: int | None = None
    ) -> Iterator[tuple[Any, Any, Any]]:
        """Yield every stored triangle of a finished enum job, page by page."""
        cursor: str | None = None
        while True:
            path = f"/v1/jobs/{job_id}/triangles"
            # urlencode, not hand-concatenation: cursors are opaque strings
            # (base64url today, but ``=`` padding and any future alphabet
            # must survive the round trip percent-encoded).
            params: dict[str, Any] = {}
            if limit is not None:
                params["limit"] = limit
            if cursor is not None:
                params["cursor"] = cursor
            if params:
                path += "?" + urllib.parse.urlencode(params)
            page = self._request("GET", path)
            for triangle in page["triangles"]:
                yield tuple(triangle)
            cursor = page["next_cursor"]
            if cursor is None:
                return

    def events(
        self, job_id: str, *, after: int | None = None, timeout: float = 300.0
    ) -> Iterator[tuple[str, Any]]:
        """Follow a job's SSE stream; yields ``(event, data)`` until terminal."""
        path = f"/v1/jobs/{job_id}/events"
        if after is not None:
            path += f"?after={after}"
        response = self._request("GET", path, stream=True, timeout=timeout)
        with response:
            for event, _event_id, data in parse_sse(response):
                yield event, data
                if event in ("done", "error"):
                    return
