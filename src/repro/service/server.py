"""The HTTP face of the triangle-analytics service.

A deliberately small stack: :class:`http.server.ThreadingHTTPServer` (one
thread per connection, stdlib only) plus an explicit route table mapping
``(method, path pattern)`` to handler methods on :class:`TriangleService`.
The service owns a :class:`~repro.service.jobs.JobManager` and translates
between HTTP and the manager's exceptions -- every
:class:`~repro.service.protocol.ServiceError` becomes its status code and
JSON envelope, everything else a 500.

Routes (all responses are JSON unless noted)::

    GET    /health                     liveness probe
    GET    /v1/stats                   manager counters + segment stats
    GET    /v1/graphs                  registered graphs
    POST   /v1/graphs                  register a graph (idempotent)
    GET    /v1/graphs/{id}             one graph
    DELETE /v1/graphs/{id}             drop a graph, release its engine
    POST   /v1/graphs/{id}/jobs        submit a count/enum query
    GET    /v1/jobs                    jobs (in-memory) + stored artifacts
    GET    /v1/jobs/{id}               one job
    GET    /v1/jobs/{id}/events        server-sent events (text/event-stream)
    GET    /v1/jobs/{id}/triangles     cursor-paginated triangle pages

The SSE endpoint replays the job's full event log from ``Last-Event-ID``
(or the ``after`` query parameter), then follows it live, emitting ``:``
comment heartbeats while idle, and closes after the terminal event.  The
pagination endpoint serves slices of the job's stored triangle list with
opaque cursors minted by :mod:`repro.service.protocol`.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.experiments.store import ResultStore
from repro.poolexec import segment_stats
from repro.service.jobs import SERVICE_TASK, JobManager
from repro.service.protocol import (
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    SERVICE_SCHEMA,
    ServiceError,
    as_int,
    decode_cursor,
    encode_cursor,
    not_found,
    sse_event,
)

#: Longest a request body may be, guarding the single-threaded JSON parse
#: (64 MiB of edges is far beyond anything the simulator handles anyway).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Seconds an idle SSE subscriber waits before a ``:`` heartbeat comment.
SSE_HEARTBEAT_SECONDS = 5.0

_ROUTES: list[tuple[str, re.Pattern[str], str]] = [
    ("GET", re.compile(r"^/health$"), "handle_health"),
    ("GET", re.compile(r"^/v1/stats$"), "handle_stats"),
    ("GET", re.compile(r"^/v1/graphs$"), "handle_graphs_index"),
    ("POST", re.compile(r"^/v1/graphs$"), "handle_graphs_create"),
    ("GET", re.compile(r"^/v1/graphs/(?P<graph_id>[0-9a-f]{16})$"), "handle_graph_get"),
    ("DELETE", re.compile(r"^/v1/graphs/(?P<graph_id>[0-9a-f]{16})$"), "handle_graph_delete"),
    ("POST", re.compile(r"^/v1/graphs/(?P<graph_id>[0-9a-f]{16})/jobs$"), "handle_job_submit"),
    ("GET", re.compile(r"^/v1/jobs$"), "handle_jobs_index"),
    ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]{16})$"), "handle_job_get"),
    ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]{16})/events$"), "handle_job_events"),
    (
        "GET",
        re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]{16})/triangles$"),
        "handle_job_triangles",
    ),
]


class _Handler(BaseHTTPRequestHandler):
    """Per-connection glue: parse, route, serialise; logic lives on the service."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    service: "TriangleService"  # injected by the subclass TriangleService builds

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.service.verbose:
            super().log_message(format, *args)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body exceeds {MAX_BODY_BYTES} bytes", status=413, code="body_too_large"
            )
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError:
            raise ServiceError("request body is not valid JSON", code="bad_json") from None

    def _send_json(self, document: dict[str, Any], status: int = 200) -> None:
        body = json.dumps({"schema": SERVICE_SCHEMA, **document}, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        self.service.request_count += 1
        url = urlsplit(self.path)
        query = {key: values[-1] for key, values in parse_qs(url.query).items()}
        try:
            for route_method, pattern, handler_name in _ROUTES:
                if route_method != method:
                    continue
                match = pattern.match(url.path)
                if match is None:
                    continue
                handler: Callable[..., None] = getattr(self.service, handler_name)
                handler(self, query, **match.groupdict())
                return
            raise not_found("route", f"{method} {url.path}")
        except ServiceError as error:
            self._send_json(error.to_json(), status=error.status)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as error:  # defensive: one bad request must not kill the thread
            self._send_json(
                {"error": {"code": "internal", "message": f"{type(error).__name__}: {error}"}},
                status=500,
            )

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class TriangleService:
    """The server object ``repro serve`` runs: manager + HTTP front end.

    Parameters mirror the CLI flags; ``port=0`` asks the OS for a free
    port (read the chosen one back from :attr:`port` -- tests and the
    load-test harness rely on this).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        store: ResultStore | None = None,
        pool: str = "persistent",
        max_workers: int = 4,
        verbose: bool = False,
    ) -> None:
        self.manager = JobManager(store=store, pool=pool, max_workers=max_workers)
        self.verbose = verbose
        self.request_count = 0
        self._closed = False
        self._serve_thread: threading.Thread | None = None

        service = self

        class BoundHandler(_Handler):
            pass

        BoundHandler.service = service

        class BoundServer(ThreadingHTTPServer):
            daemon_threads = True
            # Default backlog (5) makes a burst of concurrent connects hit
            # SYN retransmission (+1s latency); size it for a client fleet.
            request_queue_size = 128

        self.httpd = BoundServer((host, port), BoundHandler)

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests (until :meth:`close` from another thread)."""
        self.httpd.serve_forever(poll_interval=0.1)

    def start(self) -> None:
        """Serve on a background thread (tests, load harness, signal-driven CLI)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()

    def close(self, drain_timeout: float | None = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain jobs, release engines.

        Idempotent.  The persistent worker pool is process-owned and torn
        down by the CLI layer (it may be shared with other engines in the
        same process, e.g. an in-process load test).
        """
        if self._closed:
            return
        self._closed = True
        self.httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
        self.httpd.server_close()
        self.manager.close(drain_timeout=drain_timeout)

    def __enter__(self) -> "TriangleService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------
    def handle_health(self, request: _Handler, query: dict[str, str]) -> None:
        request._send_json({"status": "ok"})

    def handle_stats(self, request: _Handler, query: dict[str, str]) -> None:
        request._send_json(
            {
                "manager": self.manager.stats(),
                "segments": segment_stats(),
                "requests": self.request_count,
            }
        )

    def handle_graphs_index(self, request: _Handler, query: dict[str, str]) -> None:
        request._send_json({"graphs": self.manager.describe_graphs()})

    def handle_graphs_create(self, request: _Handler, query: dict[str, str]) -> None:
        entry, created = self.manager.register_graph(request._read_body())
        request._send_json(
            {"graph": self.manager.describe_graph(entry.graph_id), "created": created},
            status=201 if created else 200,
        )

    def handle_graph_get(self, request: _Handler, query: dict[str, str], graph_id: str) -> None:
        request._send_json({"graph": self.manager.describe_graph(graph_id)})

    def handle_graph_delete(self, request: _Handler, query: dict[str, str], graph_id: str) -> None:
        self.manager.drop_graph(graph_id)
        request._send_json({"dropped": graph_id})

    def handle_job_submit(self, request: _Handler, query: dict[str, str], graph_id: str) -> None:
        job, created = self.manager.submit(graph_id, request._read_body())
        status = 202 if created else 200
        request._send_json({"job": job.summary(), "created": created}, status=status)

    def handle_jobs_index(self, request: _Handler, query: dict[str, str]) -> None:
        """Live jobs plus artifacts persisted by earlier server processes."""
        live = [job.summary() for job in self.manager.jobs()]
        live_ids = {job["id"] for job in live}
        stored = []
        if self.manager.store is not None:
            for artifact in self.manager.store.list():
                if artifact.get("task") != SERVICE_TASK:
                    continue
                if artifact.get("spec_hash") in live_ids:
                    continue
                stored.append(
                    {
                        "id": artifact.get("spec_hash"),
                        "state": "done",
                        "source": "store",
                        "query": artifact.get("payload"),
                        "result": {
                            key: value
                            for key, value in artifact["result"].items()
                            if key != "triangle_list"
                        },
                    }
                )
        request._send_json({"jobs": live, "stored": stored})

    def handle_job_get(self, request: _Handler, query: dict[str, str], job_id: str) -> None:
        request._send_json({"job": self.manager.job(job_id).summary()})

    def handle_job_events(self, request: _Handler, query: dict[str, str], job_id: str) -> None:
        """Stream the job's event log as server-sent events until terminal.

        The stream replays history first (from ``Last-Event-ID``/``after``
        when resuming), so subscribing to an already-finished job yields
        its whole story and closes immediately -- no race between finishing
        and subscribing.
        """
        job = self.manager.job(job_id)
        last_id = request.headers.get("Last-Event-ID") or query.get("after")
        index = 0
        if last_id is not None:
            index = (as_int(last_id, "Last-Event-ID", minimum=0) or 0) + 1
        request.send_response(200)
        request.send_header("Content-Type", "text/event-stream")
        request.send_header("Cache-Control", "no-cache")
        request.send_header("Connection", "close")
        request.end_headers()
        request.close_connection = True
        try:
            while True:
                events = job.events_since(index, timeout=SSE_HEARTBEAT_SECONDS)
                if not events:
                    if self._closed:
                        return
                    request.wfile.write(b": heartbeat\n\n")
                    request.wfile.flush()
                    continue
                for event_index, event, data in events:
                    request.wfile.write(sse_event(event, data, event_id=event_index))
                    index = event_index + 1
                request.wfile.flush()
                if job.terminal and index >= job.event_count:
                    return
        except (BrokenPipeError, ConnectionResetError):
            return

    def handle_job_triangles(self, request: _Handler, query: dict[str, str], job_id: str) -> None:
        """One cursor page of the job's stored triangles.

        ``limit`` caps the page size (clamped to :data:`MAX_PAGE_LIMIT`);
        ``cursor`` continues a previous page.  ``next_cursor`` is ``None``
        on the final page.  409 for a job that has not finished, 404 for a
        count-mode job (it stored no triangles).
        """
        job = self.manager.job(job_id)
        if not job.terminal:
            raise ServiceError(
                f"job {job_id} is still {job.state}; triangles are paged after completion",
                status=409,
                code="job_not_finished",
            )
        if job.triangles is None:
            raise ServiceError(
                f"job {job_id} stored no triangles (mode={job.query.get('mode')!r})",
                status=404,
                code="no_triangles",
            )
        limit = as_int(
            query.get("limit"),
            "limit",
            default=DEFAULT_PAGE_LIMIT,
            minimum=1,
            maximum=MAX_PAGE_LIMIT,
        )
        offset = 0
        cursor = query.get("cursor")
        if cursor is not None:
            offset = decode_cursor(cursor, job_id)
        page = job.triangles[offset : offset + limit]
        next_offset = offset + len(page)
        has_more = next_offset < len(job.triangles)
        request._send_json(
            {
                "job": job_id,
                "offset": offset,
                "total": len(job.triangles),
                "triangles": [list(triangle) for triangle in page],
                "next_cursor": encode_cursor(job_id, next_offset) if has_more else None,
            }
        )
