"""Wire-level vocabulary of the triangle-analytics service.

Everything the HTTP layer and the thin client agree on lives here, so the
two sides cannot drift apart silently:

* the JSON error envelope (``{"error": {"code", "message"}}``) and the
  :class:`ServiceError` that maps onto it,
* opaque pagination cursors (base64url of a tiny JSON document binding the
  cursor to one job, so a cursor can never be replayed against another
  job's triangle set -- the ``PaginatedPods``-style cursor/page pattern
  from SNIPPETS.md, server-driven instead of client-computed offsets),
* server-sent-event framing (``event:`` / ``id:`` / ``data:`` lines, one
  JSON document per event; see DESIGN.md "Service tier"),
* small validation helpers shared by every endpoint.

The module is dependency-free on purpose: the client must stay importable
in a bare stdlib interpreter.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any, Iterable, Mapping

from repro.exceptions import ReproError

#: Schema tag carried by every JSON response body of the service.
SERVICE_SCHEMA = "repro-service/v1"

#: Job lifecycle states, in order.  ``queued -> running -> done`` is the
#: happy path; ``failed`` and ``cancelled`` are terminal error states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can no longer leave (SSE streams end on reaching one).
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Query modes a job may run in.
JOB_MODES = ("count", "enum")

#: Default / maximum page size of the triangle pagination endpoint.
DEFAULT_PAGE_LIMIT = 500
MAX_PAGE_LIMIT = 5000


class ServiceError(ReproError):
    """A request the service refuses, carrying its HTTP status and code.

    Raised by the validation and lookup layers of :mod:`repro.service.jobs`
    and mapped to the JSON error envelope by the server; the client raises
    it again when a response carries the envelope, so callers on both sides
    handle one exception type.
    """

    def __init__(self, message: str, status: int = 400, code: str = "bad_request") -> None:
        super().__init__(message)
        self.status = status
        self.code = code

    def to_json(self) -> dict[str, Any]:
        return {"error": {"code": self.code, "message": str(self)}}


def not_found(kind: str, identifier: str) -> ServiceError:
    """The standard 404 for an unknown graph or job identifier."""
    return ServiceError(f"unknown {kind} {identifier!r}", status=404, code=f"{kind}_not_found")


# ----------------------------------------------------------------------
# pagination cursors
# ----------------------------------------------------------------------
def encode_cursor(job_id: str, offset: int) -> str:
    """An opaque cursor pointing at ``offset`` within ``job_id``'s triangles."""
    payload = json.dumps({"j": job_id, "o": offset}, sort_keys=True, separators=(",", ":"))
    return base64.urlsafe_b64encode(payload.encode()).decode().rstrip("=")


def decode_cursor(cursor: str, job_id: str) -> int:
    """The offset a cursor points at, validated against the job it came from.

    Raises :class:`ServiceError` (400) for anything malformed, and for a
    structurally valid cursor minted for a *different* job -- offsets are
    only meaningful within one job's stored triangle order.
    """
    try:
        padded = cursor + "=" * (-len(cursor) % 4)
        payload = json.loads(base64.urlsafe_b64decode(padded.encode()))
    except (ValueError, binascii.Error):
        raise ServiceError(f"malformed cursor {cursor!r}", code="bad_cursor") from None
    if not isinstance(payload, dict):
        raise ServiceError(f"malformed cursor {cursor!r}", code="bad_cursor")
    offset = payload.get("o")
    if payload.get("j") != job_id:
        raise ServiceError(
            f"cursor {cursor!r} was issued for job {payload.get('j')!r}, not {job_id!r}",
            code="bad_cursor",
        )
    if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
        raise ServiceError(f"malformed cursor {cursor!r}", code="bad_cursor")
    return offset


# ----------------------------------------------------------------------
# server-sent events
# ----------------------------------------------------------------------
def sse_event(event: str, data: Any, event_id: int | None = None) -> bytes:
    """One SSE frame: ``event:``/``id:``/``data:`` lines plus the blank line."""
    lines = [f"event: {event}"]
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"data: {json.dumps(data, sort_keys=True, separators=(',', ':'))}")
    return ("\n".join(lines) + "\n\n").encode()


def parse_sse(lines: Iterable[str | bytes]) -> Any:
    """Yield ``(event, id, data)`` triples from an iterable of SSE lines.

    ``lines`` may be ``str`` or ``bytes`` (the client hands over the raw
    response file object).  Comment lines (``:`` prefix, used as
    heartbeats) are skipped; ``data`` is parsed as JSON.
    """
    event: str | None = None
    event_id: int | None = None
    data_lines: list[str] = []
    for raw in lines:
        line = raw.decode() if isinstance(raw, bytes) else raw
        line = line.rstrip("\r\n")
        if line.startswith(":"):
            continue
        if line.startswith("event:"):
            event = line[len("event:") :].strip()
        elif line.startswith("id:"):
            try:
                event_id = int(line[len("id:") :].strip())
            except ValueError:
                event_id = None
        elif line.startswith("data:"):
            data_lines.append(line[len("data:") :].strip())
        elif line == "" and event is not None:
            payload = json.loads("\n".join(data_lines)) if data_lines else None
            yield event, event_id, payload
            event, event_id, data_lines = None, None, []


# ----------------------------------------------------------------------
# validation helpers
# ----------------------------------------------------------------------
def require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    """Insist a request body (or sub-document) is a JSON object."""
    if not isinstance(value, Mapping):
        raise ServiceError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def as_int(
    value: Any,
    name: str,
    default: int | None = None,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int | None:
    """Validate an integer field (strings accepted for query parameters)."""
    if value is None:
        value = default
    if value is None:
        return None
    if isinstance(value, bool):
        raise ServiceError(f"{name} must be an integer, got a boolean")
    if isinstance(value, str):
        try:
            value = int(value)
        except ValueError:
            raise ServiceError(f"{name} must be an integer, got {value!r}") from None
    if not isinstance(value, int):
        raise ServiceError(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ServiceError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        value = maximum
    return value
