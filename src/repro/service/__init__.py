"""Triangle analytics as a service: HTTP server, job manager, thin client.

``repro serve`` runs :class:`TriangleService` (a threaded stdlib HTTP
server over a :class:`JobManager`); ``repro client`` talks to it through
:class:`ServiceClient`.  See DESIGN.md "Service tier" for the job
lifecycle, SSE framing, pagination cursors and cache ownership.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import JobManager
from repro.service.protocol import ServiceError
from repro.service.server import TriangleService

__all__ = ["JobManager", "ServiceClient", "ServiceError", "TriangleService"]
