"""Process-pool plumbing shared by the orchestrator and the sharded engine.

One helper: :func:`spawn_map_unordered`, a thin wrapper over a
``multiprocessing`` *spawn* pool that degrades gracefully to in-process
``map`` whenever a pool would be useless (one job, one item) or illegal
(the caller is itself a daemonic pool worker, which may not spawn
children).  The start-method choice (``spawn``, for identical behaviour
across platforms) lives in exactly one place: here.

This is the *unsupervised* primitive -- results stream straight off
``imap_unordered`` with no timeouts or retries.  The orchestrator and the
sharded engine instead run through the fault-tolerant tier built on top of
it, :func:`repro.resilience.supervised_map_unordered`, which adds per-task
supervision (worker-death detection, task timeouts, deterministic retries)
around the same spawn-pool contract.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterator, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def effective_jobs(jobs: int, num_items: int) -> int:
    """The worker-process count a pool would actually use.

    Returns 1 (serial execution, no pool) when a pool is pointless --
    fewer than two jobs or fewer than two items -- or when the calling
    process is itself a daemonic pool worker, which ``multiprocessing``
    forbids from having children.
    """
    if jobs <= 1 or num_items <= 1:
        return 1
    if multiprocessing.current_process().daemon:
        return 1
    return min(jobs, num_items)


def spawn_map_unordered(
    function: Callable[[Item], Result],
    items: Sequence[Item],
    jobs: int,
    chunksize: int = 1,
) -> Iterator[Result]:
    """Apply ``function`` to every item, yielding results as they finish.

    With more than one effective job the items are distributed over a
    ``spawn``-based worker pool (``imap_unordered``, so results arrive in
    completion order); otherwise they are mapped in the calling process in
    input order.  ``function`` must be importable by name and both items
    and results must be picklable -- the same contract the experiment
    orchestrator's run specs already satisfy.
    """
    if effective_jobs(jobs, len(items)) == 1:
        yield from map(function, items)
        return
    context = multiprocessing.get_context("spawn")
    pool = context.Pool(processes=effective_jobs(jobs, len(items)))
    try:
        yield from pool.imap_unordered(function, items, chunksize)
    finally:
        # A consumer abandoning the iterator mid-stream (generator close,
        # early break, an exception in the consuming loop) must not leave
        # pool teardown to the garbage collector: terminate outstanding
        # workers and reap them before control returns.
        pool.terminate()
        pool.join()
