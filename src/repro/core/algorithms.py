"""Built-in algorithm registrations.

Each of the paper's algorithms (and each baseline) is registered here as a
thin adapter from the uniform :class:`~repro.core.registry.SubstrateContext`
calling convention to the algorithm's native signature, together with its
typed options dataclass.  This module is imported (once, lazily) by the
registry accessors, so merely asking for an algorithm by name brings the
built-ins into the registry; nothing else in the package hard-codes the
algorithm list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.baselines.bnlj import block_nested_loop_join
from repro.core.baselines.dementiev import dementiev_sort_based
from repro.core.baselines.hu_tao_chung import hu_tao_chung
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.cache_aware import cache_aware_randomized
from repro.core.cache_oblivious import cache_oblivious_randomized
from repro.core.derandomized import deterministic_cache_aware
from repro.core.registry import (
    AlgorithmOptions,
    SubstrateContext,
    register_algorithm,
)
from repro.exceptions import OptionsError


@dataclass(frozen=True)
class CacheAwareOptions(AlgorithmOptions):
    """Knobs of the randomized cache-aware algorithm (Section 2)."""

    #: Override for the number of colours ``c``; default is the paper's
    #: ``sqrt(E / M)``.
    num_colors: int | None = None

    def validate(self) -> None:
        self._require_optional_positive_int("num_colors")


@dataclass(frozen=True)
class DeterministicOptions(AlgorithmOptions):
    """Knobs of the derandomized cache-aware algorithm (Section 4)."""

    #: Override for the number of colours (rounded up to a power of two).
    num_colors: int | None = None
    #: Cap on the AGHP small-bias family scanned by the greedy colouring.
    max_family_size: int = 256

    def validate(self) -> None:
        self._require_optional_positive_int("num_colors")
        if isinstance(self.max_family_size, bool) or not isinstance(self.max_family_size, int):
            raise OptionsError(f"max_family_size must be an int, got {self.max_family_size!r}")
        if self.max_family_size < 1:
            raise OptionsError(f"max_family_size must be >= 1, got {self.max_family_size}")


@dataclass(frozen=True)
class CacheObliviousOptions(AlgorithmOptions):
    """Knobs of the randomized cache-oblivious algorithm (Section 3)."""

    #: Override of the recursion depth limit; default is the paper's ``log4 E``.
    max_depth: int | None = None
    #: Optional callback ``(depth, size)`` invoked for every subproblem.
    size_recorder: Callable[[int, int], None] | None = None

    def validate(self) -> None:
        self._require_optional_positive_int("max_depth", minimum=0)
        if self.size_recorder is not None and not callable(self.size_recorder):
            raise OptionsError(
                f"size_recorder must be callable or None, got {self.size_recorder!r}"
            )


@register_algorithm(
    "cache_aware",
    summary="Randomized cache-aware (paper Section 2, Theorem 4)",
    section="2",
    io_bound="O(E^{3/2}/(sqrt(M) B))",
    substrate="machine",
    accepts_seed=True,
    options=CacheAwareOptions,
    sharding="triples",
)
def _run_cache_aware(context: SubstrateContext, sink: Any, options: CacheAwareOptions) -> Any:
    return cache_aware_randomized(
        context.machine,
        context.edge_file,
        sink,
        seed=context.seed,
        num_colors=options.num_colors,
        triples_executor=context.triples_executor,
        high_degree_executor=context.high_degree_executor,
    )


@register_algorithm(
    "deterministic",
    summary="Deterministic cache-aware (paper Section 4, Theorem 2)",
    section="4",
    io_bound="O(E^{3/2}/(sqrt(M) B))",
    substrate="machine",
    accepts_seed=False,
    options=DeterministicOptions,
    sharding="triples",
)
def _run_deterministic(context: SubstrateContext, sink: Any, options: DeterministicOptions) -> Any:
    return deterministic_cache_aware(
        context.machine,
        context.edge_file,
        sink,
        num_colors=options.num_colors,
        max_family_size=options.max_family_size,
        triples_executor=context.triples_executor,
        high_degree_executor=context.high_degree_executor,
    )


@register_algorithm(
    "cache_oblivious",
    summary="Randomized cache-oblivious (paper Section 3, Theorem 1)",
    section="3",
    io_bound="O(E^{3/2}/(sqrt(M) B))",
    substrate="oblivious-vm",
    accepts_seed=True,
    options=CacheObliviousOptions,
)
def _run_cache_oblivious(
    context: SubstrateContext, sink: Any, options: CacheObliviousOptions
) -> Any:
    return cache_oblivious_randomized(
        context.vm,
        context.edge_vector,
        sink,
        seed=context.seed,
        max_depth=options.max_depth,
        size_recorder=options.size_recorder,
    )


@register_algorithm(
    "hu_tao_chung",
    summary="Hu-Tao-Chung SIGMOD 2013 baseline, O(E^2/(MB))",
    section="baseline (Hu, Tao & Chung, SIGMOD 2013)",
    io_bound="O(E^2/(M B))",
    substrate="machine",
    accepts_seed=False,
)
def _run_hu_tao_chung(context: SubstrateContext, sink: Any, options: AlgorithmOptions) -> Any:
    return hu_tao_chung(context.machine, context.edge_file, sink)


@register_algorithm(
    "dementiev",
    summary="Sort-based wedge-join baseline, O(sort(E^{3/2}))",
    section="baseline (Dementiev, 2006)",
    io_bound="O(sort(E^{3/2}))",
    substrate="machine",
    accepts_seed=False,
)
def _run_dementiev(context: SubstrateContext, sink: Any, options: AlgorithmOptions) -> Any:
    return dementiev_sort_based(context.machine, context.edge_file, sink)


@register_algorithm(
    "bnlj",
    summary="Block-nested-loop-join baseline, O(E^3/(M^2 B))",
    section="baseline (block-nested-loop join)",
    io_bound="O(E^3/(M^2 B))",
    substrate="machine",
    accepts_seed=False,
)
def _run_bnlj(context: SubstrateContext, sink: Any, options: AlgorithmOptions) -> Any:
    return block_nested_loop_join(context.machine, context.edge_file, sink)


@register_algorithm(
    "in_memory",
    summary="Compact-forward in-memory oracle (no simulated I/O)",
    section="1.3 (compact-forward oracle)",
    io_bound="none (internal memory)",
    substrate="in-memory",
    accepts_seed=False,
)
def _run_in_memory(context: SubstrateContext, sink: Any, options: AlgorithmOptions) -> Any:
    triangles_in_memory(context.edges, sink)
    return None


# The vectorized in-memory backend registers ``vector_count`` /
# ``vector_enum`` on import, and the out-of-core backend registers
# ``oocore_count`` / ``oocore_enum``, both riding the same lazy
# _ensure_builtins path as the registrations above (repro.fastpath never
# imports back into this module, so the imports are cycle-free).
import repro.fastpath.algorithms  # noqa: E402,F401
import repro.fastpath.oocore  # noqa: E402,F401
