"""Thin back-compatible entry points over the engine and the registry.

The real public API is :class:`repro.core.engine.TriangleEngine` (a session
object that canonicalises a graph once and runs many configurations against
it) plus the algorithm registry (:mod:`repro.core.registry`).  The functions
below are the original one-shot convenience wrappers, kept stable for
callers and scripts that predate the engine: each call builds a throwaway
engine, so repeated calls re-canonicalise -- use the engine directly when
running more than one configuration on the same graph.

Available algorithms are discovered from the registry; run ``repro
algorithms`` (or :func:`repro.core.registry.algorithm_specs`) for the full
table of paper sections, I/O bounds, substrate kinds and typed options.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, ItemsView, KeysView, ValuesView

from repro.analysis.model import MachineParams
from repro.core.emit import TriangleSink
from repro.core.engine import TriangleEngine
from repro.core.registry import algorithm_names, algorithm_specs, get_algorithm
from repro.core.result import EnumerationResult, RunResult
from repro.graph.graph import Graph


class _AlgorithmsView(dict):
    """Mapping of algorithm name to summary, backed by the live registry.

    Kept for back-compatibility with the old hand-maintained ``ALGORITHMS``
    dict; algorithms registered later (e.g. by plugins) appear automatically
    because membership checks re-consult the registry.
    """

    def __init__(self) -> None:
        super().__init__()
        self._refresh()

    def _refresh(self) -> None:
        dict.clear(self)
        for spec in algorithm_specs():
            dict.__setitem__(self, spec.name, spec.summary)

    def __contains__(self, name: object) -> bool:
        self._refresh()
        return dict.__contains__(self, name)

    def __iter__(self) -> Iterator[str]:
        self._refresh()
        return dict.__iter__(self)

    def __getitem__(self, name: str) -> str:
        self._refresh()
        return dict.__getitem__(self, name)

    def get(self, name: str, default: Any = None) -> Any:
        self._refresh()
        return dict.get(self, name, default)

    def keys(self) -> KeysView[str]:
        self._refresh()
        return dict.keys(self)

    def values(self) -> ValuesView[str]:
        self._refresh()
        return dict.values(self)

    def items(self) -> ItemsView[str, str]:
        self._refresh()
        return dict.items(self)

    def __len__(self) -> int:
        self._refresh()
        return dict.__len__(self)

    def __eq__(self, other: object) -> bool:
        self._refresh()
        # dict.__eq__ returns NotImplemented for non-dict operands; Python
        # derives a correct __ne__ (and unsets __hash__) from this __eq__.
        return dict.__eq__(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        self._refresh()
        return dict.__repr__(self)


#: Names of the supported algorithms mapped to a short description.
ALGORITHMS: dict[str, str] = _AlgorithmsView()


def list_algorithms() -> list[str]:
    """Names of all available enumeration algorithms."""
    return algorithm_names()


def enumerate_triangles(
    graph: Graph | Iterable[tuple[Any, Any]],
    algorithm: str = "cache_aware",
    params: MachineParams | None = None,
    seed: int = 0,
    sink: TriangleSink | None = None,
    collect: bool = True,
    **algorithm_options: Any,
) -> EnumerationResult:
    """Enumerate all triangles of ``graph`` with the chosen algorithm.

    Parameters
    ----------
    graph:
        A :class:`repro.graph.graph.Graph` or any iterable of edges (pairs of
        hashable vertex labels).
    algorithm:
        A registered algorithm name (see :func:`list_algorithms`).
    params:
        Simulated machine parameters ``(M, B)``; defaults to
        ``MachineParams.default()``.
    seed:
        Seed for the randomized algorithms (ignored by the deterministic
        ones).
    sink:
        Optional sink receiving each triangle (in original labels) as it is
        emitted; useful for streaming consumers.
    collect:
        When true (default) the result carries the full list of triangles;
        set to false for large outputs where only the count matters.
    algorithm_options:
        Validated against the algorithm's typed options dataclass (e.g.
        ``num_colors`` for the cache-aware variants, ``max_depth`` for the
        cache-oblivious one); unknown options raise
        :class:`repro.exceptions.OptionsError`.
    """
    # Fail fast on an unknown algorithm or invalid options *before* the
    # O(E log E) canonicalisation the engine constructor performs.
    get_algorithm(algorithm).resolve_options(None, algorithm_options)
    engine = TriangleEngine(graph, params=params)
    return engine.run(
        algorithm,
        seed=seed,
        sink=sink,
        collect=collect,
        **algorithm_options,
    )


def count_triangles(
    graph: Graph | Iterable[tuple[Any, Any]],
    algorithm: str = "cache_aware",
    params: MachineParams | None = None,
    seed: int = 0,
    **algorithm_options: Any,
) -> int:
    """Number of triangles in ``graph`` (convenience wrapper, does not collect them)."""
    get_algorithm(algorithm).resolve_options(None, algorithm_options)
    engine = TriangleEngine(graph, params=params)
    return engine.count(algorithm, seed=seed, **algorithm_options)


__all__ = [
    "ALGORITHMS",
    "EnumerationResult",
    "RunResult",
    "count_triangles",
    "enumerate_triangles",
    "list_algorithms",
]
