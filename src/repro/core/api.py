"""Public entry points for triangle enumeration.

:func:`enumerate_triangles` accepts either a :class:`repro.graph.graph.Graph`
or a plain iterable of edges, canonicalises it (degree ordering, Section 1.3
of the paper), runs the chosen algorithm on a freshly simulated machine and
returns an :class:`EnumerationResult` with the triangles (in the caller's
original vertex labels) and the simulated I/O counts.

Available algorithms (see :data:`ALGORITHMS`):

``cache_aware``
    Section 2 -- randomized cache-aware, ``O(E^{3/2}/(sqrt(M) B))`` expected.
``deterministic``
    Section 4 -- derandomized cache-aware, same bound, no randomness.
``cache_oblivious``
    Section 3 -- randomized cache-oblivious, same bound, never reads M or B.
``hu_tao_chung``
    SIGMOD 2013 baseline, ``O(E^2/(MB))``.
``dementiev``
    Sort-based baseline, ``O(sort(E^{3/2}))``.
``bnlj``
    Block-nested-loop-join baseline, ``O(E^3/(M^2 B))``.
``in_memory``
    Compact-forward oracle (no simulated I/O); the ground truth for tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.analysis.model import MachineParams
from repro.core.baselines.bnlj import block_nested_loop_join
from repro.core.baselines.dementiev import dementiev_sort_based
from repro.core.baselines.hu_tao_chung import hu_tao_chung
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.cache_aware import cache_aware_randomized
from repro.core.cache_oblivious import cache_oblivious_randomized
from repro.core.derandomized import deterministic_cache_aware
from repro.core.emit import TriangleSink, emit_all
from repro.exceptions import AlgorithmError
from repro.extmem.machine import Machine
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOSnapshot, IOStats
from repro.graph.graph import DegreeOrder, Graph
from repro.graph.io import edges_to_file, edges_to_vector

#: Names of the supported algorithms mapped to a short description.
ALGORITHMS: dict[str, str] = {
    "cache_aware": "Randomized cache-aware (paper Section 2, Theorem 4)",
    "deterministic": "Deterministic cache-aware (paper Section 4, Theorem 2)",
    "cache_oblivious": "Randomized cache-oblivious (paper Section 3, Theorem 1)",
    "hu_tao_chung": "Hu-Tao-Chung SIGMOD 2013 baseline, O(E^2/(MB))",
    "dementiev": "Sort-based wedge-join baseline, O(sort(E^{3/2}))",
    "bnlj": "Block-nested-loop-join baseline, O(E^3/(M^2 B))",
    "in_memory": "Compact-forward in-memory oracle (no simulated I/O)",
}


def list_algorithms() -> list[str]:
    """Names of all available enumeration algorithms."""
    return list(ALGORITHMS)


@dataclass
class EnumerationResult:
    """Everything a caller (or an experiment) needs to know about one run."""

    algorithm: str
    params: MachineParams
    num_vertices: int
    num_edges: int
    triangle_count: int
    triangles: list[tuple[Any, Any, Any]] | None
    io: IOSnapshot
    disk_peak_words: int
    wall_time_seconds: float
    report: Any
    order: DegreeOrder

    @property
    def total_ios(self) -> int:
        """Total simulated block transfers of the run."""
        return self.io.total


class _TranslatingSink:
    """Translates emitted ranks back to original vertex labels."""

    def __init__(self, inner: TriangleSink, order: DegreeOrder) -> None:
        self.inner = inner
        self.order = order
        self.count = 0

    def emit(self, a: int, b: int, c: int) -> None:
        self.count += 1
        labels = self.order.to_labels((a, b, c))
        self.inner.emit(*labels)

    def emit_many(self, triangles: Sequence[tuple[int, int, int]]) -> None:
        """Translate and forward a batch of ranked triangles in one call."""
        self.count += len(triangles)
        to_labels = self.order.to_labels
        emit_all(self.inner, [to_labels(triangle) for triangle in triangles])


class _LabelCollector:
    """Collects label triangles without re-sorting them (labels may not be comparable)."""

    def __init__(self) -> None:
        self.triangles: list[tuple[Any, Any, Any]] = []

    def emit(self, a: Any, b: Any, c: Any) -> None:
        self.triangles.append((a, b, c))

    def emit_many(self, triangles: Sequence[tuple[Any, Any, Any]]) -> None:
        self.triangles.extend(triangles)


class _NullSink:
    """Discards emissions (used when neither collection nor a sink is requested)."""

    def emit(self, a: Any, b: Any, c: Any) -> None:  # pragma: no cover - trivial
        return

    def emit_many(self, triangles: Sequence[tuple[Any, Any, Any]]) -> None:  # pragma: no cover
        return


def enumerate_triangles(
    graph: Graph | Iterable[tuple[Any, Any]],
    algorithm: str = "cache_aware",
    params: MachineParams | None = None,
    seed: int = 0,
    sink: TriangleSink | None = None,
    collect: bool = True,
    **algorithm_options: Any,
) -> EnumerationResult:
    """Enumerate all triangles of ``graph`` with the chosen algorithm.

    Parameters
    ----------
    graph:
        A :class:`repro.graph.graph.Graph` or any iterable of edges (pairs of
        hashable vertex labels).
    algorithm:
        One of :data:`ALGORITHMS`.
    params:
        Simulated machine parameters ``(M, B)``; defaults to
        ``MachineParams.default()``.
    seed:
        Seed for the randomized algorithms (ignored by the deterministic
        ones).
    sink:
        Optional sink receiving each triangle (in original labels) as it is
        emitted; useful for streaming consumers.
    collect:
        When true (default) the result carries the full list of triangles;
        set to false for large outputs where only the count matters.
    algorithm_options:
        Passed through to the underlying algorithm (e.g. ``num_colors`` for
        the cache-aware variants, ``max_depth`` for the cache-oblivious one).
    """
    if algorithm not in ALGORITHMS:
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(ALGORITHMS)}"
        )
    params = params if params is not None else MachineParams.default()
    graph_obj = graph if isinstance(graph, Graph) else Graph.from_edge_list(graph)
    order = graph_obj.degree_order()

    collector = _LabelCollector() if collect else None
    inner_sink: TriangleSink
    if sink is not None and collector is not None:
        inner_sink = _TeeSink(sink, collector)
    elif sink is not None:
        inner_sink = sink
    elif collector is not None:
        inner_sink = collector
    else:
        inner_sink = _NullSink()
    translating = _TranslatingSink(inner_sink, order)

    stats = IOStats()
    started = time.perf_counter()
    report: Any = None
    disk_peak = 0

    if algorithm == "in_memory":
        triangles_in_memory(order.edges, translating)
    elif algorithm == "cache_oblivious":
        vm = ObliviousVM(params, stats)
        edge_vector = edges_to_vector(vm, order.edges)
        report = cache_oblivious_randomized(
            vm, edge_vector, translating, seed=seed, **algorithm_options
        )
        disk_peak = vm.peak_words
    else:
        machine = Machine(params, stats)
        edge_file = edges_to_file(machine, order.edges)
        if algorithm == "cache_aware":
            report = cache_aware_randomized(
                machine, edge_file, translating, seed=seed, **algorithm_options
            )
        elif algorithm == "deterministic":
            report = deterministic_cache_aware(
                machine, edge_file, translating, **algorithm_options
            )
        elif algorithm == "hu_tao_chung":
            report = hu_tao_chung(machine, edge_file, translating, **algorithm_options)
        elif algorithm == "dementiev":
            report = dementiev_sort_based(machine, edge_file, translating, **algorithm_options)
        elif algorithm == "bnlj":
            report = block_nested_loop_join(machine, edge_file, translating, **algorithm_options)
        disk_peak = machine.disk.peak_words

    elapsed = time.perf_counter() - started
    return EnumerationResult(
        algorithm=algorithm,
        params=params,
        num_vertices=graph_obj.num_vertices,
        num_edges=order.num_edges,
        triangle_count=translating.count,
        triangles=collector.triangles if collector is not None else None,
        io=stats.snapshot(),
        disk_peak_words=disk_peak,
        wall_time_seconds=elapsed,
        report=report,
        order=order,
    )


class _TeeSink:
    """Forwards emissions to two sinks (user sink plus the collector)."""

    def __init__(self, first: TriangleSink, second: TriangleSink) -> None:
        self.first = first
        self.second = second

    def emit(self, a: Any, b: Any, c: Any) -> None:
        self.first.emit(a, b, c)
        self.second.emit(a, b, c)

    def emit_many(self, triangles: Sequence[tuple[Any, Any, Any]]) -> None:
        emit_all(self.first, triangles)
        emit_all(self.second, triangles)


def count_triangles(
    graph: Graph | Iterable[tuple[Any, Any]],
    algorithm: str = "cache_aware",
    params: MachineParams | None = None,
    seed: int = 0,
    **algorithm_options: Any,
) -> int:
    """Number of triangles in ``graph`` (convenience wrapper, does not collect them)."""
    result = enumerate_triangles(
        graph,
        algorithm=algorithm,
        params=params,
        seed=seed,
        collect=False,
        **algorithm_options,
    )
    return result.triangle_count
