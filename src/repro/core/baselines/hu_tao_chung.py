"""The Hu-Tao-Chung (SIGMOD 2013) baseline: ``O(E^2 / (M B) + E/B)`` I/Os.

The algorithm is exactly the Lemma 2 subroutine applied with ``E' = E``:
load ``alpha * M`` edges at a time as pivot candidates and, for each batch,
stream the whole edge set once to find the cone extensions.  This is the
strongest previously published baseline the paper improves on (by a factor
``sqrt(E/M)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.emit import TriangleSink
from repro.core.lemma2 import triangles_with_pivot_in
from repro.extmem.disk import ExtFile
from repro.extmem.machine import Machine


@dataclass
class BaselineReport:
    """Minimal report shared by the baseline algorithms."""

    num_edges: int
    triangles_emitted: int


def hu_tao_chung(machine: Machine, edge_file: ExtFile, sink: TriangleSink) -> BaselineReport:
    """Enumerate all triangles with the Hu-Tao-Chung algorithm.

    ``edge_file`` must be the canonical (degree-ordered, lexicographically
    sorted) edge list resident on the machine's disk.
    """
    num_edges = len(edge_file)
    if num_edges == 0:
        return BaselineReport(num_edges=0, triangles_emitted=0)
    emitted = triangles_with_pivot_in(
        machine,
        pivot_source=edge_file,
        adjacency_sources=[edge_file],
        sink=sink,
    )
    return BaselineReport(num_edges=num_edges, triangles_emitted=emitted)
