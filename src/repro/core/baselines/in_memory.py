"""In-memory reference enumeration (correctness oracle).

A straightforward compact-forward / edge-iterator algorithm over Python
sets.  It performs no simulated I/O and is used as the ground truth against
which every external-memory algorithm is tested, and by the join layer when
the data comfortably fits in real memory.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.emit import Triangle, TriangleSink, sorted_triangle

RankedEdge = tuple[int, int]


def triangles_in_memory(edges: Iterable[RankedEdge], sink: TriangleSink | None = None) -> list[Triangle]:
    """Enumerate all triangles of a canonical edge list in memory.

    Each triangle ``a < b < c`` is reported exactly once, discovered from its
    edge ``(a, b)`` by intersecting the forward neighbourhoods of ``a`` and
    ``b``.  Returns the list of triangles; also forwards them to ``sink`` if
    one is given.
    """
    forward: dict[int, set[int]] = {}
    edge_list: list[RankedEdge] = []
    for u, v in edges:
        if u > v:
            u, v = v, u
        forward.setdefault(u, set()).add(v)
        edge_list.append((u, v))

    triangles: list[Triangle] = []
    for u, v in edge_list:
        closing = forward.get(u)
        extending = forward.get(v)
        if not closing or not extending:
            continue
        smaller, larger = (closing, extending) if len(closing) <= len(extending) else (extending, closing)
        for w in smaller:
            if w in larger:
                triangle = sorted_triangle(u, v, w)
                triangles.append(triangle)
                if sink is not None:
                    sink.emit(*triangle)
    return triangles


def count_triangles_in_memory(edges: Iterable[RankedEdge]) -> int:
    """Number of triangles in a canonical edge list (in-memory oracle)."""
    return len(triangles_in_memory(edges))


def triangle_set(edges: Sequence[RankedEdge]) -> set[Triangle]:
    """The triangles of ``edges`` as a set of sorted tuples."""
    return set(triangles_in_memory(edges))
