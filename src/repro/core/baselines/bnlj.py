"""The block-nested-loop-join baseline: ``O(E^3 / (M^2 B))`` I/Os.

Triangle enumeration is the natural join of three copies of the edge
relation; the naive evaluation with two pipelined block-nested-loop joins
keeps one memory-sized chunk of each of the first two copies in internal
memory and streams the third.  For every pair of chunks ``(C1, C2)`` and
every streamed closing edge ``(u, w)``, the cone vertices are the common
backward neighbours of ``u`` in ``C1`` and ``w`` in ``C2``.

This is the weakest baseline in the paper's comparison table; it loses a
factor ``E/M`` to Hu-Tao-Chung and ``(E/M)^{1/2} * (E/M)`` in total to the
paper's algorithms, and the experiments show exactly that separation.
"""

from __future__ import annotations

from repro.core.baselines.hu_tao_chung import BaselineReport
from repro.core.emit import TriangleSink, emit_all, sorted_triangle
from repro.extmem.disk import ExtFile
from repro.extmem.machine import Machine

#: Fraction of internal memory per chunk; two chunks plus their indexes are
#: leased, so the default keeps the footprint under ``M``.
_CHUNK_FRACTION = 1.0 / 6.0


def block_nested_loop_join(
    machine: Machine, edge_file: ExtFile, sink: TriangleSink
) -> BaselineReport:
    """Enumerate all triangles with two pipelined block-nested-loop joins."""
    num_edges = len(edge_file)
    if num_edges == 0:
        return BaselineReport(num_edges=0, triangles_emitted=0)

    chunk_size = max(1, int(_CHUNK_FRACTION * machine.memory_size))
    emitted = 0
    for first_start in range(0, num_edges, chunk_size):
        first_count = min(chunk_size, num_edges - first_start)
        with machine.lease(3 * first_count, "bnlj outer chunk"):
            first_chunk = machine.load(edge_file, first_start, first_count)
            # Backward adjacency of the outer chunk: larger endpoint -> cone vertices.
            first_by_larger: dict[int, list[int]] = {}
            for v, u in first_chunk:
                first_by_larger.setdefault(u, []).append(v)
            for second_start in range(0, num_edges, chunk_size):
                second_count = min(chunk_size, num_edges - second_start)
                with machine.lease(3 * second_count, "bnlj inner chunk"):
                    second_chunk = machine.load(edge_file, second_start, second_count)
                    second_by_larger: dict[int, list[int]] = {}
                    for v, w in second_chunk:
                        second_by_larger.setdefault(w, []).append(v)
                    emitted += _probe_closing_edges(
                        machine, edge_file, first_by_larger, second_by_larger, sink
                    )
    return BaselineReport(num_edges=num_edges, triangles_emitted=emitted)


def _probe_closing_edges(
    machine: Machine,
    edge_file: ExtFile,
    first_by_larger: dict[int, list[int]],
    second_by_larger: dict[int, list[int]],
    sink: TriangleSink,
) -> int:
    """Stream the edge set once, closing wedges formed by the two resident chunks.

    A triangle ``v < u < w`` is emitted when ``(v, u)`` lies in the outer
    chunk, ``(v, w)`` in the inner chunk and the scan meets the closing edge
    ``(u, w)`` -- a combination that occurs for exactly one pair of chunks,
    so each triangle is emitted exactly once.
    """
    emitted = 0
    charge_operations = machine.stats.charge_operations
    first_get = first_by_larger.get
    second_get = second_by_larger.get
    for block in machine.scan_blocks(edge_file):
        charge_operations(len(block))
        triangles: list[tuple[int, int, int]] = []
        for u, w in block:
            from_first = first_get(u)
            if not from_first:
                continue
            from_second = second_get(w)
            if not from_second:
                continue
            smaller, larger = (
                (from_first, from_second)
                if len(from_first) <= len(from_second)
                else (from_second, from_first)
            )
            larger_set = set(larger)
            charge_operations(len(smaller))
            triangles.extend(
                sorted_triangle(cone, u, w)
                for cone in smaller
                if cone in larger_set and cone != u and cone != w
            )
        emit_all(sink, triangles)
        emitted += len(triangles)
    return emitted
