"""External-memory baselines the paper compares against, plus an in-memory oracle."""

from repro.core.baselines.bnlj import block_nested_loop_join
from repro.core.baselines.dementiev import dementiev_sort_based
from repro.core.baselines.hu_tao_chung import hu_tao_chung
from repro.core.baselines.in_memory import (
    count_triangles_in_memory,
    triangles_in_memory,
)

__all__ = [
    "block_nested_loop_join",
    "count_triangles_in_memory",
    "dementiev_sort_based",
    "hu_tao_chung",
    "triangles_in_memory",
]
