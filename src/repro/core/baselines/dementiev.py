"""Dementiev's sort-based baseline: ``O(sort(E^{3/2}))`` I/Os.

The algorithm materialises every *wedge* (a path ``u - v - w`` with
``v < u < w`` in the degree order, i.e. a pair of forward neighbours of the
cone vertex ``v``), sorts the wedges by their missing edge ``(u, w)`` and
merges them with the sorted edge list to find the wedges that close into
triangles.  With degree ordering the number of wedges is ``O(E^{3/2})``, so
the cost is dominated by sorting them -- the weak temporal locality the
paper points out (only a logarithmic dependence on ``M``).

The same wedge-join, implemented cache-obliviously, serves as the base case
of the recursion in :mod:`repro.core.cache_oblivious`.
"""

from __future__ import annotations

from itertools import groupby
from operator import itemgetter

from repro.core.baselines.hu_tao_chung import BaselineReport
from repro.core.emit import TriangleSink, emit_all, sorted_triangle
from repro.extmem.disk import ExtFile
from repro.extmem.machine import Machine


def dementiev_sort_based(
    machine: Machine, edge_file: ExtFile, sink: TriangleSink
) -> BaselineReport:
    """Enumerate all triangles with the sort-based wedge join.

    ``edge_file`` must be the canonical (degree-ordered, lexicographically
    sorted) edge list.  The forward adjacency list of a single vertex is held
    in internal memory while its wedges are generated; with degree ordering
    the forward degree is at most ``sqrt(2E)``, which fits under the paper's
    standing assumption ``M >= sqrt(E)``.
    """
    num_edges = len(edge_file)
    if num_edges == 0:
        return BaselineReport(num_edges=0, triangles_emitted=0)

    # Phase 1: generate wedges grouped by cone vertex (one bulk write and
    # one bulk work charge per forward-neighbour group).
    with machine.writer("wedges") as wedge_writer:

        def flush_group(group_vertex: int, group_neighbors: list[int]) -> None:
            wedges_of_group = [
                (u, w, group_vertex)
                for i, u in enumerate(group_neighbors)
                for w in group_neighbors[i + 1 :]
            ]
            machine.stats.charge_operations(len(wedges_of_group))
            wedge_writer.extend(wedges_of_group)

        current_vertex: int | None = None
        current_neighbors: list[int] = []
        for block in machine.scan_blocks(edge_file):
            machine.stats.charge_operations(len(block))
            for v, group in groupby(block, key=itemgetter(0)):
                neighbors = [u for _, u in group]
                if v == current_vertex:
                    current_neighbors.extend(neighbors)
                else:
                    if current_vertex is not None:
                        flush_group(current_vertex, current_neighbors)
                    current_vertex = v
                    current_neighbors = neighbors
        if current_vertex is not None:
            flush_group(current_vertex, current_neighbors)
    wedges = wedge_writer.file

    # Phase 2: sort wedges by their closing edge and merge with the edge list.
    sorted_wedges = machine.sort(wedges, key=lambda wedge: (wedge[0], wedge[1]))
    wedges.delete()

    emitted = 0
    edge_stream = machine.scan(edge_file)
    current_edge = next(edge_stream, None)
    for block in machine.scan_blocks(sorted_wedges):
        machine.stats.charge_operations(len(block))
        triangles: list[tuple[int, int, int]] = []
        for u, w, v in block:
            while current_edge is not None and current_edge < (u, w):
                current_edge = next(edge_stream, None)
            if current_edge is not None and current_edge == (u, w):
                triangles.append(sorted_triangle(v, u, w))
        emit_all(sink, triangles)
        emitted += len(triangles)
    sorted_wedges.delete()
    return BaselineReport(num_edges=num_edges, triangles_emitted=emitted)
