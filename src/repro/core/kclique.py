"""Extension: k-clique enumeration via the paper's colour-coding technique.

The paper's conclusion (Section 6) points out that the randomized cache-aware
algorithm of Section 2 extends to enumerating any k-vertex subgraph in the
Alon class -- in particular k-cliques -- in
``O(E^{k/2} / (M^{k/2 - 1} B))`` expected I/Os (Silvestri, "Subgraph
Enumeration in Massive Graphs", 2014): colour the vertices with
``c = sqrt(E/M)`` colours, which splits the problem into ``c^k =
(E/M)^{k/2}`` subproblems of expected size ``O(k^2 M)``, and solve each
subproblem on its own.

This module implements that extension:

* :func:`cliques_in_memory` -- the RAM-model oracle (ordered DFS over forward
  adjacency lists), used for correctness testing and as the subproblem
  solver;
* :func:`cache_aware_kclique` -- the external-memory algorithm: partition the
  edge set by endpoint-colour pair (reusing
  :func:`repro.core.cache_aware.partition_by_coloring`), and for every
  ordered colour k-tuple solve the union of its ``C(k, 2)`` colour classes.
  Subproblems that do not fit in the memory budget are split further by
  refining the colouring with one extra random bit (the same refinement idea
  the cache-oblivious algorithm uses), so skewed inputs degrade gracefully
  instead of over-subscribing memory.

For ``k = 3`` the algorithm specialises to triangle enumeration and is tested
against the Section 2 implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Iterable, Protocol, Sequence

from repro.analysis.bounds import colour_count
from repro.core.cache_aware import partition_by_coloring
from repro.exceptions import AlgorithmError
from repro.extmem.disk import ExtFile, FileSlice, Readable
from repro.extmem.machine import Machine
from repro.graph.validation import RankedEdge
from repro.hashing.coloring import Coloring, ConstantColoring, RandomColoring
from repro.hashing.coloring import bulk_cached_colors
from repro.hashing.coloring import colors_of as bulk_colors
from repro.hashing.kwise import KWiseIndependentHash

Clique = tuple[int, ...]

#: Fraction of internal memory a subproblem may occupy before it is split.
#: The in-memory solver leases twice the subproblem size (edge list plus its
#: adjacency index), so 0.4 keeps the footprint below ``M``.
_SUBPROBLEM_MEMORY_FRACTION = 0.4
#: Safety cap on the number of colour refinements applied to one subproblem.
_MAX_REFINEMENTS = 16


class CliqueSink(Protocol):
    """Receiver of emitted k-cliques (vertices arrive in ascending rank order)."""

    def emit(self, *vertices: int) -> None:
        """Receive one clique."""
        ...


class CountingCliqueSink:
    """Counts emitted cliques."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, *vertices: int) -> None:
        self.count += 1


class CollectingCliqueSink:
    """Collects emitted cliques as sorted tuples."""

    def __init__(self) -> None:
        self.cliques: list[Clique] = []

    def emit(self, *vertices: int) -> None:
        self.cliques.append(tuple(sorted(vertices)))

    @property
    def count(self) -> int:
        """Number of cliques emitted so far."""
        return len(self.cliques)

    def as_set(self) -> set[Clique]:
        """The emitted cliques as a set."""
        return set(self.cliques)


class DedupCheckingCliqueSink:
    """Wrapper enforcing the exactly-once emission contract for cliques."""

    def __init__(self) -> None:
        self.seen: set[Clique] = set()

    def emit(self, *vertices: int) -> None:
        clique = tuple(sorted(vertices))
        if len(set(clique)) != len(clique):
            raise AlgorithmError(f"degenerate clique {clique}")
        if clique in self.seen:
            raise AlgorithmError(f"clique {clique} emitted more than once")
        self.seen.add(clique)

    @property
    def count(self) -> int:
        """Number of distinct cliques emitted."""
        return len(self.seen)

    def as_set(self) -> set[Clique]:
        """The emitted cliques as a set."""
        return set(self.seen)


# ----------------------------------------------------------------------
# in-memory oracle / subproblem solver
# ----------------------------------------------------------------------
def cliques_in_memory(
    edges: Iterable[RankedEdge],
    k: int,
    sink: CliqueSink | None = None,
    accept: "_TupleFilter | None" = None,
) -> list[Clique]:
    """Enumerate all k-cliques of an edge list in memory.

    Vertices of each clique are reported in ascending order; each clique is
    reported exactly once.  ``accept`` is an optional per-clique filter used
    by the colour-coded algorithm (not part of the public oracle contract).
    """
    if k < 1:
        raise AlgorithmError(f"clique size must be positive, got {k}")
    forward: dict[int, set[int]] = {}
    vertices: set[int] = set()
    for u, v in edges:
        if u > v:
            u, v = v, u
        forward.setdefault(u, set()).add(v)
        vertices.add(u)
        vertices.add(v)

    results: list[Clique] = []

    def report(clique: Clique) -> None:
        if accept is not None and not accept(clique):
            return
        results.append(clique)
        if sink is not None:
            sink.emit(*clique)

    if k == 1:
        for vertex in sorted(vertices):
            report((vertex,))
        return results
    if k == 2:
        for u in sorted(forward):
            for v in sorted(forward[u]):
                report((u, v))
        return results

    def extend(prefix: list[int], candidates: set[int]) -> None:
        if len(prefix) == k:
            report(tuple(prefix))
            return
        # Pruning: not enough candidates left to complete the clique.
        if len(candidates) < k - len(prefix):
            return
        for vertex in sorted(candidates):
            extend(prefix + [vertex], candidates & forward.get(vertex, set()))

    for vertex in sorted(forward):
        extend([vertex], set(forward[vertex]))
    return results


def count_cliques_in_memory(edges: Iterable[RankedEdge], k: int) -> int:
    """Number of k-cliques of an edge list (in-memory oracle)."""
    return len(cliques_in_memory(edges, k))


class _TupleFilter:
    """Accepts cliques whose colour vector (in vertex order) equals a target tuple."""

    def __init__(self, coloring: Coloring, target: tuple[int, ...]) -> None:
        self.coloring = coloring
        self.target = target

    def __call__(self, clique: Clique) -> bool:
        return tuple(self.coloring.color_of(v) for v in clique) == self.target


# ----------------------------------------------------------------------
# the external-memory algorithm
# ----------------------------------------------------------------------
@dataclass
class KCliqueReport:
    """Diagnostics of one external k-clique run."""

    num_edges: int
    clique_size: int
    num_colors: int
    cliques_emitted: int = 0
    subproblems_solved: int = 0
    subproblems_refined: int = 0
    largest_subproblem: int = 0
    partition_sizes: dict[tuple[int, int], int] = field(default_factory=dict)


def cache_aware_kclique(
    machine: Machine,
    edge_file: ExtFile,
    clique_size: int,
    sink: CliqueSink,
    seed: int | None = 0,
    num_colors: int | None = None,
) -> KCliqueReport:
    """Enumerate all cliques of ``clique_size`` vertices in external memory.

    ``edge_file`` must be the canonical (degree-ordered, lexicographically
    sorted) edge list resident on the machine's disk.  Expected I/O cost is
    ``O(E^{k/2} / (M^{k/2-1} B))`` for constant ``k`` on inputs without
    extreme degree skew; heavily skewed subproblems are split recursively by
    refining the colouring, which preserves correctness and the memory
    discipline at the cost of extra passes over the oversized classes.
    """
    k = clique_size
    if k < 3:
        raise AlgorithmError(
            f"the external algorithm handles cliques of at least 3 vertices, got k={k}"
        )
    num_edges = len(edge_file)
    report = KCliqueReport(num_edges=num_edges, clique_size=k, num_colors=1)
    if num_edges < math.comb(k, 2):
        return report

    c = num_colors if num_colors is not None else colour_count(num_edges, machine.memory_size)
    c = max(1, c)
    report.num_colors = c
    coloring: Coloring = ConstantColoring() if c == 1 else RandomColoring(c, seed=seed)

    with machine.phase("kclique-partition"):
        partitioned, slices, sizes = partition_by_coloring(machine, edge_file, coloring)
    report.partition_sizes = sizes

    budget = max(1, int(_SUBPROBLEM_MEMORY_FRACTION * machine.memory_size))
    with machine.phase("kclique-subproblems"):
        for target in product(range(c), repeat=k):
            _solve_subproblem(
                machine,
                slices,
                coloring,
                target,
                k,
                sink,
                budget,
                seed if seed is not None else 0,
                depth=0,
                report=report,
            )
    partitioned.delete()
    return report


def _union_sources(
    slices: dict[tuple[int, int], FileSlice],
    coloring_target: tuple[int, ...],
) -> list[Readable]:
    """The colour classes spanned by a colour k-tuple (each class listed once)."""
    keys = {
        (coloring_target[i], coloring_target[j])
        for i, j in combinations(range(len(coloring_target)), 2)
    }
    return [slices[key] for key in sorted(keys) if key in slices and len(slices[key]) > 0]


def _solve_subproblem(
    machine: Machine,
    slices: dict[tuple[int, int], FileSlice],
    coloring: Coloring,
    target: tuple[int, ...],
    k: int,
    sink: CliqueSink,
    budget: int,
    seed: int,
    depth: int,
    report: KCliqueReport,
) -> None:
    """Solve one colour-tuple subproblem, splitting it if it exceeds the budget."""
    sources = _union_sources(slices, target)
    union_size = sum(len(source) for source in sources)
    if union_size < math.comb(k, 2):
        return
    report.largest_subproblem = max(report.largest_subproblem, union_size)

    if union_size <= budget:
        report.subproblems_solved += 1
        with machine.lease(2 * union_size, "k-clique subproblem"):
            edges: list[RankedEdge] = []
            for source in sources:
                edges.extend(machine.load(source, 0, len(source)))
            accept = _TupleFilter(coloring, target)
            found = cliques_in_memory(edges, k, sink=sink, accept=accept)
            machine.stats.charge_operations(max(1, len(edges)))
            report.cliques_emitted += len(found)
        return

    if depth >= _MAX_REFINEMENTS:
        raise AlgorithmError(
            f"colour refinement failed to shrink a subproblem of {union_size} edges below "
            f"the memory budget of {budget} words after {depth} levels"
        )

    # Oversized subproblem: refine the colouring with one extra bit and
    # recurse on the 2^k refined colour tuples consistent with the parent.
    report.subproblems_refined += 1
    bit = KWiseIndependentHash(2, independence=4, seed=seed * 7919 + depth * 104729 + 1)
    refined = _RefinedColoring(coloring, bit)

    with machine.writer() as union_writer:
        for block in machine.scan_many_blocks(sources):
            union_writer.extend(block)
    union_file = union_writer.file
    refined_file, refined_slices, _sizes = partition_by_coloring(machine, union_file, refined)
    union_file.delete()

    for bits in product((0, 1), repeat=k):
        refined_target = tuple(2 * colour + bit_value for colour, bit_value in zip(target, bits))
        _solve_subproblem(
            machine,
            refined_slices,
            refined,
            refined_target,
            k,
            sink,
            budget,
            seed + 1,
            depth + 1,
            report,
        )
    refined_file.delete()


class _RefinedColoring:
    """``2 * parent(v) + bit(v)`` with per-vertex caching (hot sort-key path)."""

    def __init__(self, parent: Coloring, bit: KWiseIndependentHash) -> None:
        self.parent = parent
        self.bit = bit
        self.num_colors = 2 * parent.num_colors
        self._cache: dict[int, int] = {}

    def color_of(self, vertex: int) -> int:
        cached = self._cache.get(vertex)
        if cached is None:
            cached = 2 * self.parent.color_of(vertex) + self.bit(vertex)
            self._cache[vertex] = cached
        return cached

    def colors_of(self, vertices: Sequence[int]) -> list[int]:
        """Refine a batch of vertices, hashing only the cache misses."""

        def resolve(missing: list[int]) -> list[int]:
            parents = bulk_colors(self.parent, missing)
            bits = self.bit.hash_many(missing)
            return [2 * parent + bit for parent, bit in zip(parents, bits)]

        return bulk_cached_colors(self._cache, vertices, resolve)
