"""The reusable triangle-enumeration session object.

:class:`TriangleEngine` owns the canonicalisation of one graph (``Graph`` →
:class:`~repro.graph.graph.DegreeOrder`, Section 1.3 of the paper) **once**
and then runs any number of ``(algorithm, params, seed, options)``
configurations against the same prepared edge list -- each run on a freshly
simulated machine with fresh I/O counters, so measurements are independent
and bit-identical to the old one-shot entry points.  Algorithms are resolved
through the declarative registry (:mod:`repro.core.registry`); the engine is
the only place in the package that knows how to stand up a substrate.

Four consumption modes::

    engine = TriangleEngine(graph)
    engine.run("cache_aware", collect=True)      # materialised triangle list
    engine.run("bnlj", sink=my_sink)             # push into a user sink
    engine.count("deterministic")                # count-only fast path
    for batch in engine.stream("cache_aware"):   # pull label-triangle batches
        ...

The count-only path skips the per-triangle rank→label translation entirely
(the algorithm emits straight into a counting sink), which is what the
experiment sweeps use; algorithms that register a count-only adapter
(``counter`` on the spec, e.g. the vectorized ``vector_count``) skip
emission altogether and just report the total.  Streaming runs the algorithm on a worker thread and
hands label-triangle batches across a bounded queue, so consumers iterate
with the memory footprint of one batch.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.analysis.model import MachineParams
from repro.core.emit import CountingSink, TriangleSink, emit_all
from repro.core.registry import (
    AlgorithmOptions,
    SubstrateContext,
    get_algorithm,
)
from repro.core.result import RunResult
from repro.exceptions import ReproError, StreamWorkerError
from repro.extmem.machine import Machine
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.graph import DegreeOrder, Graph
from repro.graph.io import edges_to_file, edges_to_vector
from repro.graph.validation import check_canonical_edges


class _TranslatingSink:
    """Translates emitted ranks back to original vertex labels."""

    def __init__(self, inner: TriangleSink, order: DegreeOrder) -> None:
        self.inner = inner
        self.order = order
        self.count = 0

    def emit(self, a: int, b: int, c: int) -> None:
        self.count += 1
        labels = self.order.to_labels((a, b, c))
        self.inner.emit(*labels)

    def emit_many(self, triangles: Sequence[tuple[int, int, int]]) -> None:
        """Translate and forward a batch of ranked triangles in one call."""
        self.count += len(triangles)
        to_labels = self.order.to_labels
        emit_all(self.inner, [to_labels(triangle) for triangle in triangles])


class _CountingForwarder:
    """Counts and forwards emissions unchanged (identity-label engines)."""

    def __init__(self, inner: TriangleSink) -> None:
        self.inner = inner
        self.count = 0

    def emit(self, a: int, b: int, c: int) -> None:
        self.count += 1
        self.inner.emit(a, b, c)

    def emit_many(self, triangles: Sequence[tuple[int, int, int]]) -> None:
        self.count += len(triangles)
        emit_all(self.inner, triangles)


class _LabelCollector:
    """Collects label triangles without re-sorting them (labels may not be comparable)."""

    def __init__(self) -> None:
        self.triangles: list[tuple[Any, Any, Any]] = []

    def emit(self, a: Any, b: Any, c: Any) -> None:
        self.triangles.append((a, b, c))

    def emit_many(self, triangles: Sequence[tuple[Any, Any, Any]]) -> None:
        self.triangles.extend(triangles)


class _TeeSink:
    """Forwards emissions to two sinks (user sink plus the collector)."""

    def __init__(self, first: TriangleSink, second: TriangleSink) -> None:
        self.first = first
        self.second = second

    def emit(self, a: Any, b: Any, c: Any) -> None:
        self.first.emit(a, b, c)
        self.second.emit(a, b, c)

    def emit_many(self, triangles: Sequence[tuple[Any, Any, Any]]) -> None:
        emit_all(self.first, triangles)
        emit_all(self.second, triangles)


class _StreamClosed(Exception):
    """Internal: the consumer abandoned a stream; unwind the worker."""


def _put_or_closed(
    out: "queue_module.Queue[tuple[str, Any]]",
    stop: threading.Event,
    message: tuple[str, Any],
) -> bool:
    """Enqueue ``message``, polling ``stop`` while the queue is full.

    Returns ``False`` (without enqueueing) once ``stop`` is set.  Every
    worker-side queue write goes through here, which is the teardown
    invariant the consumer's drain loop relies on: after ``stop.set()`` no
    worker can stay blocked on the queue for more than one poll interval.
    """
    while not stop.is_set():
        try:
            out.put(message, timeout=0.1)
            return True
        except queue_module.Full:
            continue
    return False


class _StreamBatchSink:
    """Buffers label triangles and ships them across the stream queue."""

    def __init__(
        self,
        out: "queue_module.Queue[tuple[str, Any]]",
        batch_size: int,
        stop: threading.Event,
    ) -> None:
        self.out = out
        self.batch_size = batch_size
        self.stop = stop
        self.buffer: list[tuple[Any, Any, Any]] = []

    def emit(self, a: Any, b: Any, c: Any) -> None:
        self.buffer.append((a, b, c))
        if len(self.buffer) >= self.batch_size:
            self.flush()

    def emit_many(self, triangles: Sequence[tuple[Any, Any, Any]]) -> None:
        self.buffer.extend(triangles)
        if len(self.buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Ship the buffered triangles in batch_size slices.

        Algorithms emit through the batched ``emit_many`` path with batches
        of their own sizing, so the buffer may exceed ``batch_size``; it is
        re-chunked here to honour the consumer's bound.  Raises
        :class:`_StreamClosed` if the consumer went away.
        """
        if not self.buffer:
            return
        buffered, self.buffer = self.buffer, []
        for start in range(0, len(buffered), self.batch_size):
            self._put(buffered[start : start + self.batch_size])

    def _put(self, batch: list[tuple[Any, Any, Any]]) -> None:
        if not _put_or_closed(self.out, self.stop, ("batch", batch)):
            raise _StreamClosed()


class TriangleEngine:
    """A prepared graph plus the machinery to run many configurations on it.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.graph.Graph` or any iterable of edges (pairs
        of hashable vertex labels).  Canonicalised exactly once, here.
    params:
        Default simulated machine parameters for runs that do not pass their
        own; falls back to :meth:`MachineParams.default`.
    """

    def __init__(
        self,
        graph: Graph | Iterable[tuple[Any, Any]],
        params: MachineParams | None = None,
    ) -> None:
        graph_obj = graph if isinstance(graph, Graph) else Graph.from_edge_list(graph)
        order = graph_obj.degree_order()
        self._order: DegreeOrder | None = order
        self._edges: list[tuple[int, int]] = order.edges
        self._num_vertices = graph_obj.num_vertices
        self.default_params = params
        #: Shared by every run via ``SubstrateContext.cache``: algorithms
        #: stash representations derived from the (immutable) canonical
        #: edges here, e.g. the vectorized backend's packed CSR.
        self._substrate_cache: dict[str, Any] = {}

    @classmethod
    def from_canonical_edges(
        cls,
        edges: Sequence[tuple[int, int]],
        params: MachineParams | None = None,
        validate: bool = True,
    ) -> "TriangleEngine":
        """Build an engine over an *already canonical* ranked edge list.

        Skips canonicalisation entirely (the experiment sweeps prepare their
        workloads once); triangles are reported in rank space, i.e. labels
        are the ranks themselves.
        """
        engine = cls.__new__(cls)
        edges = edges if isinstance(edges, list) else list(edges)
        if validate:
            check_canonical_edges(edges)
        engine._order = None
        engine._edges = edges
        engine._num_vertices = 0
        engine.default_params = params
        engine._substrate_cache = {}
        return engine

    @classmethod
    def from_edge_array(
        cls,
        edges: Any,
        params: MachineParams | None = None,
    ) -> "TriangleEngine":
        """Build an engine from a raw *integer* edge array, vectorized.

        The array-native ingestion path (:mod:`repro.fastpath.arrays`):
        orientation, deduplication and degree-ranking run as array
        operations instead of the dict-of-sets ``Graph`` build, which is
        the fast way in for large ``(E, 2)`` NumPy arrays or integer pair
        lists.  Semantics match the ``Graph`` constructor -- self-loops
        raise, duplicates merge -- but equal-degree ties rank by *label*
        rather than ``Graph.degree_order``'s repr-order, so rank-space
        triangles may differ between the two constructors while label-space
        triangle sets are identical.  Falls back to a pure-Python mirror
        with the same tie-breaking when NumPy is absent.
        """
        from repro.fastpath import arrays as fastpath_arrays

        if fastpath_arrays.HAVE_NUMPY:
            canonical = fastpath_arrays.canonicalize_edge_array(edges)
            ranked = canonical.edge_list()
            vertex_of = tuple(canonical.vertex_of.tolist())
        else:
            ranked, labels = fastpath_arrays.canonicalize_edges_python(edges)
            vertex_of = tuple(labels)
        engine = cls.__new__(cls)
        engine._order = DegreeOrder(
            vertex_of=vertex_of,
            rank_of={vertex: rank for rank, vertex in enumerate(vertex_of)},
            edges=ranked,
        )
        engine._edges = ranked
        engine._num_vertices = len(vertex_of)
        engine.default_params = params
        engine._substrate_cache = {}
        return engine

    # ------------------------------------------------------------------
    # prepared-graph introspection
    # ------------------------------------------------------------------
    @property
    def order(self) -> DegreeOrder | None:
        """The canonical degree order (``None`` for canonical-edge engines)."""
        return self._order

    @property
    def edges(self) -> list[tuple[int, int]]:
        """The canonical ranked edge list shared by every run."""
        return self._edges

    @property
    def num_edges(self) -> int:
        """Number of canonical edges."""
        return len(self._edges)

    @property
    def num_vertices(self) -> int:
        """Number of vertices (0 when built from canonical edges)."""
        return self._num_vertices

    # ------------------------------------------------------------------
    # running configurations
    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: str = "cache_aware",
        *,
        params: MachineParams | None = None,
        seed: int = 0,
        sink: TriangleSink | None = None,
        collect: bool = False,
        shards: int | None = None,
        jobs: int = 1,
        task_timeout: float | None = None,
        max_retries: int | None = None,
        pool: str | None = None,
        options: AlgorithmOptions | Mapping[str, Any] | None = None,
        **option_kwargs: Any,
    ) -> RunResult:
        """Run one configuration against the prepared graph.

        Each call simulates a fresh machine (fresh I/O counters), so results
        of successive runs are independent and comparable.  ``sink`` receives
        every triangle in original vertex labels as it is emitted;
        ``collect=True`` materialises the triangle list on the result.  With
        neither, only the count is computed and the per-triangle rank→label
        translation is skipped entirely (the fast path used by sweeps).
        ``options`` is the algorithm's typed options dataclass or a mapping
        validated against it; loose keyword arguments are accepted too.

        ``shards=c`` switches to the colour-sharded execution path
        (:mod:`repro.core.sharding`): the edge list decomposes by the
        paper's ``c``-colour vertex colouring into independent colour-triple
        subproblems, each executed on a fresh substrate -- across ``jobs``
        worker processes when ``jobs > 1`` -- and merged deterministically.
        Only ``machine``-kind algorithms accept it
        (:class:`~repro.exceptions.OptionsError` otherwise).  ``task_timeout``
        and ``max_retries`` tune the supervision of those shard workers (a
        dead or hung worker's shard is retried, bit-identically);
        ``pool="persistent"|"spawn"`` selects the worker-pool strategy
        (default persistent: the warm process-wide pool plus shared-memory
        edge segments, see :mod:`repro.poolexec`).  All of them require
        ``shards``.
        """
        spec = get_algorithm(algorithm)
        resolved = spec.resolve_options(options, option_kwargs)
        sharding = spec.resolve_sharding(shards, jobs, task_timeout, max_retries, pool)
        run_params = params or self.default_params or MachineParams.default()

        collector = _LabelCollector() if collect else None
        inner: TriangleSink | None
        if sink is not None and collector is not None:
            inner = _TeeSink(sink, collector)
        elif sink is not None:
            inner = sink
        elif collector is not None:
            inner = collector
        else:
            inner = None

        ranked_sink: Any
        if inner is None:
            ranked_sink = CountingSink()
        elif self._order is not None:
            ranked_sink = _TranslatingSink(inner, self._order)
        else:
            ranked_sink = _CountingForwarder(inner)

        if sharding is not None:
            return self._run_sharded(
                spec, resolved, run_params, seed, sharding, ranked_sink, inner, collector
            )

        stats = IOStats()
        started = time.perf_counter()
        context = SubstrateContext(
            params=run_params, stats=stats, seed=seed, cache=self._substrate_cache
        )
        machine: Machine | None = None
        vm: ObliviousVM | None = None
        if spec.substrate == "machine":
            machine = Machine(run_params, stats)
            context.machine = machine
            context.edge_file = edges_to_file(machine, self._edges)
        elif spec.substrate == "oblivious-vm":
            vm = ObliviousVM(run_params, stats)
            context.vm = vm
            context.edge_vector = edges_to_vector(vm, self._edges)
        else:  # in-memory
            context.edges = self._edges
        if inner is None and spec.counter is not None:
            # Registered count-only adapter: answer the count query without
            # emitting (or translating) a single triangle.  ``ranked_sink``
            # is the plain CountingSink on this branch; adopt the total so
            # the result assembly below stays uniform.  Counters may return
            # a bare count or a ``(count, report)`` pair.
            outcome = spec.counter(context, resolved)
            if isinstance(outcome, tuple):
                ranked_sink.count, report = outcome
            else:
                ranked_sink.count, report = outcome, None
        else:
            report = spec.runner(context, ranked_sink, resolved)
        disk_peak = 0
        phases: dict[str, int] | None = None
        if machine is not None:
            disk_peak = machine.disk.peak_words
            phases = machine.stats.phases
        elif vm is not None:
            disk_peak = vm.peak_words
        elapsed = time.perf_counter() - started

        return RunResult(
            algorithm=algorithm,
            params=run_params,
            num_edges=len(self._edges),
            triangle_count=ranked_sink.count,
            io=stats.snapshot(),
            disk_peak_words=disk_peak,
            wall_time_seconds=elapsed,
            num_vertices=self._num_vertices,
            triangles=collector.triangles if collector is not None else None,
            report=report,
            phases=phases,
            order=self._order,
        )

    def _run_sharded(
        self,
        spec: Any,
        resolved: AlgorithmOptions,
        run_params: MachineParams,
        seed: int,
        sharding: Any,
        ranked_sink: Any,
        inner: TriangleSink | None,
        collector: "_LabelCollector | None",
    ) -> RunResult:
        """Execute one configuration through the colour-sharded path."""
        from repro.core.sharding import run_sharded

        started = time.perf_counter()
        outcome = run_sharded(
            self._edges,
            spec,
            resolved,
            run_params,
            seed,
            sharding,
            collect=inner is not None,
            cache=self._substrate_cache,
        )
        if inner is not None:
            # Workers ship ranked triangles; replay them through the usual
            # translating sink so user sinks observe the same label-space
            # stream (in deterministic triple order) as a serial run.
            ranked_sink.emit_many(outcome.triangles or [])
            triangle_count = ranked_sink.count
        else:
            triangle_count = outcome.triangle_count
        elapsed = time.perf_counter() - started

        return RunResult(
            algorithm=spec.name,
            params=run_params,
            num_edges=len(self._edges),
            triangle_count=triangle_count,
            io=outcome.stats.snapshot(),
            disk_peak_words=outcome.disk_peak_words,
            wall_time_seconds=elapsed,
            num_vertices=self._num_vertices,
            triangles=collector.triangles if collector is not None else None,
            report=outcome.report,
            phases=outcome.stats.phases,
            order=self._order,
            sharding=outcome.sharding,
        )

    def count(
        self,
        algorithm: str = "cache_aware",
        *,
        params: MachineParams | None = None,
        seed: int = 0,
        shards: int | None = None,
        jobs: int = 1,
        task_timeout: float | None = None,
        max_retries: int | None = None,
        pool: str | None = None,
        options: AlgorithmOptions | Mapping[str, Any] | None = None,
        **option_kwargs: Any,
    ) -> int:
        """Number of triangles (count-only fast path; no translation)."""
        result = self.run(
            algorithm,
            params=params,
            seed=seed,
            collect=False,
            shards=shards,
            jobs=jobs,
            task_timeout=task_timeout,
            max_retries=max_retries,
            pool=pool,
            options=options,
            **option_kwargs,
        )
        return result.triangle_count

    def stream(
        self,
        algorithm: str = "cache_aware",
        *,
        params: MachineParams | None = None,
        seed: int = 0,
        batch_size: int = 1024,
        options: AlgorithmOptions | Mapping[str, Any] | None = None,
        **option_kwargs: Any,
    ) -> Iterator[list[tuple[Any, Any, Any]]]:
        """Iterate over the run's triangles as label-triangle batches.

        The algorithm runs on a worker thread and pushes batches of at most
        ``batch_size`` triangles across a bounded queue; the consumer holds
        one batch at a time.  Abandoning the iterator early (``break``,
        ``close()``) tears the worker down.  Exceptions raised by the run
        surface at the consuming side: library errors (:class:`ReproError`,
        e.g. a bad option) re-raise as-is, anything else is wrapped in a
        :class:`~repro.exceptions.StreamWorkerError` with the original as
        ``__cause__`` -- a worker failure is a typed error, never a silently
        truncated stream.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        out: "queue_module.Queue[tuple[str, Any]]" = queue_module.Queue(maxsize=4)
        stop = threading.Event()
        batching = _StreamBatchSink(out, batch_size, stop)

        def work() -> None:
            try:
                self.run(
                    algorithm,
                    params=params,
                    seed=seed,
                    sink=batching,
                    collect=False,
                    options=options,
                    **option_kwargs,
                )
                batching.flush()
                # Stop-aware like every other queue write: a consumer that
                # abandoned the stream with the queue full must not leave
                # the worker blocked on delivering "done".
                _put_or_closed(out, stop, ("done", None))
            except _StreamClosed:
                pass
            except BaseException as error:  # propagated to the consumer
                # Retry past a momentarily-full queue (a slow consumer still
                # draining batches); give up only once the consumer is gone.
                _put_or_closed(out, stop, ("error", error))

        worker = threading.Thread(target=work, name="triangle-stream", daemon=True)
        worker.start()
        try:
            while True:
                kind, payload = out.get()
                if kind == "batch":
                    yield payload
                elif kind == "done":
                    return
                elif isinstance(payload, ReproError) or not isinstance(payload, Exception):
                    # Library errors keep their type; BaseExceptions
                    # (KeyboardInterrupt) must propagate untouched.
                    raise payload
                else:
                    raise StreamWorkerError(
                        f"stream worker for algorithm {algorithm!r} failed: "
                        f"{type(payload).__name__}: {payload}"
                    ) from payload
        finally:
            stop.set()
            # Termination proof for this drain loop: every worker-side queue
            # write is a stop-aware `_put_or_closed`, so once `stop` is set
            # the worker can block on the queue for at most one 0.1s poll
            # before unwinding via _StreamClosed -- it cannot re-block after
            # the drain below frees a slot.  Draining *and* joining on every
            # iteration (rather than joining only when the queue happens to
            # be empty) closes the old race where a worker stuck in `put`
            # refilled the queue between `get_nowait` and the join, keeping
            # the loop spinning without ever waiting on the thread.
            while worker.is_alive():
                try:
                    while True:
                        out.get_nowait()
                except queue_module.Empty:
                    pass
                worker.join(timeout=0.05)

    # ------------------------------------------------------------------
    # resource lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release run-to-run substrate state held by this engine.

        Sharded runs park their published shared-memory segments in the
        substrate cache so repeated runs re-transfer nothing, and the
        out-of-core backend parks its spill-directory store there for the
        same reason; closing the engine releases every closeable cache
        entry (idempotently -- segments unlink, spill directories are
        removed) and drops the rest.  Plain derived representations (e.g.
        the vectorized CSR) are dropped too; the engine stays usable -- the
        next run simply re-derives what it needs.  Also safe to skip
        entirely: segments and spill directories are reclaimed at
        interpreter exit regardless.
        """
        for key, value in list(self._substrate_cache.items()):
            closer = getattr(value, "close", None)
            if callable(closer):
                closer()
            del self._substrate_cache[key]

    def __enter__(self) -> "TriangleEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def run_many(
        self,
        configurations: Iterable[tuple[str, Mapping[str, Any]]],
    ) -> list[RunResult]:
        """Run several ``(algorithm, run_kwargs)`` configurations in order."""
        return [self.run(algorithm, **dict(kwargs)) for algorithm, kwargs in configurations]

    def to_labels(self, triangle: tuple[int, int, int]) -> tuple[Any, Any, Any]:
        """Translate a ranked triangle to original labels (identity if none)."""
        if self._order is None:
            return triangle
        return self._order.to_labels(triangle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TriangleEngine(E={self.num_edges}, "
            f"canonicalised={'yes' if self._order is not None else 'pre'})"
        )
