"""The unified result type of every triangle-enumeration run.

Before the engine refactor the repo had two near-duplicate result classes:
``repro.core.api.EnumerationResult`` (label-level, carried the triangle list
and the :class:`~repro.graph.graph.DegreeOrder`) and
``repro.experiments.runner.RunResult`` (rank-level, carried flat counters and
the per-phase I/O attribution).  :class:`RunResult` below is the union of the
two: every entry path -- :class:`repro.core.engine.TriangleEngine`, the
``enumerate_triangles`` wrapper, ``run_on_edges`` sweeps, the join layer --
returns this one type.  ``EnumerationResult`` is kept as a back-compatible
alias.

Field conventions:

* ``triangles`` is the collected list of label triangles, or ``None`` when
  the run did not collect (count-only sweeps); ``triangle_count`` is always
  populated.
* ``reads``/``writes``/``operations`` are views over the immutable
  :class:`~repro.extmem.stats.IOSnapshot` in ``io``.
* ``phases`` is the per-phase I/O attribution of machine-backed runs (the
  explicit cache-aware machine records phases; the oblivious VM and the
  in-memory oracle do not, so it is ``None`` there).
* ``order`` is the canonical degree order used for the run, or ``None``
  when the engine was built directly from already-canonical ranked edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.model import MachineParams
from repro.extmem.stats import IOSnapshot
from repro.graph.graph import DegreeOrder


@dataclass
class RunResult:
    """Everything a caller (or an experiment) needs to know about one run."""

    algorithm: str
    params: MachineParams
    num_edges: int
    triangle_count: int
    io: IOSnapshot
    disk_peak_words: int
    wall_time_seconds: float
    num_vertices: int = 0
    triangles: list[tuple[Any, Any, Any]] | None = None
    report: Any = None
    phases: dict[str, int] | None = None
    order: DegreeOrder | None = None
    #: Sharded-execution metadata (``repro.core.sharding.ShardingStats``) for
    #: runs with ``shards=c``; ``None`` for serial runs.
    sharding: Any = None

    @property
    def reads(self) -> int:
        """Simulated block reads of the run."""
        return self.io.reads

    @property
    def writes(self) -> int:
        """Simulated block writes of the run."""
        return self.io.writes

    @property
    def operations(self) -> int:
        """Elementary RAM operations charged by the run (work, not I/O)."""
        return self.io.operations

    @property
    def total_ios(self) -> int:
        """Total simulated block transfers of the run."""
        return self.io.total


#: Back-compatible alias: the old label-level result class of ``core.api``.
EnumerationResult = RunResult
