"""Section 2: the randomized cache-aware triangle-enumeration algorithm.

The algorithm (Theorem 4) runs in three steps:

1. **High-degree phase.**  Vertices with degree above ``sqrt(E * M)`` form
   ``V_h`` (fewer than ``sqrt(E/M)`` of them).  For each, all triangles
   containing it are enumerated with the Lemma 1 subroutine, after which its
   edges are conceptually removed; the remaining edges form ``E_l``.
2. **Colouring.**  A 4-wise independent colouring ``xi`` with
   ``c = sqrt(E/M)`` colours partitions ``E_l`` into ``c^2`` classes
   ``E_{tau1,tau2}`` by the colours of the (degree-ordered) endpoints.
3. **Triple enumeration.**  For every colour triple ``(tau1, tau2, tau3)``
   the Lemma 2 subroutine is invoked with pivot set ``E_{tau2,tau3}`` and
   edge set ``E_{tau1,tau2} ∪ E_{tau1,tau3} ∪ E_{tau2,tau3}``, keeping only
   triangles whose cone vertex has colour ``tau1``.

Expected I/O complexity ``O(E^{3/2} / (sqrt(M) B))`` by Lemma 3
(``E[X_xi] <= E*M``).  The module also exports the building blocks
(:func:`high_degree_phase`, :func:`partition_by_coloring`,
:func:`enumerate_colored_triples`) reused by the deterministic variant in
:mod:`repro.core.derandomized`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.bounds import colour_count, high_degree_threshold
from repro.core.emit import TriangleSink
from repro.core.lemma1 import triangles_through_vertex
from repro.core.lemma2 import triangles_with_pivot_in
from repro.extmem.disk import ExtFile, FileSlice
from repro.extmem.machine import Machine
from repro.hashing.coloring import Coloring, ConstantColoring, RandomColoring
from repro.hashing.coloring import colors_of as bulk_colors

RankedEdge = tuple[int, int]
ColorPair = tuple[int, int]


@dataclass
class CacheAwareReport:
    """Diagnostics returned by the cache-aware algorithms.

    The fields feed the experiments: ``x_xi`` is the colour-collision
    statistic of Lemma 3, ``partition_sizes`` the colour-class sizes, and
    ``triangles_emitted`` the total output count.
    """

    num_edges: int
    num_colors: int
    high_degree_vertices: list[int] = field(default_factory=list)
    high_degree_triangles: int = 0
    low_degree_triangles: int = 0
    partition_sizes: dict[ColorPair, int] = field(default_factory=dict)

    @property
    def triangles_emitted(self) -> int:
        """Total number of triangles emitted by the run."""
        return self.high_degree_triangles + self.low_degree_triangles

    @property
    def x_xi(self) -> int:
        """The collision statistic ``X_xi = sum_{tau1,tau2} C(|E_{tau1,tau2}|, 2)``."""
        return sum(size * (size - 1) // 2 for size in self.partition_sizes.values())


# ----------------------------------------------------------------------
# step 1: high-degree phase
# ----------------------------------------------------------------------
def compute_degrees(machine: Machine, edge_file: ExtFile) -> ExtFile:
    """External degree computation: a sorted file of ``(vertex, degree)`` records.

    Costs ``O(sort(E))`` I/Os: write the 2E endpoints, sort them, and count
    runs in one block-granular scan.
    """
    with machine.writer() as endpoints:
        for block in machine.scan_blocks(edge_file):
            machine.stats.charge_operations(len(block))
            endpoints.extend(endpoint for edge in block for endpoint in edge)
    sorted_endpoints = machine.sort(endpoints.file)
    endpoints.file.delete()

    with machine.writer() as degrees:
        current: int | None = None
        count = 0
        for block in machine.scan_blocks(sorted_endpoints):
            machine.stats.charge_operations(len(block))
            for vertex, group in itertools.groupby(block):
                group_size = sum(1 for _ in group)
                if vertex == current:
                    count += group_size
                else:
                    if current is not None:
                        degrees.append((current, count))
                    current = vertex
                    count = group_size
        if current is not None:
            degrees.append((current, count))
    sorted_endpoints.delete()
    return degrees.file


def find_high_degree_vertices(
    machine: Machine, edge_file: ExtFile, threshold: float
) -> list[int]:
    """Vertices with degree strictly above ``threshold`` (ascending rank order)."""
    degree_file = compute_degrees(machine, edge_file)
    high: list[int] = []
    for block in machine.scan_blocks(degree_file):
        machine.stats.charge_operations(len(block))
        high.extend(vertex for vertex, degree in block if degree > threshold)
    degree_file.delete()
    return high


def high_degree_phase(
    machine: Machine,
    edge_file: ExtFile,
    sink: TriangleSink,
    threshold: float,
    vertex_executor: "VertexExecutor | None" = None,
) -> tuple[list[int], ExtFile, int]:
    """Enumerate triangles with a high-degree vertex and build ``E_l``.

    Returns ``(high_degree_vertices, low_degree_edge_file, triangles_emitted)``.
    Processing the high-degree vertices one at a time while excluding the
    previously processed ones guarantees that a triangle containing two or
    three high-degree vertices is emitted exactly once.  ``vertex_executor``
    optionally replaces the serial per-vertex loop (the sharded engine
    distributes the independent per-vertex Lemma 1 subproblems through it);
    it must deliver exactly the triangles and charge exactly the I/Os the
    serial loop would.
    """
    high_vertices = find_high_degree_vertices(machine, edge_file, threshold)
    emitted = 0
    if high_vertices and vertex_executor is not None:
        emitted = vertex_executor(machine, edge_file, sink, high_vertices)
    else:
        processed: set[int] = set()
        for vertex in high_vertices:
            emitted += triangles_through_vertex(
                machine, [edge_file], vertex, sink, excluded=frozenset(processed)
            )
            processed.add(vertex)

    if not high_vertices:
        # E_l is simply the input; copy it so callers can delete it freely
        # without touching the caller-owned input file.  The copy inspects
        # every edge, so it charges operations like the filtering branch.
        with machine.writer("low-degree-edges") as out:
            for block in machine.scan_blocks(edge_file):
                machine.stats.charge_operations(len(block))
                out.extend(block)
        return high_vertices, out.file, 0

    high_set = set(high_vertices)
    with machine.writer("low-degree-edges") as out:
        for block in machine.scan_blocks(edge_file):
            machine.stats.charge_operations(len(block))
            out.extend(
                edge for edge in block if edge[0] not in high_set and edge[1] not in high_set
            )
    return high_vertices, out.file, emitted


# ----------------------------------------------------------------------
# step 2: colour partitioning
# ----------------------------------------------------------------------
def partition_by_coloring(
    machine: Machine,
    low_degree_edges: ExtFile,
    coloring: Coloring,
) -> tuple[ExtFile, dict[ColorPair, FileSlice], dict[ColorPair, int]]:
    """Sort ``E_l`` by endpoint-colour pair and expose each class as a slice.

    Returns the sorted file (owned by the caller), a mapping from colour pair
    to :class:`repro.extmem.disk.FileSlice`, and the class sizes.  Inside a
    class, edges remain sorted lexicographically, which is what Lemma 2
    requires of its adjacency sources.
    """

    def sort_key(edge: RankedEdge) -> tuple[int, int, int, int]:
        u, v = edge
        return (coloring.color_of(u), coloring.color_of(v), u, v)

    def sort_key_many(edges: list[RankedEdge]) -> list[tuple[int, int, int, int]]:
        # Bulk path: two colour lookups per chunk instead of two per edge.
        colors_u = bulk_colors(coloring, [edge[0] for edge in edges])
        colors_v = bulk_colors(coloring, [edge[1] for edge in edges])
        return [
            (cu, cv, edge[0], edge[1])
            for cu, cv, edge in zip(colors_u, colors_v, edges)
        ]

    partitioned = machine.sort(
        low_degree_edges, key=sort_key, name=None, key_many=sort_key_many
    )
    slices: dict[ColorPair, FileSlice] = {}
    sizes: dict[ColorPair, int] = {}
    current: ColorPair | None = None
    start = 0
    index = 0
    for block in machine.scan_blocks(partitioned):
        machine.stats.charge_operations(len(block))
        colors_u = bulk_colors(coloring, [edge[0] for edge in block])
        colors_v = bulk_colors(coloring, [edge[1] for edge in block])
        for pair, group in itertools.groupby(zip(colors_u, colors_v)):
            group_size = sum(1 for _ in group)
            if pair != current:
                if current is not None:
                    slices[current] = partitioned.slice(start, index)
                    sizes[current] = index - start
                current = pair
                start = index
            index += group_size
    if current is not None:
        slices[current] = partitioned.slice(start, index)
        sizes[current] = index - start
    return partitioned, slices, sizes


# ----------------------------------------------------------------------
# step 3: triple enumeration
# ----------------------------------------------------------------------
ColorTriple = tuple[int, int, int]


def iter_colour_triples(
    slices: dict[ColorPair, FileSlice],
    num_colors: int,
) -> "Iterator[tuple[ColorTriple, FileSlice, list[FileSlice], list[FileSlice]]]":
    """Yield the independent subproblems of the colour-triple enumeration.

    For every triple ``(tau1, tau2, tau3)`` with a non-empty pivot class
    ``E_{tau2,tau3}`` yields ``(triple, pivot, adjacency, spectators)``:
    the pivot slice, the adjacency classes whose cone colour is ``tau1``,
    and the spectator classes (scanned and charged by Lemma 2, never
    merged).  This is the shared iteration of the serial loop below and the
    sharded executor in :mod:`repro.core.sharding`; the order is the
    deterministic lexicographic triple order.
    """
    for tau1 in range(num_colors):
        for tau2 in range(num_colors):
            for tau3 in range(num_colors):
                pivot = slices.get((tau2, tau3))
                if pivot is None or len(pivot) == 0:
                    continue
                # A class ``(a, b)`` holds edges whose cone endpoint has
                # colour ``a`` (the partition sorts by the first endpoint's
                # colour), so the Lemma 2 cone filter is constant per class:
                # classes with ``a == tau1`` contribute all their groups and
                # need no per-vertex filter, the others are pure spectators
                # that Lemma 2 scans and charges without merging.
                adjacency_keys = {(tau1, tau2), (tau1, tau3), (tau2, tau3)}
                adjacency: list[FileSlice] = []
                spectators: list[FileSlice] = []
                for key in sorted(adjacency_keys):
                    source = slices.get(key)
                    if source is None or len(source) == 0:
                        continue
                    if key[0] == tau1:
                        adjacency.append(source)
                    else:
                        spectators.append(source)
                yield (tau1, tau2, tau3), pivot, adjacency, spectators


def enumerate_colored_triples(
    machine: Machine,
    slices: dict[ColorPair, FileSlice],
    coloring: Coloring,
    sink: TriangleSink,
) -> int:
    """Run Lemma 2 for every colour triple ``(tau1, tau2, tau3)``.

    The pivot set is ``E_{tau2,tau3}``; the adjacency sources are the up-to
    three distinct classes touching the triple; only triangles whose cone
    vertex has colour ``tau1`` are emitted, which makes every triangle of
    ``E_l`` appear in exactly one triple.
    """
    emitted = 0
    for _triple, pivot, adjacency, spectators in iter_colour_triples(slices, coloring.num_colors):
        emitted += triangles_with_pivot_in(
            machine,
            pivot,
            adjacency,
            sink,
            spectator_sources=spectators,
        )
    return emitted


# ----------------------------------------------------------------------
# the full algorithm
# ----------------------------------------------------------------------
#: Drop-in replacement for the serial colour-triple loop; same signature and
#: return value as :func:`enumerate_colored_triples`.
TriplesExecutor = Callable[[Machine, dict[ColorPair, FileSlice], Coloring, TriangleSink], int]

#: Drop-in replacement for the serial per-vertex Lemma 1 loop of the
#: high-degree phase: ``(machine, edge_file, sink, high_vertices) -> emitted``.
VertexExecutor = Callable[[Machine, ExtFile, TriangleSink, list[int]], int]


def cache_aware_randomized(
    machine: Machine,
    edge_file: ExtFile,
    sink: TriangleSink,
    seed: int | None = 0,
    num_colors: int | None = None,
    triples_executor: TriplesExecutor | None = None,
    high_degree_executor: "VertexExecutor | None" = None,
) -> CacheAwareReport:
    """Run the randomized cache-aware algorithm of Section 2.

    Parameters
    ----------
    edge_file:
        The canonical (degree-ordered, lexicographically sorted) edge list,
        already resident on the machine's disk.
    seed:
        Seed for the 4-wise independent colouring; fix it for reproducible
        runs.
    num_colors:
        Override for the number of colours ``c``; defaults to the paper's
        ``sqrt(E / M)``.
    triples_executor:
        Optional replacement for the serial triple loop (the sharded engine
        distributes the independent colour-triple subproblems over worker
        processes through this hook); it must deliver exactly the triangles
        and charge exactly the I/Os :func:`enumerate_colored_triples` would.
    high_degree_executor:
        Optional replacement for the serial per-vertex loop of the
        high-degree phase, under the same bit-identical contract.

    Returns a :class:`CacheAwareReport`; triangles are delivered to ``sink``.
    """
    num_edges = len(edge_file)
    report = CacheAwareReport(num_edges=num_edges, num_colors=1)
    if num_edges == 0:
        return report

    threshold = high_degree_threshold(num_edges, machine.memory_size)
    with machine.phase("high-degree"):
        high_vertices, low_edges, high_triangles = high_degree_phase(
            machine, edge_file, sink, threshold, vertex_executor=high_degree_executor
        )
    report.high_degree_vertices = high_vertices
    report.high_degree_triangles = high_triangles

    c = num_colors if num_colors is not None else colour_count(num_edges, machine.memory_size)
    c = max(1, c)
    report.num_colors = c
    coloring: Coloring = ConstantColoring() if c == 1 else RandomColoring(c, seed=seed)

    with machine.phase("partition"):
        partitioned, slices, sizes = partition_by_coloring(machine, low_edges, coloring)
    report.partition_sizes = sizes
    low_edges.delete()

    run_triples = triples_executor if triples_executor is not None else enumerate_colored_triples
    with machine.phase("triples"):
        report.low_degree_triangles = run_triples(machine, slices, coloring, sink)
    partitioned.delete()
    return report
