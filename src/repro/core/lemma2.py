"""Paper Lemma 2 (Hu, Tao and Chung): triangles with a pivot edge in ``E'``.

    "The set of triangles in an edge set E with a pivot edge in E' ⊆ E can
    be enumerated in O(E/B + E'E/(MB)) I/Os."

The algorithm loads ``alpha * M`` pivot edges at a time into internal memory
and, for each memory-resident batch, streams the (lexicographically sorted)
edge set grouped by smaller endpoint: for a group of edges ``(v, u)`` it
collects ``Gamma_v``, the forward neighbours of ``v`` that touch the batch,
and reports every batch edge ``{u, w}`` with both endpoints in ``Gamma_v`` as
the triangle ``{v, u, w}``.

This subroutine is both:

* the inner loop of the cache-aware algorithms (Section 2 step 3 /
  Section 4), where ``E'`` is one colour-class partition and the edge set is
  the union of three partitions, and
* the whole of the Hu-Tao-Chung baseline (``E' = E``), see
  :mod:`repro.core.baselines.hu_tao_chung`.
"""

from __future__ import annotations

from itertools import groupby
from operator import itemgetter
from typing import Callable, Iterator, Sequence

from repro.core.emit import Triangle, TriangleSink, emit_all, sorted_triangle
from repro.extmem.disk import Readable
from repro.extmem.machine import Machine

RankedEdge = tuple[int, int]
TriangleFilter = Callable[[Triangle], bool]

#: Fraction of internal memory used for the pivot-edge batch.  The batch,
#: its endpoint set and its adjacency index together are leased as
#: ``_MEMORY_MULTIPLIER`` times the batch size, so the default keeps the
#: total comfortably under ``M``.
DEFAULT_MEMORY_FRACTION = 1.0 / 4.0
_MEMORY_MULTIPLIER = 3
#: Triangles accumulated before a bulk ``emit_all`` delivery; purely a
#: constant-factor knob (the enumeration still never writes triangles to
#: external memory).
_EMIT_BATCH = 4096


def triangles_with_pivot_in(
    machine: Machine,
    pivot_source: Readable,
    adjacency_sources: Sequence[Readable],
    sink: TriangleSink,
    cone_filter: Callable[[int], bool] | None = None,
    triangle_filter: TriangleFilter | None = None,
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    spectator_sources: Sequence[Readable] = (),
) -> int:
    """Emit every triangle whose pivot edge lies in ``pivot_source``.

    Parameters
    ----------
    pivot_source:
        The pivot-edge set ``E'`` (any order).
    adjacency_sources:
        Files/slices that together form the edge set ``E``; **each must be
        sorted lexicographically** so that their merge is grouped by smaller
        endpoint.  Pass each distinct source once.
    cone_filter:
        Optional predicate on the cone vertex; groups whose smaller endpoint
        fails it are skipped (used by the colour-class iteration to keep
        only cone vertices of colour ``tau_1``).
    triangle_filter:
        Optional predicate on the sorted triangle applied just before
        emission.
    spectator_sources:
        Parts of the edge set whose cone vertices are known *a priori* to
        fail ``cone_filter`` (e.g. a colour class whose first colour is not
        ``tau_1``).  They are scanned and charged exactly like the other
        adjacency sources on every batch -- the I/O model sees the same
        stream -- but they are kept out of the merge since none of their
        groups can contribute.

    Returns the number of triangles emitted.
    """
    if not 0 < memory_fraction <= 1.0 / float(_MEMORY_MULTIPLIER):
        raise ValueError(
            f"memory fraction must lie in (0, {1.0 / _MEMORY_MULTIPLIER:.3f}], got {memory_fraction}"
        )
    total_pivots = len(pivot_source)
    if total_pivots == 0:
        return 0
    batch_size = max(1, int(memory_fraction * machine.memory_size))
    emitted = 0
    position = 0
    while position < total_pivots:
        count = min(batch_size, total_pivots - position)
        with machine.lease(_MEMORY_MULTIPLIER * count, "lemma2 pivot batch"):
            batch = machine.load(pivot_source, position, count)
            for spectator in spectator_sources:
                for block in machine.scan_blocks(spectator):
                    machine.stats.charge_operations(len(block))
            emitted += _process_batch(
                machine,
                batch,
                adjacency_sources,
                sink,
                cone_filter,
                triangle_filter,
            )
        position += count
    return emitted


def _process_batch(
    machine: Machine,
    batch: list[RankedEdge],
    adjacency_sources: Sequence[Readable],
    sink: TriangleSink,
    cone_filter: Callable[[int], bool] | None,
    triangle_filter: TriangleFilter | None,
) -> int:
    """Stream the edge set once against one memory-resident pivot batch.

    The merged adjacency stream is consumed one cone-vertex *group* at a
    time: the forward neighbourhood of the group's vertex is collected with
    a single set-membership comprehension and the work is charged per group,
    not per edge (same totals, far fewer counter calls).
    """
    batch_endpoints: set[int] = set()
    batch_adjacency: dict[int, list[int]] = {}
    for u, w in batch:
        batch_endpoints.add(u)
        batch_endpoints.add(w)
        batch_adjacency.setdefault(u, []).append(w)
    machine.stats.charge_operations(len(batch))

    emitted = 0
    operations = 0
    triangles: list[Triangle] = []
    get_closing = batch_adjacency.get

    def flush() -> int:
        nonlocal triangles
        kept = (
            triangles
            if triangle_filter is None
            else [t for t in triangles if triangle_filter(t)]
        )
        emit_all(sink, kept)
        triangles = []
        return len(kept)

    for v, gamma in _merged_candidate_groups(machine, adjacency_sources, batch_endpoints):
        if cone_filter is not None and not cone_filter(v):
            continue
        if len(gamma) == 1:
            # A single batch-touching neighbour cannot close a triangle, but
            # probing its closing list is still charged work.
            closing = get_closing(gamma[0])
            if closing:
                operations += len(closing)
            continue
        gamma_set = set(gamma)
        for u in gamma:
            closing = get_closing(u)
            if not closing:
                continue
            operations += len(closing)
            triangles.extend(
                sorted_triangle(v, u, w) for w in closing if w in gamma_set
            )
        if len(triangles) >= _EMIT_BATCH:
            emitted += flush()
    machine.stats.charge_operations(operations)
    emitted += flush()
    return emitted


def _candidate_groups(
    machine: Machine, readable: Readable, batch_endpoints: set[int]
) -> Iterator[tuple[int, list[int]]]:
    """Yield ``(cone vertex, batch-restricted neighbours)`` for one source.

    The source must be sorted lexicographically.  Each block is charged as
    one bulk work unit (one operation per record, as before) and immediately
    narrowed to the records whose forward neighbour touches the pivot batch
    -- a single set-membership comprehension; only the survivors are grouped
    by cone vertex, with groups spanning block boundaries stitched back
    together.  Groups whose ``Gamma_v`` is empty are never materialised.
    """
    charge_operations = machine.stats.charge_operations
    current_vertex: int | None = None
    current_gamma: list[int] = []
    for block in machine.scan_blocks(readable):
        charge_operations(len(block))
        candidates = [edge for edge in block if edge[1] in batch_endpoints]
        for v, group in groupby(candidates, key=itemgetter(0)):
            gamma = [u for _, u in group]
            if v == current_vertex:
                current_gamma.extend(gamma)
            else:
                if current_gamma:
                    yield current_vertex, current_gamma
                current_vertex = v
                current_gamma = gamma
    if current_gamma:
        yield current_vertex, current_gamma


def _merged_candidate_groups(
    machine: Machine, sources: Sequence[Readable], batch_endpoints: set[int]
) -> Iterator[tuple[int, list[int]]]:
    """Merge the per-source candidate-group streams by cone vertex.

    All call sites pass a constant number of sources (at most three colour
    classes), so the merge picks the minimum head vertex with a couple of
    comparisons per group instead of running a record-level heap.
    Neighbours of a vertex appearing in several sources are concatenated in
    source order; group contents are order-insensitive downstream (set
    membership).
    """
    if len(sources) == 1:
        yield from _candidate_groups(machine, sources[0], batch_endpoints)
        return
    streams = [
        _candidate_groups(machine, source, batch_endpoints) for source in sources
    ]
    if len(streams) == 2:
        # The colour-triple iteration never has more than two contributing
        # classes, so this branch is the hot one.
        first, second = streams
        a = next(first, None)
        b = next(second, None)
        while a is not None and b is not None:
            if a[0] < b[0]:
                yield a
                a = next(first, None)
            elif b[0] < a[0]:
                yield b
                b = next(second, None)
            else:
                yield a[0], a[1] + b[1]
                a = next(first, None)
                b = next(second, None)
        while a is not None:
            yield a
            a = next(first, None)
        while b is not None:
            yield b
            b = next(second, None)
        return
    heads = [next(stream, None) for stream in streams]
    while True:
        vertex: int | None = None
        for head in heads:
            if head is not None and (vertex is None or head[0] < vertex):
                vertex = head[0]
        if vertex is None:
            return
        gamma: list[int] = []
        for index, head in enumerate(heads):
            if head is not None and head[0] == vertex:
                gamma.extend(head[1])
                heads[index] = next(streams[index], None)
        yield vertex, gamma


