"""Paper Lemma 2 (Hu, Tao and Chung): triangles with a pivot edge in ``E'``.

    "The set of triangles in an edge set E with a pivot edge in E' ⊆ E can
    be enumerated in O(E/B + E'E/(MB)) I/Os."

The algorithm loads ``alpha * M`` pivot edges at a time into internal memory
and, for each memory-resident batch, streams the (lexicographically sorted)
edge set grouped by smaller endpoint: for a group of edges ``(v, u)`` it
collects ``Gamma_v``, the forward neighbours of ``v`` that touch the batch,
and reports every batch edge ``{u, w}`` with both endpoints in ``Gamma_v`` as
the triangle ``{v, u, w}``.

This subroutine is both:

* the inner loop of the cache-aware algorithms (Section 2 step 3 /
  Section 4), where ``E'`` is one colour-class partition and the edge set is
  the union of three partitions, and
* the whole of the Hu-Tao-Chung baseline (``E' = E``), see
  :mod:`repro.core.baselines.hu_tao_chung`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.emit import Triangle, TriangleSink, sorted_triangle
from repro.extmem.disk import Readable
from repro.extmem.machine import Machine
from repro.extmem.sorting import merge_sorted_scan

RankedEdge = tuple[int, int]
TriangleFilter = Callable[[Triangle], bool]

#: Fraction of internal memory used for the pivot-edge batch.  The batch,
#: its endpoint set and its adjacency index together are leased as
#: ``_MEMORY_MULTIPLIER`` times the batch size, so the default keeps the
#: total comfortably under ``M``.
DEFAULT_MEMORY_FRACTION = 1.0 / 4.0
_MEMORY_MULTIPLIER = 3


def triangles_with_pivot_in(
    machine: Machine,
    pivot_source: Readable,
    adjacency_sources: Sequence[Readable],
    sink: TriangleSink,
    cone_filter: Callable[[int], bool] | None = None,
    triangle_filter: TriangleFilter | None = None,
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
) -> int:
    """Emit every triangle whose pivot edge lies in ``pivot_source``.

    Parameters
    ----------
    pivot_source:
        The pivot-edge set ``E'`` (any order).
    adjacency_sources:
        Files/slices that together form the edge set ``E``; **each must be
        sorted lexicographically** so that their merge is grouped by smaller
        endpoint.  Pass each distinct source once.
    cone_filter:
        Optional predicate on the cone vertex; groups whose smaller endpoint
        fails it are skipped (used by the colour-class iteration to keep
        only cone vertices of colour ``tau_1``).
    triangle_filter:
        Optional predicate on the sorted triangle applied just before
        emission.

    Returns the number of triangles emitted.
    """
    if not 0 < memory_fraction <= 1.0 / float(_MEMORY_MULTIPLIER):
        raise ValueError(
            f"memory fraction must lie in (0, {1.0 / _MEMORY_MULTIPLIER:.3f}], got {memory_fraction}"
        )
    total_pivots = len(pivot_source)
    if total_pivots == 0:
        return 0
    batch_size = max(1, int(memory_fraction * machine.memory_size))
    emitted = 0
    position = 0
    while position < total_pivots:
        count = min(batch_size, total_pivots - position)
        with machine.lease(_MEMORY_MULTIPLIER * count, "lemma2 pivot batch"):
            batch = machine.load(pivot_source, position, count)
            emitted += _process_batch(
                machine,
                batch,
                adjacency_sources,
                sink,
                cone_filter,
                triangle_filter,
            )
        position += count
    return emitted


def _process_batch(
    machine: Machine,
    batch: list[RankedEdge],
    adjacency_sources: Sequence[Readable],
    sink: TriangleSink,
    cone_filter: Callable[[int], bool] | None,
    triangle_filter: TriangleFilter | None,
) -> int:
    """Stream the edge set once against one memory-resident pivot batch."""
    batch_endpoints: set[int] = set()
    batch_adjacency: dict[int, list[int]] = {}
    for u, w in batch:
        batch_endpoints.add(u)
        batch_endpoints.add(w)
        batch_adjacency.setdefault(u, []).append(w)
    machine.stats.charge_operations(len(batch))

    emitted = 0
    current_vertex: int | None = None
    gamma: list[int] = []

    def close_group() -> int:
        if current_vertex is None or not gamma:
            return 0
        return _emit_group(
            machine,
            current_vertex,
            gamma,
            batch_adjacency,
            sink,
            triangle_filter,
        )

    for v, u in merge_sorted_scan(machine, adjacency_sources):
        machine.stats.charge_operations(1)
        if v != current_vertex:
            emitted += close_group()
            current_vertex = v
            gamma = []
        if cone_filter is not None and not cone_filter(v):
            continue
        if u in batch_endpoints:
            gamma.append(u)
    emitted += close_group()
    return emitted


def _emit_group(
    machine: Machine,
    cone: int,
    gamma: list[int],
    batch_adjacency: dict[int, list[int]],
    sink: TriangleSink,
    triangle_filter: TriangleFilter | None,
) -> int:
    """Emit triangles for one cone vertex given its batch-restricted neighbourhood."""
    gamma_set = set(gamma)
    emitted = 0
    for u in gamma:
        closing = batch_adjacency.get(u)
        if not closing:
            continue
        for w in closing:
            machine.stats.charge_operations(1)
            if w in gamma_set:
                triangle = sorted_triangle(cone, u, w)
                if triangle_filter is not None and not triangle_filter(triangle):
                    continue
                sink.emit(*triangle)
                emitted += 1
    return emitted
