"""Paper Lemma 1: enumerate all triangles containing a given vertex.

    "Enumerating all triangles in an edge set E that contain a given vertex
    v can be done in O(sort(E)) I/Os."

The implementation follows the proof verbatim:

1. scan ``E`` to collect the neighbourhood ``Gamma_v`` and sort it;
2. sort ``E`` by smaller endpoint and keep the edges whose smaller endpoint
   lies in ``Gamma_v`` (a merge join of two sorted streams);
3. sort the survivors by larger endpoint and keep those whose larger
   endpoint also lies in ``Gamma_v``; each surviving edge ``{u, w}`` closes
   the triangle ``{v, u, w}``.

The subroutine is used by the cache-aware algorithm's high-degree phase
(Section 2, step 1); the cache-oblivious recursion uses an analogous routine
built on :class:`repro.extmem.oblivious.ExtVector` (see
:mod:`repro.core.cache_oblivious`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.emit import Triangle, TriangleSink, emit_all, sorted_triangle
from repro.extmem.disk import Readable
from repro.extmem.machine import Machine

RankedEdge = tuple[int, int]
TriangleFilter = Callable[[Triangle], bool]


def triangles_through_vertex(
    machine: Machine,
    sources: Sequence[Readable],
    vertex: int,
    sink: TriangleSink,
    excluded: frozenset[int] | set[int] = frozenset(),
    triangle_filter: TriangleFilter | None = None,
) -> int:
    """Emit every triangle of ``sources`` that contains ``vertex``.

    Parameters
    ----------
    sources:
        Edge files/slices whose records are canonical ranked edges.  They do
        not need to be sorted; the subroutine sorts what it needs.
    excluded:
        Vertices whose incident edges must be ignored.  The cache-aware
        algorithm passes the high-degree vertices already processed so that
        a triangle with two high-degree vertices is emitted exactly once.
    triangle_filter:
        Optional predicate on the sorted triangle; used by colour-constrained
        callers.  Filtered triangles are not emitted and not counted.

    Returns the number of triangles emitted.
    """
    if vertex in excluded:
        return 0

    # Step 1: Gamma_v, the neighbourhood of ``vertex`` (excluding removed vertices).
    excluded_set = set(excluded)
    with machine.writer() as gamma_writer:
        for block in machine.scan_many_blocks(sources):
            machine.stats.charge_operations(len(block))
            gamma_writer.extend(
                w if u == vertex else u
                for u, w in block
                if (u == vertex or w == vertex)
                and u not in excluded_set
                and w not in excluded_set
            )
    gamma_raw = gamma_writer.file
    if len(gamma_raw) < 2:
        gamma_raw.delete()
        return 0
    gamma = machine.sort(gamma_raw)
    gamma_raw.delete()

    # Step 2: edges whose *smaller* endpoint lies in Gamma_v.
    concatenated, concatenated_is_temporary = _concatenate(machine, sources)
    edges_by_smaller = machine.sort(concatenated, key=lambda e: e)
    if concatenated_is_temporary:
        concatenated.delete()
    candidate_edges = _filter_by_membership(
        machine,
        edges_by_smaller,
        gamma,
        key=lambda edge: edge[0],
        excluded=excluded,
        skip_vertex=vertex,
    )
    edges_by_smaller.delete()

    # Step 3: of those, edges whose *larger* endpoint also lies in Gamma_v.
    candidates_by_larger = machine.sort(candidate_edges, key=lambda e: (e[1], e[0]))
    candidate_edges.delete()
    closing_edges = _filter_by_membership(
        machine,
        candidates_by_larger,
        gamma,
        key=lambda edge: edge[1],
        excluded=excluded,
        skip_vertex=vertex,
    )
    candidates_by_larger.delete()
    gamma.delete()

    emitted = 0
    for block in machine.scan_blocks(closing_edges):
        machine.stats.charge_operations(len(block))
        triangles = [sorted_triangle(vertex, u, w) for u, w in block]
        if triangle_filter is not None:
            triangles = [t for t in triangles if triangle_filter(t)]
        emit_all(sink, triangles)
        emitted += len(triangles)
    closing_edges.delete()
    return emitted


def _concatenate(machine: Machine, sources: Sequence[Readable]) -> tuple[Readable, bool]:
    """A single readable covering all sources, plus a flag marking temporaries.

    With a single source we avoid the copy; with several we concatenate them
    into a temporary file (one scan + one write), which keeps the subsequent
    sort simple.  Either way the cost stays within ``O(sort(E))``.
    """
    if len(sources) == 1:
        return sources[0], False
    with machine.writer() as out:
        for block in machine.scan_many_blocks(sources):
            out.extend(block)
    return out.file, True


def _filter_by_membership(
    machine: Machine,
    edges_sorted: Readable,
    members_sorted: Readable,
    key: Callable[[RankedEdge], int],
    excluded: Iterable[int],
    skip_vertex: int,
) -> Readable:
    """Merge join: keep edges whose ``key`` endpoint appears in ``members_sorted``.

    Both inputs must be sorted by the join key (ascending).  Returns a new
    file with the surviving edges; the join is a single parallel scan.
    """
    excluded_set = set(excluded)
    member_stream = machine.scan(members_sorted)
    current_member: int | None = next(member_stream, None)
    with machine.writer() as out:
        for block in machine.scan_blocks(edges_sorted):
            machine.stats.charge_operations(len(block))
            kept: list[RankedEdge] = []
            for edge in block:
                u, w = edge
                if u in excluded_set or w in excluded_set:
                    continue
                if u == skip_vertex or w == skip_vertex:
                    continue
                value = key(edge)
                while current_member is not None and current_member < value:
                    current_member = next(member_stream, None)
                if current_member is not None and current_member == value:
                    kept.append(edge)
            out.extend(kept)
    return out.file
