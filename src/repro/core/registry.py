"""The declarative algorithm registry behind the public API.

Every triangle-enumeration algorithm in the package is described by one
:class:`AlgorithmSpec` -- its name, the paper section it implements, its
I/O bound, which substrate it runs on (the explicit cache-aware
:class:`~repro.extmem.machine.Machine`, the cache-oblivious
:class:`~repro.extmem.oblivious.ObliviousVM`, or plain internal memory),
whether it consumes a random seed, and a *typed options dataclass* that
validates per-algorithm knobs up front.  Specs are registered with the
:func:`register_algorithm` decorator (see :mod:`repro.core.algorithms` for
the seven built-in registrations) and consumed by
:class:`repro.core.engine.TriangleEngine`, which replaced the two
hard-coded ``if/elif`` dispatch chains the repo used to have.

Third-party algorithms plug in the same way::

    from repro.core.registry import AlgorithmOptions, register_algorithm

    @register_algorithm(
        "my_algorithm",
        summary="...",
        section="-",
        io_bound="O(...)",
        substrate="machine",
        accepts_seed=True,
    )
    def _run_mine(context, sink, options):
        return my_algorithm(context.machine, context.edge_file, sink)

and are immediately runnable through the engine, ``enumerate_triangles``,
``run_on_edges``, the CLI and the experiment orchestrator.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.exceptions import AlgorithmError, OptionsError, RegistrationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.model import MachineParams
    from repro.extmem.disk import ExtFile
    from repro.extmem.machine import Machine
    from repro.extmem.oblivious import ExtVector, ObliviousVM
    from repro.extmem.stats import IOStats

#: The substrate kinds an algorithm may declare.
SUBSTRATES = ("machine", "oblivious-vm", "in-memory")

#: How a machine-kind algorithm participates in sharded execution:
#: ``subgraph`` (the generic colour-triple decomposition re-runs the whole
#: algorithm per shard) or ``triples`` (the algorithm's own colour-triple
#: phase is distributed via ``SubstrateContext.triples_executor``, keeping
#: aggregated counters bit-identical to the serial run).
SHARDING_MODES = ("subgraph", "triples")


@dataclass(frozen=True)
class AlgorithmOptions:
    """Base class for per-algorithm typed options.

    Subclasses are plain (frozen) dataclasses whose fields are the
    algorithm's knobs.  :meth:`from_mapping` builds an instance from the
    untyped dictionaries that arrive over the CLI / experiment-spec / JSON
    boundary, rejecting unknown keys, and :meth:`validate` (overridden per
    subclass) checks types and ranges.  Both raise
    :class:`repro.exceptions.OptionsError`.
    """

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "AlgorithmOptions":
        """Build validated options from an untyped mapping."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            accepted = ", ".join(sorted(known)) if known else "none"
            raise OptionsError(
                f"unknown option(s) {', '.join(map(repr, unknown))} for {cls.__name__}; "
                f"accepted: {accepted}"
            )
        instance = cls(**dict(mapping))
        instance.validate()
        return instance

    def validate(self) -> None:
        """Check field types and ranges; subclasses override."""

    def _require_optional_positive_int(self, name: str, minimum: int = 1) -> None:
        """Shared check: field must be ``None`` or an ``int >= minimum``."""
        value = getattr(self, name)
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, int):
            raise OptionsError(f"{name} must be an int or None, got {value!r}")
        if value < minimum:
            raise OptionsError(f"{name} must be >= {minimum}, got {value}")

    def to_mapping(self) -> dict[str, Any]:
        """The options as a plain dict (only fields that differ may matter)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}


@dataclass(frozen=True)
class NoOptions(AlgorithmOptions):
    """Options type of algorithms that take no knobs."""


#: Hard cap on the colour count of a sharded run: ``shards`` colours expand
#: into up to ``shards**3`` colour-triple subproblems, so the cap bounds the
#: task-list size (16**3 = 4096) rather than any algorithmic quantity.
MAX_SHARDS = 16


@dataclass(frozen=True)
class ShardingOptions:
    """Typed knobs of the engine's sharded execution path.

    ``shards`` is the number of colours ``c`` of the paper's vertex
    colouring (Lemma 1/2): the canonical edge list decomposes into at most
    ``c**3`` independent colour-triple subproblems.  ``jobs`` is the number
    of worker processes the subproblems are distributed over (1 executes
    them in-process, in triple order).

    ``task_timeout`` and ``max_retries`` tune the supervised execution tier
    (:func:`repro.resilience.supervised_map_unordered`) that ships the
    subproblems to the pool: a shard whose worker dies, hangs past the
    timeout, or raises is retried up to ``max_retries`` times before the
    run fails with a :class:`~repro.core.sharding.ShardExecutionError`.
    Retries cannot change results -- every shard is a pure function of its
    task payload.

    ``pool`` selects the worker-pool strategy (:mod:`repro.poolexec`):
    ``"persistent"`` (the default) leases the process-wide warm pool and
    ships edge payloads through shared-memory segments, so repeated runs
    pay neither worker startup nor graph re-transfer; ``"spawn"`` builds a
    fresh pool per run and tears it down afterwards.  The strategy cannot
    change results -- only where and how fast the same pure tasks execute.
    """

    shards: int = 1
    jobs: int = 1
    task_timeout: float | None = None
    max_retries: int = 2
    pool: str = "persistent"

    def validate(self) -> None:
        """Check every knob is in range."""
        for name in ("shards", "jobs"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise OptionsError(f"{name} must be an int, got {value!r}")
            if value < 1:
                raise OptionsError(f"{name} must be >= 1, got {value}")
        if self.shards > MAX_SHARDS:
            raise OptionsError(
                f"shards must be <= {MAX_SHARDS} "
                f"(shards**3 colour triples are enumerated), got {self.shards}"
            )
        if self.task_timeout is not None:
            if isinstance(self.task_timeout, bool) or not isinstance(
                self.task_timeout, (int, float)
            ):
                raise OptionsError(f"task_timeout must be a number, got {self.task_timeout!r}")
            if self.task_timeout <= 0:
                raise OptionsError(f"task_timeout must be positive, got {self.task_timeout}")
        if isinstance(self.max_retries, bool) or not isinstance(self.max_retries, int):
            raise OptionsError(f"max_retries must be an int, got {self.max_retries!r}")
        if self.max_retries < 0:
            raise OptionsError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.pool not in ("persistent", "spawn"):
            raise OptionsError(
                f"pool must be 'persistent' or 'spawn', got {self.pool!r}"
            )


@dataclass
class SubstrateContext:
    """Everything an algorithm adapter needs to run one configuration.

    Built by the engine per run: exactly one of ``machine``/``edge_file``
    (substrate ``machine``), ``vm``/``edge_vector`` (substrate
    ``oblivious-vm``) or ``edges`` (substrate ``in-memory``) is populated,
    according to the spec's declared substrate kind.
    """

    params: "MachineParams"
    stats: "IOStats"
    seed: int
    machine: "Machine | None" = None
    edge_file: "ExtFile | None" = None
    vm: "ObliviousVM | None" = None
    edge_vector: "ExtVector | None" = None
    edges: list[tuple[int, int]] | None = None
    #: Sharded runs of ``sharding="triples"`` algorithms: a drop-in
    #: replacement for the serial colour-triple loop with the signature of
    #: :func:`repro.core.cache_aware.enumerate_colored_triples`.  ``None``
    #: (the default) means run the triples phase in-process as usual.
    triples_executor: Callable[..., int] | None = None
    #: Companion hook for the Lemma-1 high-degree phase of ``triples``
    #: algorithms: a drop-in replacement for the serial per-vertex loop,
    #: called as ``(machine, edge_file, sink, high_vertices) -> emitted``.
    #: ``None`` (the default) keeps the phase in-process.
    high_degree_executor: Callable[..., int] | None = None
    #: Per-engine scratch shared by every run of the same prepared graph
    #: (``None`` outside an engine).  The engine canonicalises once; an
    #: algorithm may likewise derive an input representation once -- the
    #: vectorized backend stashes its packed CSR here -- keyed by strings
    #: of its own choosing.  Entries must be pure functions of the
    #: (immutable) canonical edge list plus the key.
    cache: dict[str, Any] | None = None


#: Adapter signature: ``(context, sink, options) -> report``.
AlgorithmRunner = Callable[[SubstrateContext, Any, AlgorithmOptions], Any]

#: Count-only adapter signature: ``(context, options) -> count`` or
#: ``(context, options) -> (count, report)``.  Optional; algorithms that
#: can count without materialising (or even emitting) triangles register
#: one and the engine's count-only path calls it instead of the full
#: runner, carrying the optional report onto the :class:`RunResult` just
#: like a runner's return value.
AlgorithmCounter = Callable[[SubstrateContext, AlgorithmOptions], "int | tuple[int, Any]"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """The declarative description of one registered algorithm."""

    name: str
    summary: str
    section: str
    io_bound: str
    substrate: str
    accepts_seed: bool
    runner: AlgorithmRunner
    options_type: type[AlgorithmOptions] = NoOptions
    #: Sharded-execution capability (meaningful for ``machine`` algorithms
    #: only; see :data:`SHARDING_MODES`).
    sharding: str = "subgraph"
    #: Optional count-only adapter; when present,
    #: :meth:`TriangleEngine.count` (and any ``run`` without a sink or
    #: ``collect``) dispatches here and skips triangle emission entirely.
    counter: "AlgorithmCounter | None" = None

    def resolve_options(
        self,
        options: AlgorithmOptions | Mapping[str, Any] | None,
        extra: Mapping[str, Any] | None = None,
    ) -> AlgorithmOptions:
        """Normalise caller-supplied options into a validated instance.

        ``options`` may be an instance of :attr:`options_type`, an untyped
        mapping, or ``None``; ``extra`` holds loose keyword arguments from
        the back-compat ``**algorithm_options`` entry points.  The two forms
        cannot be mixed.
        """
        extra = dict(extra or {})
        if isinstance(options, AlgorithmOptions):
            if not isinstance(options, self.options_type):
                raise OptionsError(
                    f"algorithm {self.name!r} takes {self.options_type.__name__}, "
                    f"got {type(options).__name__}"
                )
            if extra:
                raise OptionsError(
                    "pass options either as a dataclass or as keyword arguments, not both: "
                    f"stray keywords {sorted(extra)}"
                )
            options.validate()
            return options
        merged = dict(options or {})
        overlap = sorted(set(merged) & set(extra))
        if overlap:
            raise OptionsError(f"option(s) given both in mapping and as keywords: {overlap}")
        merged.update(extra)
        return self.options_type.from_mapping(merged)

    def resolve_sharding(
        self,
        shards: int | None,
        jobs: int = 1,
        task_timeout: float | None = None,
        max_retries: int | None = None,
        pool: str | None = None,
    ) -> "ShardingOptions | None":
        """Normalise caller-supplied sharding knobs into validated options.

        Returns ``None`` when no sharding was requested (``shards is None``,
        ``jobs == 1``) -- the serial path.  Raises
        :class:`repro.exceptions.OptionsError` when ``jobs``,
        ``task_timeout``, ``max_retries`` or ``pool`` is given without
        ``shards``, when the algorithm does not run on the explicit machine
        substrate (only ``machine``-kind algorithms decompose by the
        paper's vertex colouring), or when any knob is out of range.
        ``max_retries=None`` / ``pool=None`` mean the
        :class:`ShardingOptions` defaults.
        """
        if shards is None:
            if jobs != 1:
                raise OptionsError(
                    f"jobs={jobs!r} requires shards: pass shards=c to choose the "
                    "colour count of the decomposition"
                )
            if task_timeout is not None or max_retries is not None:
                raise OptionsError(
                    "task_timeout/max_retries tune the sharded execution tier and "
                    "require shards: pass shards=c to enable sharded execution"
                )
            if pool is not None:
                raise OptionsError(
                    "pool selects the sharded execution tier's worker pool and "
                    "requires shards: pass shards=c to enable sharded execution"
                )
            return None
        if self.substrate != "machine":
            raise OptionsError(
                f"algorithm {self.name!r} runs on substrate {self.substrate!r}; "
                "sharded execution is only defined for 'machine' algorithms"
            )
        knobs: dict[str, Any] = {"shards": shards, "jobs": jobs, "task_timeout": task_timeout}
        if max_retries is not None:
            knobs["max_retries"] = max_retries
        if pool is not None:
            knobs["pool"] = pool
        resolved = ShardingOptions(**knobs)
        resolved.validate()
        return resolved

    def options_schema(self) -> list[dict[str, Any]]:
        """The options fields as ``{name, type, default}`` rows (for the CLI)."""
        rows: list[dict[str, Any]] = []
        for f in dataclasses.fields(self.options_type):
            default: Any
            if f.default is not dataclasses.MISSING:
                default = f.default
            elif f.default_factory is not dataclasses.MISSING:  # pragma: no cover - none yet
                default = f.default_factory()
            else:  # pragma: no cover - all current options have defaults
                default = None
            rows.append({"name": f.name, "type": str(f.type), "default": default})
        return rows


#: Registered specs in registration order (which the CLI preserves).
_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(
    name: str,
    *,
    summary: str,
    section: str,
    io_bound: str,
    substrate: str,
    accepts_seed: bool,
    options: type[AlgorithmOptions] = NoOptions,
    sharding: str = "subgraph",
    counter: "AlgorithmCounter | None" = None,
) -> Callable[[AlgorithmRunner], AlgorithmRunner]:
    """Register an algorithm adapter under ``name`` and return it unchanged.

    ``counter`` optionally supplies a count-only adapter (see
    :data:`AlgorithmCounter`); the engine uses it to answer count queries
    without emitting a single triangle.  Raises
    :class:`repro.exceptions.RegistrationError` for duplicate names, unknown
    substrate kinds, unknown sharding modes, options types that are not
    :class:`AlgorithmOptions` dataclasses, or non-callable counters.
    """
    if substrate not in SUBSTRATES:
        raise RegistrationError(
            f"algorithm {name!r} declares unknown substrate {substrate!r}; "
            f"expected one of {', '.join(SUBSTRATES)}"
        )
    if sharding not in SHARDING_MODES:
        raise RegistrationError(
            f"algorithm {name!r} declares unknown sharding mode {sharding!r}; "
            f"expected one of {', '.join(SHARDING_MODES)}"
        )
    if not (isinstance(options, type) and issubclass(options, AlgorithmOptions)):
        raise RegistrationError(
            f"algorithm {name!r}: options must be an AlgorithmOptions subclass, got {options!r}"
        )
    if counter is not None and not callable(counter):
        raise RegistrationError(
            f"algorithm {name!r}: counter must be callable or None, got {counter!r}"
        )

    def register(runner: AlgorithmRunner) -> AlgorithmRunner:
        # Load the built-ins before the duplicate check, so a third-party
        # registration cannot claim a built-in name while the registry is
        # still empty (which would poison the deferred built-in import).
        # Re-entrant registrations from repro.core.algorithms itself are
        # fine: the module is already in sys.modules mid-import, so
        # _ensure_builtins is a no-op for them.
        _ensure_builtins()
        if name in _REGISTRY:
            raise RegistrationError(f"algorithm {name!r} is already registered")
        _REGISTRY[name] = AlgorithmSpec(
            name=name,
            summary=summary,
            section=section,
            io_bound=io_bound,
            substrate=substrate,
            accepts_seed=accepts_seed,
            runner=runner,
            options_type=options,
            sharding=sharding,
            counter=counter,
        )
        return runner

    return register


def unregister_algorithm(name: str) -> None:
    """Remove a registration (tests register throwaway algorithms)."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a spec by name, raising :class:`AlgorithmError` if missing."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def algorithm_names() -> list[str]:
    """Names of all registered algorithms, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY)


def algorithm_specs() -> list[AlgorithmSpec]:
    """All registered specs, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY.values())


def _ensure_builtins() -> None:
    """Import the built-in registrations exactly once (idempotent)."""
    # Imported lazily to break the cycle registry -> algorithms -> core.* ->
    # (nothing back here); the module body runs once thanks to sys.modules.
    import repro.core.algorithms  # noqa: F401
