"""The paper's triangle-enumeration algorithms and their baselines."""

from repro.core.api import (
    ALGORITHMS,
    EnumerationResult,
    count_triangles,
    enumerate_triangles,
    list_algorithms,
)
from repro.core.emit import (
    CollectingSink,
    CountingSink,
    DedupCheckingSink,
    Triangle,
    TriangleSink,
    sorted_triangle,
)

__all__ = [
    "ALGORITHMS",
    "CollectingSink",
    "CountingSink",
    "DedupCheckingSink",
    "EnumerationResult",
    "Triangle",
    "TriangleSink",
    "count_triangles",
    "enumerate_triangles",
    "list_algorithms",
    "sorted_triangle",
]
