"""The paper's triangle-enumeration algorithms and their baselines.

The public surface of this package is the algorithm registry
(:mod:`repro.core.registry`) plus the reusable
:class:`~repro.core.engine.TriangleEngine`; the ``enumerate_triangles`` /
``count_triangles`` functions are thin one-shot wrappers kept for
back-compatibility.
"""

from repro.core.api import (
    ALGORITHMS,
    count_triangles,
    enumerate_triangles,
    list_algorithms,
)
from repro.core.emit import (
    CollectingSink,
    CountingSink,
    DedupCheckingSink,
    Triangle,
    TriangleSink,
    sorted_triangle,
)
from repro.core.engine import TriangleEngine
from repro.core.registry import (
    AlgorithmOptions,
    AlgorithmSpec,
    ShardingOptions,
    algorithm_specs,
    get_algorithm,
    register_algorithm,
)
from repro.core.result import EnumerationResult, RunResult

__all__ = [
    "ALGORITHMS",
    "AlgorithmOptions",
    "AlgorithmSpec",
    "CollectingSink",
    "CountingSink",
    "DedupCheckingSink",
    "EnumerationResult",
    "RunResult",
    "ShardingOptions",
    "Triangle",
    "TriangleEngine",
    "TriangleSink",
    "algorithm_specs",
    "count_triangles",
    "enumerate_triangles",
    "get_algorithm",
    "list_algorithms",
    "register_algorithm",
    "sorted_triangle",
]
