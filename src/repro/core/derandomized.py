"""Section 4: the deterministic cache-aware algorithm.

The randomized algorithm of Section 2 only uses randomness to pick the
colouring ``xi``; all that is needed of ``xi`` is that its collision
statistic ``X_xi`` (pairs of edges landing in the same colour class) is
``O(E * M)``.  Section 4 derandomizes the choice greedily: the colouring is
built one bit at a time, and at every level the refinement bit function
``b_{i-1} : V -> {0, 1}`` is chosen from a small-bias (almost 4-wise
independent) family so that the potential

    ``Phi_i = 4^i * X^nonadj_{xi_i} / c^2  +  2^i * X^adj_{xi_i} / c``

satisfies ``Phi_i <= (1 + alpha)^i * E * M`` with ``alpha = 1 / log2(c)``
(inequality (4) of the paper).  After ``log2(c)`` levels this certifies
``X_xi <= e * E * M``, and the rest of the algorithm is identical to the
randomized one.

Faithfulness notes
------------------
* The candidate family is the AGHP construction of
  :mod:`repro.hashing.small_bias`.  Its full size for Lemma 6 can be large;
  the ``max_family_size`` parameter caps it for practicality.  When the cap
  is active the existence guarantee of the paper no longer applies a priori,
  so the implementation *verifies* inequality (4) at every level and reports
  whether the run was fully certified (empirically it always is, see
  EXPERIMENTS.md, experiment EXP5).
* The paper evaluates all candidates in a single scan keeping ``O(1)``
  counters per candidate.  We also use a single charged scan of the edge
  list per level, but keep per-vertex split counters in simulator RAM while
  doing so (they are not charged as I/O).  The measured I/O complexity --
  the quantity the theorems are about -- is unaffected; only the internal
  bookkeeping is simpler than the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.bounds import colour_count, high_degree_threshold
from repro.core.cache_aware import (
    CacheAwareReport,
    TriplesExecutor,
    VertexExecutor,
    enumerate_colored_triples,
    high_degree_phase,
    partition_by_coloring,
)
from repro.core.emit import TriangleSink
from repro.extmem.disk import ExtFile
from repro.extmem.machine import Machine
from repro.hashing.coloring import Coloring, ConstantColoring, TableColoring
from repro.hashing.small_bias import SmallBiasFamily


@dataclass
class GreedyLevel:
    """Diagnostics for one level of the greedy bit-fixing."""

    level: int
    chosen_candidate: int
    potential: float
    budget: float
    certified: bool


@dataclass
class DerandomizedReport(CacheAwareReport):
    """Report of the deterministic algorithm: cache-aware report plus greedy info."""

    levels: list[GreedyLevel] = field(default_factory=list)
    family_size: int = 0

    @property
    def certified(self) -> bool:
        """Whether inequality (4) held at every level of the greedy construction."""
        return all(level.certified for level in self.levels)


def _round_up_to_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def _candidate_bit_tables(family: SmallBiasFamily, num_vertices: int) -> list[list[int]]:
    """Precompute, for every family member, its bit for every vertex id.

    The AGHP bit for vertex ``v`` is ``<x^{v+1}, y>``; iterating ``v`` in
    order lets us maintain ``x^{v+1}`` with one field multiplication per
    step instead of a fresh exponentiation.
    """
    gf = family.field
    tables: list[list[int]] = []
    for x in gf.elements():
        powers: list[int] = []
        power = x
        for _ in range(num_vertices):
            powers.append(power)
            power = gf.multiply(power, x)
        for y in gf.elements():
            tables.append([gf.inner_product_bit(p, y) for p in powers])
    return tables


def greedy_coloring(
    machine: Machine,
    low_degree_edges: ExtFile,
    num_colors: int,
    total_edges: int,
    max_family_size: int = 256,
) -> tuple[TableColoring, list[GreedyLevel], int]:
    """Build the deterministic colouring by greedy bit fixing.

    Returns the colouring, the per-level diagnostics and the size of the
    candidate family used.
    """
    levels_needed = int(math.log2(num_colors)) if num_colors > 1 else 0
    if levels_needed == 0:
        return TableColoring({}, 1), [], 0

    # Discover the vertex universe of E_l (one charged block-granular scan).
    max_vertex = -1
    for block in machine.scan_blocks(low_degree_edges):
        machine.stats.charge_operations(len(block))
        block_max = max(max(u, v) for u, v in block)
        if block_max > max_vertex:
            max_vertex = block_max
    num_vertices = max_vertex + 1
    if num_vertices <= 0:
        return TableColoring({}, num_colors), [], 0

    family = SmallBiasFamily.with_size_at_most(max(16, max_family_size))
    bit_tables = _candidate_bit_tables(family, num_vertices)

    alpha = 1.0 / levels_needed
    budget_base = float(total_edges) * float(machine.memory_size)
    colors: dict[int, int] = {}
    diagnostics: list[GreedyLevel] = []

    for level in range(1, levels_needed + 1):
        best_index = -1
        best_potential = math.inf
        best_stats: tuple[float, float] | None = None
        scale_nonadj = (4.0**level) / float(num_colors) ** 2
        scale_adj = (2.0**level) / float(num_colors)

        # One charged scan of E_l evaluates every candidate.  Each block is
        # decorated with the current colours once, then every candidate
        # sweeps the decorated block with its counters held in locals.
        per_candidate_class_sizes: list[dict[tuple[int, int], int]] = [
            {} for _ in bit_tables
        ]
        per_candidate_vertex_counts: list[dict[tuple[int, int, int], int]] = [
            {} for _ in bit_tables
        ]
        for block in machine.scan_blocks(low_degree_edges):
            machine.stats.charge_operations(len(block) * len(bit_tables))
            decorated = [(u, v, colors.get(u, 0), colors.get(v, 0)) for u, v in block]
            for index, table in enumerate(bit_tables):
                sizes = per_candidate_class_sizes[index]
                # Two edges are "adjacent" when they share a vertex and land
                # in the same colour class, so the counter key is the shared
                # vertex together with the class pair.
                vertex_counts = per_candidate_vertex_counts[index]
                for u, v, cu, cv in decorated:
                    new_cu = 2 * cu + table[u]
                    new_cv = 2 * cv + table[v]
                    pair = (new_cu, new_cv)
                    sizes[pair] = sizes.get(pair, 0) + 1
                    key_u = (u, new_cu, new_cv)
                    key_v = (v, new_cu, new_cv)
                    vertex_counts[key_u] = vertex_counts.get(key_u, 0) + 1
                    vertex_counts[key_v] = vertex_counts.get(key_v, 0) + 1

        for index in range(len(bit_tables)):
            x_total = sum(
                size * (size - 1) // 2 for size in per_candidate_class_sizes[index].values()
            )
            x_adj = sum(
                count * (count - 1) // 2
                for count in per_candidate_vertex_counts[index].values()
            )
            x_nonadj = x_total - x_adj
            potential = scale_nonadj * x_nonadj + scale_adj * x_adj
            if potential < best_potential:
                best_potential = potential
                best_index = index
                best_stats = (float(x_nonadj), float(x_adj))

        budget = ((1.0 + alpha) ** level) * budget_base
        certified = best_potential <= budget
        diagnostics.append(
            GreedyLevel(
                level=level,
                chosen_candidate=best_index,
                potential=best_potential,
                budget=budget,
                certified=certified,
            )
        )

        chosen_table = bit_tables[best_index]
        for vertex in range(num_vertices):
            colors[vertex] = 2 * colors.get(vertex, 0) + chosen_table[vertex]
        del best_stats  # only kept for clarity while selecting

    return TableColoring(colors, num_colors), diagnostics, family.size


def deterministic_cache_aware(
    machine: Machine,
    edge_file: ExtFile,
    sink: TriangleSink,
    num_colors: int | None = None,
    max_family_size: int = 256,
    triples_executor: "TriplesExecutor | None" = None,
    high_degree_executor: "VertexExecutor | None" = None,
) -> DerandomizedReport:
    """Run the deterministic cache-aware algorithm of Section 4 (Theorem 2).

    ``triples_executor`` and ``high_degree_executor`` are the sharded
    engine's hooks into the colour-triple and high-degree phases, with the
    same bit-identical contract as on
    :func:`repro.core.cache_aware.cache_aware_randomized`; the greedy
    colouring itself always runs in the coordinating process (it is one
    inherently sequential scan per level, not a parallel phase).
    """
    num_edges = len(edge_file)
    report = DerandomizedReport(num_edges=num_edges, num_colors=1)
    if num_edges == 0:
        return report

    threshold = high_degree_threshold(num_edges, machine.memory_size)
    with machine.phase("high-degree"):
        high_vertices, low_edges, high_triangles = high_degree_phase(
            machine, edge_file, sink, threshold, vertex_executor=high_degree_executor
        )
    report.high_degree_vertices = high_vertices
    report.high_degree_triangles = high_triangles

    base_colors = num_colors if num_colors is not None else colour_count(
        num_edges, machine.memory_size
    )
    c = _round_up_to_power_of_two(max(1, base_colors))
    report.num_colors = c

    coloring: Coloring
    if c == 1:
        coloring = ConstantColoring()
    else:
        with machine.phase("greedy-coloring"):
            coloring, levels, family_size = greedy_coloring(
                machine,
                low_edges,
                c,
                total_edges=num_edges,
                max_family_size=max_family_size,
            )
        report.levels = levels
        report.family_size = family_size

    with machine.phase("partition"):
        partitioned, slices, sizes = partition_by_coloring(machine, low_edges, coloring)
    report.partition_sizes = sizes
    low_edges.delete()

    run_triples = triples_executor if triples_executor is not None else enumerate_colored_triples
    with machine.phase("triples"):
        report.low_degree_triangles = run_triples(machine, slices, coloring, sink)
    partitioned.delete()
    return report
