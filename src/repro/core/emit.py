"""The emission protocol of the triangle *enumeration* problem.

The paper's problem definition: for each triangle ``{v1, v2, v3}`` the
algorithm makes exactly one call to ``emit(v1, v2, v3)`` at a point in time
when all three edges are in internal memory.  Nothing is written to external
memory for the emitted triangles -- that is precisely what distinguishes
*enumeration* from *listing* and what makes the ``E^{3/2}/(sqrt(M) B)``
bound achievable regardless of the output size.

Sinks receive the three vertices in ascending (degree-rank) order.  The
:class:`DedupCheckingSink` wrapper is used throughout the test suite to turn
the "exactly once" requirement into an assertion.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, Sequence

from repro.exceptions import AlgorithmError

Triangle = tuple[int, int, int]


def sorted_triangle(a: int, b: int, c: int) -> Triangle:
    """Return the triple sorted ascending; reject degenerate triples."""
    if a == b or b == c or a == c:
        raise AlgorithmError(f"degenerate triangle ({a}, {b}, {c})")
    if a > b:
        a, b = b, a
    if b > c:
        b, c = c, b
    if a > b:
        a, b = b, a
    return (a, b, c)


class TriangleSink(Protocol):
    """Anything that can receive emitted triangles."""

    def emit(self, a: int, b: int, c: int) -> None:
        """Receive one triangle; vertices arrive in ascending order."""
        ...


def emit_all(sink: TriangleSink, triangles: Sequence[Triangle]) -> None:
    """Deliver a batch of already-sorted triangles to ``sink``.

    Uses the sink's ``emit_many`` fast path when it has one (the block-
    granular inner loops produce triangles a group at a time), falling back
    to per-triangle ``emit`` calls for plain sinks.  A batch delivered
    through ``emit_many`` must behave exactly as the same triples delivered
    one by one through ``emit`` -- sinks that normalise or validate in
    ``emit`` do the same in ``emit_many``.
    """
    emit_many = getattr(sink, "emit_many", None)
    if emit_many is not None:
        emit_many(triangles)
        return
    emit = sink.emit
    for triangle in triangles:
        emit(*triangle)


class CountingSink:
    """Counts emitted triangles without storing them (the cheapest sink)."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, a: int, b: int, c: int) -> None:
        self.count += 1

    def emit_many(self, triangles: Sequence[Triangle]) -> None:
        """Count a batch of sorted triangles in one call."""
        self.count += len(triangles)


class CollectingSink:
    """Collects every emitted triangle (as sorted tuples) into a list."""

    def __init__(self) -> None:
        self.triangles: list[Triangle] = []

    def emit(self, a: int, b: int, c: int) -> None:
        self.triangles.append(sorted_triangle(a, b, c))

    def emit_many(self, triangles: Sequence[Triangle]) -> None:
        """Collect a batch of triangles in one call.

        Normalises exactly like repeated :meth:`emit`, so the stored tuples
        are sorted (and degenerate triples rejected) regardless of how the
        caller ordered each triple.
        """
        self.triangles.extend(sorted_triangle(*t) for t in triangles)

    @property
    def count(self) -> int:
        """Number of triangles emitted so far."""
        return len(self.triangles)

    def as_set(self) -> set[Triangle]:
        """The emitted triangles as a set (for comparisons against oracles)."""
        return set(self.triangles)


class DedupCheckingSink:
    """A sink wrapper that enforces the exactly-once emission contract.

    Raises :class:`repro.exceptions.AlgorithmError` if the same triangle is
    emitted twice.  Used pervasively in tests; cheap enough to use in
    examples too.
    """

    def __init__(self, inner: TriangleSink | None = None) -> None:
        self.inner = inner if inner is not None else CountingSink()
        self.seen: set[Triangle] = set()

    def emit(self, a: int, b: int, c: int) -> None:
        triangle = sorted_triangle(a, b, c)
        if triangle in self.seen:
            raise AlgorithmError(f"triangle {triangle} emitted more than once")
        self.seen.add(triangle)
        self.inner.emit(a, b, c)

    def emit_many(self, triangles: Sequence[Triangle]) -> None:
        """Check and forward a batch of sorted triangles one by one."""
        for triangle in triangles:
            self.emit(*triangle)

    @property
    def count(self) -> int:
        """Number of distinct triangles emitted."""
        return len(self.seen)

    def as_set(self) -> set[Triangle]:
        """The emitted triangles as a set."""
        return set(self.seen)


class CallbackSink:
    """Adapts a plain callable ``f(a, b, c)`` to the sink protocol."""

    def __init__(self, callback: Callable[[int, int, int], None]) -> None:
        self.callback = callback
        self.count = 0

    def emit(self, a: int, b: int, c: int) -> None:
        self.count += 1
        self.callback(a, b, c)


class FilteringSink:
    """Forwards only triangles accepted by a predicate (used by colour checks)."""

    def __init__(self, inner: TriangleSink, predicate: Callable[[Triangle], bool]) -> None:
        self.inner = inner
        self.predicate = predicate

    def emit(self, a: int, b: int, c: int) -> None:
        triangle = sorted_triangle(a, b, c)
        if self.predicate(triangle):
            self.inner.emit(*triangle)


def triangles_as_set(triangles: Iterable[Triangle]) -> set[Triangle]:
    """Normalise an iterable of triples into a set of sorted tuples."""
    return {sorted_triangle(*t) for t in triangles}
