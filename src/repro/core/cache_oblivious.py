"""Section 3: the cache-oblivious randomized enumeration algorithm.

The algorithm solves the general ``(c0, c1, c2)``-enumeration problem: emit
every triangle ``u < v < w`` whose colours under the current colouring are
exactly ``(c0, c1, c2)``.  Enumerating all triangles is the ``(0, 0, 0)``
problem under the constant colouring.  Each recursive call:

1. enumerates (and then removes) the triangles through *local high-degree*
   vertices -- vertices of degree at least ``E/8`` within the current edge
   set, of which there are at most 16 -- using a cache-oblivious version of
   the Lemma 1 subroutine;
2. refines the colouring by appending one 4-wise independent random bit to
   every vertex colour (``xi'(v) = 2 xi(v) + b(v)``);
3. recurses on the 8 colour vectors ``(z0, z1, z2)`` with
   ``z_i in {2 c_i, 2 c_i + 1}``, each child keeping only the edges
   compatible with its vector.

The recursion stops at depth ``log4 E`` (or when fewer than three edges
remain), where the remaining triangles are enumerated with a sort-based
wedge join in the style of Dementiev's algorithm.

The whole algorithm runs on the :class:`repro.extmem.oblivious.ObliviousVM`:
it never reads ``M`` or ``B``; its I/Os are whatever the LRU block cache
charges.  Edge records carry the colours of their endpoints --
``(u, v, colour_u, colour_v)`` -- matching the paper's assumption that "the
color of each vertex is stored within the vertex".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.emit import TriangleSink, sorted_triangle
from repro.extmem.co_sort import cache_oblivious_sort
from repro.extmem.oblivious import ExtVector, ObliviousVM
from repro.hashing.kwise import KWiseIndependentHash

ColorVector = tuple[int, int, int]
#: Edge record layout: (smaller endpoint, larger endpoint, colour of smaller, colour of larger).
EdgeRecord = tuple[int, int, int, int]


@dataclass
class CacheObliviousReport:
    """Diagnostics of a cache-oblivious run, used by the recursion experiment."""

    num_edges: int
    max_depth: int
    triangles_emitted: int = 0
    base_case_invocations: int = 0
    local_high_degree_processed: int = 0
    subproblem_sizes: dict[int, list[int]] = field(default_factory=dict)

    def record_subproblem(self, depth: int, size: int) -> None:
        """Record the input size of one recursive subproblem."""
        self.subproblem_sizes.setdefault(depth, []).append(size)

    def subproblems_at(self, depth: int) -> list[int]:
        """Sizes of all subproblems seen at the given depth."""
        return self.subproblem_sizes.get(depth, [])


def cache_oblivious_randomized(
    vm: ObliviousVM,
    edges: ExtVector,
    sink: TriangleSink,
    seed: int = 0,
    max_depth: int | None = None,
    size_recorder: Callable[[int, int], None] | None = None,
) -> CacheObliviousReport:
    """Enumerate all triangles of ``edges`` cache-obliviously.

    Parameters
    ----------
    edges:
        Input vector of canonical ranked edges ``(u, v)`` with ``u < v``,
        sorted lexicographically (as produced by
        :func:`repro.graph.io.edges_to_vector`).  The input is not modified.
    seed:
        Master seed for the per-level 4-wise independent refinement bits.
    max_depth:
        Override of the recursion depth limit; defaults to the paper's
        ``log4 E``.
    size_recorder:
        Optional callback ``(depth, size)`` invoked for every subproblem, in
        addition to the sizes recorded in the report.
    """
    num_edges = len(edges)
    depth_limit = max_depth if max_depth is not None else _default_depth(num_edges)
    report = CacheObliviousReport(num_edges=num_edges, max_depth=depth_limit)
    if num_edges == 0:
        return report

    # Working copy with colour-annotated records; the constant colouring is 0.
    working = vm.vector("colored-edges")
    for u, v in edges.iterate():
        working.append((u, v, 0, 0))

    solver = _Solver(vm, sink, seed, depth_limit, report, size_recorder)
    solver.solve(working, (0, 0, 0), 0)
    vm.flush()
    return report


def _default_depth(num_edges: int) -> int:
    if num_edges <= 1:
        return 0
    return max(1, math.ceil(math.log(num_edges, 4)))


class _Solver:
    """Recursive state of the cache-oblivious algorithm."""

    def __init__(
        self,
        vm: ObliviousVM,
        sink: TriangleSink,
        seed: int,
        max_depth: int,
        report: CacheObliviousReport,
        size_recorder: Callable[[int, int], None] | None,
    ) -> None:
        self.vm = vm
        self.sink = sink
        self.seed = seed
        self.max_depth = max_depth
        self.report = report
        self.size_recorder = size_recorder
        self._node_counter = 0

    # ------------------------------------------------------------------
    # recursion
    # ------------------------------------------------------------------
    def solve(self, edges: ExtVector, target: ColorVector, depth: int) -> None:
        """Solve one ``(c0, c1, c2)``-enumeration subproblem; frees ``edges``."""
        size = len(edges)
        self.report.record_subproblem(depth, size)
        if self.size_recorder is not None:
            self.size_recorder(depth, size)
        if size < 3:
            edges.free()
            return
        if depth >= self.max_depth:
            self.report.base_case_invocations += 1
            self._base_case(edges, target)
            edges.free()
            return

        edges = self._local_high_degree_phase(edges, target)
        if len(edges) < 3:
            edges.free()
            return

        self._refine_colors(edges, depth)
        children = self._split_children(edges, target)
        edges.free()
        for child_target, child_edges in children:
            self.solve(child_edges, child_target, depth + 1)

    # ------------------------------------------------------------------
    # step 1: local high-degree vertices
    # ------------------------------------------------------------------
    def _local_high_degree_phase(self, edges: ExtVector, target: ColorVector) -> ExtVector:
        """Enumerate triangles through local high-degree vertices, then drop them."""
        size = len(edges)
        threshold = size / 8.0
        high_vertices = self._find_local_high_degree(edges, threshold)
        if not high_vertices:
            return edges
        current = edges
        for vertex in high_vertices:
            self.report.local_high_degree_processed += 1
            self._triangles_through_vertex(current, vertex, target)
            current = self._remove_vertex(current, vertex)
        return current

    def _find_local_high_degree(self, edges: ExtVector, threshold: float) -> list[int]:
        """Vertices with degree at least ``threshold`` in ``edges`` (at most 16)."""
        endpoints = self.vm.vector("endpoints")
        for record in edges.iterate():
            endpoints.append(record[0])
            endpoints.append(record[1])
        cache_oblivious_sort(self.vm, endpoints)
        high: list[int] = []
        current: int | None = None
        count = 0
        for vertex in endpoints.iterate():
            if vertex != current:
                if current is not None and count >= threshold:
                    high.append(current)
                current = vertex
                count = 0
            count += 1
        if current is not None and count >= threshold:
            high.append(current)
        endpoints.free()
        return high

    def _triangles_through_vertex(
        self, edges: ExtVector, vertex: int, target: ColorVector
    ) -> None:
        """Cache-oblivious Lemma 1: emit proper triangles containing ``vertex``."""
        gamma = self.vm.vector("gamma")
        vertex_color: int | None = None
        for u, v, cu, cv in edges.iterate():
            if u == vertex:
                gamma.append((v, cv))
                vertex_color = cu
            elif v == vertex:
                gamma.append((u, cu))
                vertex_color = cv
        if len(gamma) < 2 or vertex_color is None:
            gamma.free()
            return
        cache_oblivious_sort(self.vm, gamma, key=lambda record: record[0])

        # Keep edges whose smaller endpoint lies in Gamma_v (merge join; the
        # edge vector is sorted lexicographically so it is sorted by smaller
        # endpoint).
        candidates = self.vm.vector("gamma-candidates")
        self._merge_filter(edges, gamma, key_index=0, skip_vertex=vertex, output=candidates)
        # Of those, keep edges whose larger endpoint also lies in Gamma_v.
        cache_oblivious_sort(self.vm, candidates, key=lambda r: (r[1], r[0]))
        closing = self.vm.vector("gamma-closing")
        self._merge_filter(candidates, gamma, key_index=1, skip_vertex=vertex, output=closing)
        candidates.free()
        gamma.free()

        for u, w, cu, cw in closing.iterate():
            self._emit_if_proper(
                (vertex, u, w), (vertex_color, cu, cw), target
            )
        closing.free()

    def _merge_filter(
        self,
        records: ExtVector,
        gamma: ExtVector,
        key_index: int,
        skip_vertex: int,
        output: ExtVector,
    ) -> None:
        """Append to ``output`` the records whose ``key_index`` endpoint is in ``gamma``.

        ``records`` must be sorted by the chosen endpoint and ``gamma`` by
        vertex id; the filter is a single parallel scan of both vectors.
        """
        gamma_length = len(gamma)
        gamma_position = 0
        gamma_value = gamma.get(0)[0] if gamma_length else None
        for index in range(len(records)):
            record = records.get(index)
            if record[0] == skip_vertex or record[1] == skip_vertex:
                continue
            value = record[key_index]
            while gamma_value is not None and gamma_value < value:
                gamma_position += 1
                gamma_value = (
                    gamma.get(gamma_position)[0] if gamma_position < gamma_length else None
                )
            if gamma_value is not None and gamma_value == value:
                output.append(record)

    def _remove_vertex(self, edges: ExtVector, vertex: int) -> ExtVector:
        """Return a new vector without the edges incident to ``vertex``."""
        filtered = self.vm.vector("minus-high-degree")
        for record in edges.iterate():
            if record[0] != vertex and record[1] != vertex:
                filtered.append(record)
        edges.free()
        return filtered

    # ------------------------------------------------------------------
    # step 2: colour refinement
    # ------------------------------------------------------------------
    def _refine_colors(self, edges: ExtVector, depth: int) -> None:
        """Append one random bit to every colour, in place (one read+write scan)."""
        self._node_counter += 1
        bit = KWiseIndependentHash(
            2, independence=4, seed=(self.seed * 1_000_003 + self._node_counter * 7919 + depth)
        )
        for index in range(len(edges)):
            u, v, cu, cv = edges.get(index)
            edges.set(index, (u, v, 2 * cu + bit(u), 2 * cv + bit(v)))

    # ------------------------------------------------------------------
    # step 3: children
    # ------------------------------------------------------------------
    def _split_children(
        self, edges: ExtVector, target: ColorVector
    ) -> list[tuple[ColorVector, ExtVector]]:
        """Build the 8 child edge sets in a single scan of the parent."""
        c0, c1, c2 = target
        child_targets = [
            (z0, z1, z2)
            for z0 in (2 * c0, 2 * c0 + 1)
            for z1 in (2 * c1, 2 * c1 + 1)
            for z2 in (2 * c2, 2 * c2 + 1)
        ]
        # Deduplicate targets that coincide when parent colours are equal
        # (e.g. the very first level, where c0 = c1 = c2): recursing twice on
        # an identical target would emit its triangles twice.
        unique_targets = list(dict.fromkeys(child_targets))
        children: list[tuple[ColorVector, ExtVector]] = [
            (zeta, self.vm.vector(f"child-{zeta}")) for zeta in unique_targets
        ]
        compatible_pairs = {
            zeta: {(zeta[0], zeta[1]), (zeta[1], zeta[2]), (zeta[0], zeta[2])}
            for zeta in unique_targets
        }
        for record in edges.iterate():
            pair = (record[2], record[3])
            for zeta, child in children:
                if pair in compatible_pairs[zeta]:
                    child.append(record)
        return children

    # ------------------------------------------------------------------
    # base case: sort-based wedge join (Dementiev-style)
    # ------------------------------------------------------------------
    def _base_case(self, edges: ExtVector, target: ColorVector) -> None:
        """Enumerate the remaining proper triangles with a wedge join."""
        n = len(edges)
        if n < 3:
            return
        wedges = self.vm.vector("wedges")
        index = 0
        while index < n:
            group_vertex = edges.get(index)[0]
            group_end = index + 1
            while group_end < n and edges.get(group_end)[0] == group_vertex:
                group_end += 1
            for a in range(index, group_end):
                first = edges.get(a)
                for b in range(a + 1, group_end):
                    second = edges.get(b)
                    # Wedge (v; u, w) with v < u < w; colours travel with it.
                    wedges.append(
                        (first[1], second[1], group_vertex, first[3], second[3], first[2])
                    )
            index = group_end
        cache_oblivious_sort(self.vm, wedges, key=lambda r: (r[0], r[1]))

        # Merge the wedges with the edge vector (both sorted by (u, w)).
        edge_position = 0
        edge_record = edges.get(0) if n else None
        for wedge_index in range(len(wedges)):
            u, w, v, cu, cw, cv = wedges.get(wedge_index)
            while edge_record is not None and (edge_record[0], edge_record[1]) < (u, w):
                edge_position += 1
                edge_record = edges.get(edge_position) if edge_position < n else None
            if edge_record is not None and (edge_record[0], edge_record[1]) == (u, w):
                self._emit_if_proper((v, u, w), (cv, cu, cw), target)
        wedges.free()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit_if_proper(
        self,
        vertices: tuple[int, int, int],
        colors: tuple[int, int, int],
        target: ColorVector,
    ) -> None:
        """Emit the triangle if its colour vector (in vertex order) matches the target."""
        paired = sorted(zip(vertices, colors))
        ordered_vertices = tuple(p[0] for p in paired)
        ordered_colors = tuple(p[1] for p in paired)
        if ordered_colors != target:
            return
        triangle = sorted_triangle(*ordered_vertices)
        self.sink.emit(*triangle)
        self.report.triangles_emitted += 1
