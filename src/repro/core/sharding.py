"""Colour-sharded execution of machine-kind algorithms.

Pagh-Silvestri's randomized vertex colouring (Lemma 1/2) decomposes the
canonical edge list into independent colour-triple subproblems: a triangle
with ranked vertices ``v1 < v2 < v3`` and colours ``(xi(v1), xi(v2),
xi(v3)) = (tau1, tau2, tau3)`` has all three edges inside the union of the
classes ``E_{tau1,tau2} ∪ E_{tau1,tau3} ∪ E_{tau2,tau3}`` and is found in
exactly that triple.  This module exploits the shared-nothing structure to
run one *large* enumeration across a worker pool (the experiment
orchestrator of PR 2 only parallelised across independent experiment
cells).

Two execution modes, chosen by the registry spec's ``sharding`` field:

``triples`` (``cache_aware``, ``deterministic``)
    The algorithm itself runs on the coordinator substrate with its two
    embarrassingly parallel phases replaced by distributing executors: the
    Lemma 1 high-degree phase ships one :class:`VertexShardTask` per
    high-degree vertex
    (:data:`~repro.core.registry.SubstrateContext.high_degree_executor`)
    and the colour-triple phase ships one :class:`TripleShardTask` per
    Lemma 2 subproblem
    (:data:`~repro.core.registry.SubstrateContext.triples_executor`); the
    colour partition -- and, for ``deterministic``, the inherently
    sequential greedy colouring -- execute exactly as in the serial run.
    Because each subproblem's charges depend only on its payload and the
    machine parameters, folding the worker counters back into the
    coordinator's phases reproduces the serial totals **bit for bit**, for
    any job count and any completion order.

``subgraph`` (every other machine algorithm)
    The coordinator partitions the canonical edge list by endpoint-colour
    pair in plain Python (decomposition is orchestration, like
    canonicalisation: it charges no simulated I/O), and every colour triple
    whose three classes are non-empty becomes a shard: a worker runs the
    *whole* algorithm on the union of the classes and keeps only triangles
    whose colour signature matches the triple, so every triangle is emitted
    by exactly one shard.  Aggregated counters are deterministic (summed in
    triple order) but -- unlike ``triples`` mode -- measure the decomposed
    instances, not the serial run; with ``shards=1`` the single shard *is*
    the serial run and the counters coincide.

Execution substrate
-------------------
Tasks run under the supervised tier
(:func:`repro.resilience.supervised_map_unordered`) on the pool selected by
``ShardingOptions.pool``: the process-wide persistent pool (default) or an
ephemeral spawn pool.  When a run actually fans out (effective jobs > 1),
edge payloads travel as :class:`repro.poolexec.SegmentSlice` references
into shared-memory segments rather than pickled record lists: the
coordinator publishes the canonical graph and the partitioned classes once
(content-deduplicated, so a repeated run republished *nothing*), and every
worker attaches and decodes a given segment at most once.  Segment handles
live in the engine's substrate cache across runs and are unlinked on
``engine.close()`` / interpreter exit; a run without an engine cache closes
its segments when it returns.

Merging is deterministic regardless of completion order: worker outcomes
are reassembled in task-index order, counters are folded in that order, and
triangles are concatenated in that order (deduplicated by their ranked
triple as a safety net -- the signature filter already guarantees
exactly-once emission).
"""

from __future__ import annotations

import dataclasses
import heapq
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Sequence

from repro.analysis.model import MachineParams
from repro.core.cache_aware import iter_colour_triples
from repro.core.emit import CollectingSink, CountingSink, Triangle, TriangleSink, emit_all
from repro.core.lemma1 import triangles_through_vertex
from repro.core.lemma2 import triangles_with_pivot_in
from repro.core.registry import (
    AlgorithmOptions,
    AlgorithmSpec,
    ShardingOptions,
    SubstrateContext,
)
from repro.exceptions import OptionsError, ReproError
from repro.extmem.machine import Machine
from repro.fastpath.arrays import HAVE_NUMPY
from repro.extmem.stats import IOStats
from repro.graph.io import edges_to_file
from repro.hashing.coloring import Coloring, ConstantColoring, RandomColoring
from repro.hashing.coloring import colors_of as bulk_colors
from repro.parallel import effective_jobs
from repro.poolexec import (
    EdgeSource,
    SegmentHandle,
    provider_for,
    publish_edges,
    resolve_edges,
)
from repro.resilience import supervised_map_unordered

RankedEdge = tuple[int, int]
ColorPair = tuple[int, int]
ColorTriple = tuple[int, int, int]


class ShardExecutionError(ReproError):
    """A shard worker raised; carries the worker traceback."""


# ----------------------------------------------------------------------
# work units and their outcomes (must pickle across the spawn boundary)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TripleShardTask:
    """One Lemma 2 subproblem of a ``triples``-mode run."""

    index: int
    triple: ColorTriple
    pivot: EdgeSource
    adjacency: list[EdgeSource]
    spectators: list[EdgeSource]
    memory: int
    block: int
    collect: bool

    def fault_key(self) -> str:
        return f"shard:{self.index}"

    def describe(self) -> str:
        return f"shard {self.triple}"


@dataclass(frozen=True)
class VertexShardTask:
    """One Lemma 1 per-vertex subproblem of the high-degree phase.

    ``excluded`` is the (already processed) high-degree prefix, so every
    triangle with two or three high-degree vertices is still emitted
    exactly once -- the workers reproduce the serial loop's exclusion
    discipline independently.
    """

    index: int
    vertex: int
    excluded: tuple[int, ...]
    edges: EdgeSource
    memory: int
    block: int
    collect: bool

    def fault_key(self) -> str:
        return f"shard:hd:{self.index}"

    def describe(self) -> str:
        return f"high-degree shard (vertex {self.vertex})"


@dataclass(frozen=True)
class SubgraphShardTask:
    """One full-algorithm run on a colour-triple subgraph.

    ``parts`` holds the triple's distinct colour classes in sorted-key
    order; the worker merges them back into the canonical-order union (the
    classes partition the union, each preserving canonical edge order).
    """

    index: int
    triple: ColorTriple
    parts: tuple[EdgeSource, ...]
    algorithm: str
    options: dict[str, Any]
    seed: int
    num_colors: int
    memory: int
    block: int
    collect: bool

    def fault_key(self) -> str:
        return f"shard:{self.index}"

    def describe(self) -> str:
        return f"shard {self.triple}"


@dataclass
class ShardOutcome:
    """What one shard worker sends back to the coordinator."""

    index: int
    triple: ColorTriple | None = None
    vertex: int | None = None
    count: int = 0
    triangles: list[Triangle] | None = None
    reads: int = 0
    writes: int = 0
    operations: int = 0
    phases: dict[str, int] = field(default_factory=dict)
    disk_peak_words: int = 0
    wall_seconds: float = 0.0
    error: str | None = None


@dataclass
class ShardingStats:
    """Per-run sharding metadata surfaced on :class:`~repro.core.result.RunResult`.

    ``shard_seconds`` is each colour-triple shard's worker-side wall time in
    triple order; single-core hosts use it to project multi-core makespans
    (see ``benchmarks/run_benchmarks.py``).  ``hd_tasks``/``hd_seconds``
    describe the distributed high-degree phase of ``triples``-mode runs
    (zero/empty when the graph has no high-degree vertices or the phase ran
    in-process).
    """

    mode: str
    num_colors: int
    jobs: int
    num_shards: int
    shard_edges: int
    shard_seconds: list[float] = field(default_factory=list)
    shard_triples: list[ColorTriple] = field(default_factory=list)
    hd_tasks: int = 0
    hd_seconds: list[float] = field(default_factory=list)


@dataclass
class ShardedRun:
    """The merged, deterministic result of a sharded execution."""

    stats: IOStats
    triangle_count: int
    triangles: list[Triangle] | None
    disk_peak_words: int
    report: Any
    sharding: ShardingStats


# ----------------------------------------------------------------------
# worker entry points (importable by name for the spawn pool)
# ----------------------------------------------------------------------
def _execute_triple_shard(task: TripleShardTask) -> ShardOutcome:
    """Run one Lemma 2 subproblem on a fresh machine; never raises."""
    outcome = ShardOutcome(index=task.index, triple=task.triple)
    try:
        machine = Machine(MachineParams(task.memory, task.block), IOStats())
        pivot = machine.file_from_records(resolve_edges(task.pivot), name="shard-pivot")
        adjacency = [machine.file_from_records(resolve_edges(s)) for s in task.adjacency]
        spectators = [machine.file_from_records(resolve_edges(s)) for s in task.spectators]
        sink: CollectingSink | CountingSink = CollectingSink() if task.collect else CountingSink()
        started = time.perf_counter()
        triangles_with_pivot_in(machine, pivot, adjacency, sink, spectator_sources=spectators)
        outcome.wall_seconds = time.perf_counter() - started
        outcome.count = sink.count
        outcome.triangles = sink.triangles if task.collect else None
        outcome.reads = machine.stats.reads
        outcome.writes = machine.stats.writes
        outcome.operations = machine.stats.operations
        outcome.phases = machine.stats.phases
        outcome.disk_peak_words = machine.disk.peak_words
    except Exception:  # noqa: BLE001 - the traceback is the payload
        outcome.error = traceback.format_exc()
    return outcome


def _execute_vertex_shard(task: VertexShardTask) -> ShardOutcome:
    """Run one Lemma 1 per-vertex subproblem on a fresh machine; never raises."""
    outcome = ShardOutcome(index=task.index, vertex=task.vertex)
    try:
        machine = Machine(MachineParams(task.memory, task.block), IOStats())
        edge_file = machine.file_from_records(
            [tuple(edge) for edge in resolve_edges(task.edges)], name="shard-graph"
        )
        sink: CollectingSink | CountingSink = CollectingSink() if task.collect else CountingSink()
        started = time.perf_counter()
        triangles_through_vertex(
            machine, [edge_file], task.vertex, sink, excluded=frozenset(task.excluded)
        )
        outcome.wall_seconds = time.perf_counter() - started
        outcome.count = sink.count
        outcome.triangles = sink.triangles if task.collect else None
        outcome.reads = machine.stats.reads
        outcome.writes = machine.stats.writes
        outcome.operations = machine.stats.operations
        outcome.phases = machine.stats.phases
        outcome.disk_peak_words = machine.disk.peak_words
    except Exception:  # noqa: BLE001 - the traceback is the payload
        outcome.error = traceback.format_exc()
    return outcome


class _SignatureFilterSink:
    """Keeps only triangles whose colour signature matches one triple.

    Triangles arrive with vertices in ascending rank order, so the
    signature is simply the componentwise colouring of the triple.
    """

    def __init__(self, inner: TriangleSink, coloring: Coloring, triple: ColorTriple) -> None:
        self.inner = inner
        self.coloring = coloring
        self.triple = triple

    def emit(self, a: int, b: int, c: int) -> None:
        color_of = self.coloring.color_of
        if (color_of(a), color_of(b), color_of(c)) == self.triple:
            self.inner.emit(a, b, c)

    def emit_many(self, triangles: Sequence[Triangle]) -> None:
        color_of = self.coloring.color_of
        triple = self.triple
        kept = [t for t in triangles if (color_of(t[0]), color_of(t[1]), color_of(t[2])) == triple]
        if kept:
            emit_all(self.inner, kept)


def _execute_subgraph_shard(task: SubgraphShardTask) -> ShardOutcome:
    """Run the whole algorithm on one colour-triple subgraph; never raises."""
    from repro.core.registry import get_algorithm

    outcome = ShardOutcome(index=task.index, triple=task.triple)
    try:
        spec = get_algorithm(task.algorithm)
        options = spec.options_type.from_mapping(task.options)
        params = MachineParams(task.memory, task.block)
        stats = IOStats()
        machine = Machine(params, stats)
        # The classes partition the union and each preserves canonical
        # lexicographic order, so the k-way merge rebuilds exactly the
        # canonical-order union the coordinator used to ship.
        parts = [resolve_edges(part) for part in task.parts]
        union = parts[0] if len(parts) == 1 else list(heapq.merge(*parts))
        edge_file = edges_to_file(machine, [tuple(edge) for edge in union])
        coloring = _decomposition_coloring(task.num_colors, task.seed)
        inner: CollectingSink | CountingSink = CollectingSink() if task.collect else CountingSink()
        sink = _SignatureFilterSink(inner, coloring, tuple(task.triple))
        context = SubstrateContext(
            params=params, stats=stats, seed=task.seed, machine=machine, edge_file=edge_file
        )
        started = time.perf_counter()
        spec.runner(context, sink, options)
        outcome.wall_seconds = time.perf_counter() - started
        outcome.count = inner.count
        outcome.triangles = inner.triangles if task.collect else None
        outcome.reads = stats.reads
        outcome.writes = stats.writes
        outcome.operations = stats.operations
        outcome.phases = stats.phases
        outcome.disk_peak_words = machine.disk.peak_words
    except Exception:  # noqa: BLE001 - the traceback is the payload
        outcome.error = traceback.format_exc()
    return outcome


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
def _decomposition_coloring(num_colors: int, seed: int) -> Coloring:
    """The decomposition colouring: constant for one colour, 4-wise otherwise.

    Deterministic in ``(num_colors, seed)`` so coordinator and workers
    rebuild the identical colouring independently.
    """
    if num_colors == 1:
        return ConstantColoring()
    return RandomColoring(num_colors, seed=seed)


def _shard_fault_key(_index: int, task: Any) -> str:
    """The stable fault-injection / backoff key for one shard task."""
    return task.fault_key()


def _retain_handle(
    handle: SegmentHandle | None,
    cache: dict[str, Any] | None,
    run_handles: list[SegmentHandle],
) -> SegmentHandle | None:
    """Park a published segment where its lifetime is managed.

    With an engine cache the handle lives under a ``poolexec:segment:``
    key until ``engine.close()``, so a repeated run's (content-deduplicated)
    re-publish costs nothing; a duplicate publish of already-cached content
    immediately drops its extra reference.  Without a cache the handle is
    run-local and :func:`run_sharded` closes it on the way out.
    """
    if handle is None:
        return None
    if cache is None:
        run_handles.append(handle)
        return handle
    key = f"poolexec:segment:{handle.token}"
    cached = cache.get(key)
    if isinstance(cached, SegmentHandle) and not cached.closed:
        # publish_edges dedups by content, so a live cached entry for this
        # token *is* this handle with one extra reference -- drop it.
        handle.close()
    else:
        cache[key] = handle
    return handle


def _collect_outcomes(
    worker, tasks: Sequence[Any], sharding: ShardingOptions
) -> list[ShardOutcome]:
    """Execute shard tasks under supervision; reassemble in task-index order.

    Completion order is irrelevant: outcomes are keyed by shard index and
    returned sorted, which is what makes every merge downstream
    deterministic.  Each task is supervised individually
    (:func:`repro.resilience.supervised_map_unordered`): a shard whose
    worker dies or hangs past ``sharding.task_timeout`` is re-executed --
    bit-identically, since each task is a pure function of its payload --
    up to ``sharding.max_retries`` times, after which the run fails with a
    :class:`ShardExecutionError` instead of hanging.  An *algorithmic*
    error inside a shard (the worker caught an exception and reported it in
    ``ShardOutcome.error``) is deterministic and fails immediately without
    retry.  ``sharding.pool`` selects the worker-pool strategy when the map
    actually fans out.
    """
    tasks = list(tasks)
    by_index: dict[int, ShardOutcome] = {}
    resolved_jobs = effective_jobs(sharding.jobs, len(tasks))
    provider = provider_for(sharding.pool, resolved_jobs) if resolved_jobs > 1 else None
    supervised = supervised_map_unordered(
        worker,
        tasks,
        sharding.jobs,
        task_timeout=sharding.task_timeout,
        max_retries=sharding.max_retries,
        fault_key=_shard_fault_key,
        pool_provider=provider,
    )
    for item in supervised:
        if not item.ok:
            task = tasks[item.index]
            kinds = ", ".join(item.outcome.failures) or "unknown failure"
            raise ShardExecutionError(
                f"{task.describe()} failed after {item.outcome.attempts} attempts "
                f"({kinds}):\n{item.outcome.error}"
            )
        outcome = item.value
        if outcome.error is not None:
            task = tasks[outcome.index]
            raise ShardExecutionError(
                f"{task.describe()} failed in a worker:\n{outcome.error}"
            )
        by_index[outcome.index] = outcome
    return [by_index[index] for index in sorted(by_index)]


def _merge_triangles(
    outcomes: Sequence[ShardOutcome],
) -> tuple[list[Triangle], int]:
    """Concatenate shard triangles in triple order, deduplicating by rank.

    The signature filter guarantees exactly-once emission across shards;
    the seen-set is a cheap safety net that makes the merge idempotent
    under any upstream mistake rather than silently double-counting.
    """
    merged: list[Triangle] = []
    seen: set[Triangle] = set()
    for outcome in outcomes:
        for triangle in outcome.triangles or ():
            key = tuple(triangle)
            if key in seen:
                continue
            seen.add(key)
            merged.append(triangle)
    return merged, len(merged)


def run_sharded(
    edges: Sequence[RankedEdge],
    spec: AlgorithmSpec,
    options: AlgorithmOptions,
    params: MachineParams,
    seed: int,
    sharding: ShardingOptions,
    collect: bool,
    cache: dict[str, Any] | None = None,
) -> ShardedRun:
    """Execute ``spec`` on ``edges`` sharded by the paper's vertex colouring.

    ``collect=True`` ships ranked triangles back from the workers (the
    engine translates and re-emits them in triple order); otherwise the
    workers only count.  ``cache`` is the engine's substrate cache: when
    given, published shared-memory segments are parked there (and closed by
    ``engine.close()``) so repeated runs re-transfer nothing; without it
    every segment of this run is unlinked before returning.  The caller
    guarantees ``spec.substrate == "machine"`` (enforced by
    :meth:`AlgorithmSpec.resolve_sharding`).
    """
    run_handles: list[SegmentHandle] = []
    try:
        if spec.sharding == "triples":
            return _run_triples_sharded(
                edges, spec, options, params, seed, sharding, collect, cache, run_handles
            )
        return _run_subgraph_sharded(
            edges, spec, options, params, seed, sharding, collect, cache, run_handles
        )
    finally:
        for handle in run_handles:
            handle.close()


def _slice_sources(
    slices: dict[ColorPair, Any],
    pooled: bool,
    cache: dict[str, Any] | None,
    run_handles: list[SegmentHandle],
) -> dict[int, EdgeSource]:
    """An :data:`EdgeSource` per partition slice, keyed by ``id(slice)``.

    Reading the slice contents is coordinator orchestration, not simulated
    I/O -- the workers re-charge every scan and load of these records
    exactly as the serial loop would have.  When the run fans out, the
    classes are concatenated (in sorted colour-pair order) into one
    published segment and each slice becomes a :class:`SegmentSlice` into
    it; otherwise the records ride along inline.
    """
    records = {pair: fs._read_range(0, len(fs)) for pair, fs in slices.items()}
    if pooled:
        flat: list[RankedEdge] = []
        spans: dict[ColorPair, tuple[int, int]] = {}
        for pair in sorted(records):
            class_records = records[pair]
            spans[pair] = (len(flat), len(flat) + len(class_records))
            flat.extend(class_records)
        handle = _retain_handle(publish_edges(flat), cache, run_handles)
        if handle is not None:
            return {id(slices[pair]): handle.slice(*spans[pair]) for pair in records}
    return {id(slices[pair]): records[pair] for pair in records}


def _run_triples_sharded(
    edges: Sequence[RankedEdge],
    spec: AlgorithmSpec,
    options: AlgorithmOptions,
    params: MachineParams,
    seed: int,
    sharding: ShardingOptions,
    collect: bool,
    cache: dict[str, Any] | None,
    run_handles: list[SegmentHandle],
) -> ShardedRun:
    """Distribute the algorithm's own parallel phases over workers."""
    options = _apply_shard_colors(spec, options, sharding.shards)
    stats = IOStats()
    machine = Machine(params, stats)
    edge_list = list(edges)
    edge_file = edges_to_file(machine, list(edge_list))
    local_sink: CollectingSink | CountingSink = CollectingSink() if collect else CountingSink()
    sharding_stats = ShardingStats(
        mode="triples",
        num_colors=sharding.shards,
        jobs=sharding.jobs,
        num_shards=0,
        shard_edges=0,
    )
    counted_only = 0
    worker_peaks = [0]

    def fold_outcome(coord_machine: Machine, outcome: ShardOutcome, sink) -> int:
        # Folded inside the coordinator's active phase, so the phase
        # attribution -- and therefore the aggregate counters -- matches
        # the serial run bit for bit.
        coord_machine.stats.charge_read(outcome.reads)
        coord_machine.stats.charge_write(outcome.writes)
        coord_machine.stats.charge_operations(outcome.operations)
        worker_peaks.append(outcome.disk_peak_words)
        if collect and outcome.triangles:
            emit_all(sink, outcome.triangles)
        return outcome.count

    def hd_executor(coord_machine: Machine, _edge_file, sink, high_vertices) -> int:
        nonlocal counted_only
        pooled = effective_jobs(sharding.jobs, len(high_vertices)) > 1
        source: EdgeSource = edge_list
        if pooled:
            handle = _retain_handle(publish_edges(edge_list), cache, run_handles)
            if handle is not None:
                source = handle.slice(0, handle.length)
        tasks = [
            VertexShardTask(
                index=index,
                vertex=vertex,
                excluded=tuple(high_vertices[:index]),
                edges=source,
                memory=params.memory_words,
                block=params.block_words,
                collect=collect,
            )
            for index, vertex in enumerate(high_vertices)
        ]
        outcomes = _collect_outcomes(_execute_vertex_shard, tasks, sharding)
        sharding_stats.hd_tasks = len(tasks)
        emitted = 0
        for outcome in outcomes:
            emitted += fold_outcome(coord_machine, outcome, sink)
            sharding_stats.hd_seconds.append(outcome.wall_seconds)
        if not collect:
            counted_only += emitted
        return emitted

    def executor(coord_machine: Machine, slices, coloring, sink) -> int:
        nonlocal counted_only
        subproblems = list(iter_colour_triples(slices, coloring.num_colors))
        pooled = effective_jobs(sharding.jobs, len(subproblems)) > 1
        sources = _slice_sources(slices, pooled, cache, run_handles)
        tasks = [
            TripleShardTask(
                index=index,
                triple=triple,
                pivot=sources[id(pivot)],
                adjacency=[sources[id(s)] for s in adjacency],
                spectators=[sources[id(s)] for s in spectators],
                memory=params.memory_words,
                block=params.block_words,
                collect=collect,
            )
            for index, (triple, pivot, adjacency, spectators) in enumerate(subproblems)
        ]
        outcomes = _collect_outcomes(_execute_triple_shard, tasks, sharding)
        sharding_stats.num_shards = len(tasks)
        sharding_stats.shard_edges = sum(
            len(t.pivot) + sum(map(len, t.adjacency)) + sum(map(len, t.spectators))
            for t in tasks
        )
        emitted = 0
        for outcome in outcomes:
            emitted += fold_outcome(coord_machine, outcome, sink)
            sharding_stats.shard_seconds.append(outcome.wall_seconds)
            sharding_stats.shard_triples.append(tuple(outcome.triple))
        if not collect:
            counted_only += emitted
        return emitted

    context = SubstrateContext(
        params=params,
        stats=stats,
        seed=seed,
        machine=machine,
        edge_file=edge_file,
        triples_executor=executor,
        high_degree_executor=hd_executor,
        cache=cache,
    )
    report = spec.runner(context, local_sink, options)
    triangle_count = local_sink.count + counted_only
    return ShardedRun(
        stats=stats,
        triangle_count=triangle_count,
        triangles=list(local_sink.triangles) if collect else None,
        disk_peak_words=max(machine.disk.peak_words, max(worker_peaks)),
        report=report,
        sharding=sharding_stats,
    )


def _apply_shard_colors(
    spec: AlgorithmSpec, options: AlgorithmOptions, shards: int
) -> AlgorithmOptions:
    """Force ``num_colors = shards`` on a triples-mode algorithm's options.

    In triples mode the decomposition colouring *is* the algorithm's own
    colouring, so the two knobs must agree; an explicit conflicting
    ``num_colors`` is rejected rather than silently overridden.  (An
    algorithm may still round the count up internally -- ``deterministic``
    rounds to a power of two -- which is fine: the executors follow the
    algorithm's own colouring.)
    """
    if not any(f.name == "num_colors" for f in dataclasses.fields(options)):
        raise OptionsError(
            f"algorithm {spec.name!r} declares sharding='triples' but its options "
            "type has no num_colors field to carry the shard colour count"
        )
    current = getattr(options, "num_colors", None)
    if current is not None and current != shards:
        raise OptionsError(
            f"algorithm {spec.name!r}: num_colors={current} conflicts with shards={shards}; "
            "in sharded runs the colour count is the shard count"
        )
    return replace(options, num_colors=shards)


def _partition_by_color_pairs(
    edges: Sequence[RankedEdge], coloring: Coloring
) -> dict[tuple[int, int], list[RankedEdge]]:
    """Split the canonical edge list into endpoint-colour-pair classes.

    Pure-Python orchestration (no simulated I/O).  Each class preserves the
    canonical lexicographic order, so any union of classes merges back into
    a canonical edge list.  With NumPy available the grouping runs through
    the array fast path (:func:`_partition_by_color_pairs_vectorized`):
    identical classes in identical order, built by one stable argsort over
    packed colour-pair keys instead of a per-edge Python loop.
    """
    if HAVE_NUMPY and len(edges) > 1:
        return _partition_by_color_pairs_vectorized(edges, coloring)
    classes: dict[tuple[int, int], list[RankedEdge]] = {}
    colors_u = bulk_colors(coloring, [edge[0] for edge in edges])
    colors_v = bulk_colors(coloring, [edge[1] for edge in edges])
    for edge, cu, cv in zip(edges, colors_u, colors_v):
        classes.setdefault((cu, cv), []).append(edge)
    return classes


def _partition_by_color_pairs_vectorized(
    edges: Sequence[RankedEdge], coloring: Coloring
) -> dict[tuple[int, int], list[RankedEdge]]:
    """Array fast path of :func:`_partition_by_color_pairs` (same output).

    Endpoint colours are assigned in one unique-vertex batch
    (:func:`repro.fastpath.coloring.edge_color_pairs`, bit-identical to the
    serial hash), edges are grouped by a *stable* sort over packed
    colour-pair keys -- preserving canonical order inside every class --
    and each class is sliced out wholesale.
    """
    import numpy as np

    from repro.fastpath.coloring import edge_color_pairs

    array = np.asarray(edges, dtype=np.int64)
    colors_u, colors_v = edge_color_pairs(coloring, array)
    keys = colors_u * coloring.num_colors + colors_v
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_edges = array[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [sorted_keys.shape[0]]))
    classes: dict[tuple[int, int], list[RankedEdge]] = {}
    for start, stop in zip(starts.tolist(), stops.tolist()):
        key = int(sorted_keys[start])
        pair = (key // coloring.num_colors, key % coloring.num_colors)
        classes[pair] = [tuple(edge) for edge in sorted_edges[start:stop].tolist()]
    return classes


def _iter_subgraph_shards(
    classes: dict[tuple[int, int], list[RankedEdge]], num_colors: int
) -> Iterator[tuple[ColorTriple, list[ColorPair]]]:
    """Yield ``(triple, sorted class keys)`` for every feasible colour triple.

    A triangle with signature ``(tau1, tau2, tau3)`` needs one edge in each
    of the three classes, so triples with an empty class are skipped -- the
    pruning mirrors the pivot-empty skip of the serial triple loop.  The
    shard's edge set is the union of the named classes; the worker merges
    them back into canonical order.
    """
    for tau1 in range(num_colors):
        for tau2 in range(num_colors):
            for tau3 in range(num_colors):
                keys = {(tau1, tau2), (tau1, tau3), (tau2, tau3)}
                if any(not classes.get(key) for key in keys):
                    continue
                yield (tau1, tau2, tau3), sorted(keys)


def _run_subgraph_sharded(
    edges: Sequence[RankedEdge],
    spec: AlgorithmSpec,
    options: AlgorithmOptions,
    params: MachineParams,
    seed: int,
    sharding: ShardingOptions,
    collect: bool,
    cache: dict[str, Any] | None,
    run_handles: list[SegmentHandle],
) -> ShardedRun:
    """Re-run the whole algorithm per colour-triple subgraph and merge."""
    coloring = _decomposition_coloring(sharding.shards, seed)
    classes = _partition_by_color_pairs(edges, coloring)
    shard_keys = list(_iter_subgraph_shards(classes, sharding.shards))
    pooled = effective_jobs(sharding.jobs, len(shard_keys)) > 1

    # One flat segment over the classes (sorted colour-pair order); every
    # shard ships slices into it instead of pickled unions.  The in-process
    # path keeps zero-overhead inline records.
    sources: dict[ColorPair, EdgeSource] = {pair: records for pair, records in classes.items()}
    if pooled:
        flat: list[RankedEdge] = []
        spans: dict[ColorPair, tuple[int, int]] = {}
        for pair in sorted(classes):
            class_records = classes[pair]
            spans[pair] = (len(flat), len(flat) + len(class_records))
            flat.extend(class_records)
        handle = _retain_handle(publish_edges(flat), cache, run_handles)
        if handle is not None:
            sources = {pair: handle.slice(*spans[pair]) for pair in classes}

    tasks = [
        SubgraphShardTask(
            index=index,
            triple=triple,
            parts=tuple(sources[key] for key in keys),
            algorithm=spec.name,
            options=options.to_mapping(),
            seed=seed,
            num_colors=sharding.shards,
            memory=params.memory_words,
            block=params.block_words,
            collect=collect,
        )
        for index, (triple, keys) in enumerate(shard_keys)
    ]
    outcomes = _collect_outcomes(_execute_subgraph_shard, tasks, sharding)

    stats = IOStats()
    sharding_stats = ShardingStats(
        mode="subgraph",
        num_colors=sharding.shards,
        jobs=sharding.jobs,
        num_shards=len(tasks),
        shard_edges=sum(sum(len(part) for part in task.parts) for task in tasks),
    )
    disk_peak = 0
    for outcome in outcomes:
        stats.charge_read(outcome.reads)
        stats.charge_write(outcome.writes)
        stats.charge_operations(outcome.operations)
        for phase_name, total in outcome.phases.items():
            stats.charge_phase(phase_name, total)
        disk_peak = max(disk_peak, outcome.disk_peak_words)
        sharding_stats.shard_seconds.append(outcome.wall_seconds)
        sharding_stats.shard_triples.append(tuple(outcome.triple))
    if collect:
        triangles, triangle_count = _merge_triangles(outcomes)
    else:
        triangles = None
        triangle_count = sum(outcome.count for outcome in outcomes)
    return ShardedRun(
        stats=stats,
        triangle_count=triangle_count,
        triangles=triangles,
        disk_peak_words=disk_peak,
        report=sharding_stats,
        sharding=sharding_stats,
    )
