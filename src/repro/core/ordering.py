"""Helpers around the canonical degree ordering.

Terminology from the paper: for a triangle ``{v1, v2, v3}`` with
``v1 < v2 < v3`` in the degree order, ``{v2, v3}`` is its *pivot edge* and
``v1`` its *cone vertex*.  The algorithms in this package always work on
ranked edge lists, so "``<``" is plain integer comparison.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.core.emit import Triangle, sorted_triangle

RankedEdge = tuple[int, int]


def cone_vertex(triangle: Triangle) -> int:
    """The smallest vertex of the triangle (in degree order)."""
    return sorted_triangle(*triangle)[0]


def pivot_edge(triangle: Triangle) -> RankedEdge:
    """The edge between the two largest vertices of the triangle."""
    _, b, c = sorted_triangle(*triangle)
    return (b, c)


def degrees_from_edges(edges: Iterable[RankedEdge]) -> Counter:
    """In-memory degree computation (tests and small inputs only)."""
    degrees: Counter = Counter()
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    return degrees


def forward_adjacency(edges: Sequence[RankedEdge]) -> dict[int, list[int]]:
    """In-memory forward adjacency lists (tests and oracles only)."""
    adjacency: dict[int, list[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
    for neighbours in adjacency.values():
        neighbours.sort()
    return adjacency
