"""Hashing and limited-independence substrates.

The paper relies on two sources of structured randomness:

* a **4-wise independent** family of functions (Sections 2 and 3), realised
  here as degree-3 polynomials over the Mersenne prime field
  (:mod:`repro.hashing.kwise`);
* an **almost 4-wise independent (small-bias)** family of ``{0,1}``-valued
  functions (Section 4, Lemma 6), realised as the AGHP construction over
  ``GF(2^m)`` (:mod:`repro.hashing.small_bias`).

:mod:`repro.hashing.coloring` packages both as vertex colourings with the
interfaces the enumeration algorithms need.
"""

from repro.hashing.coloring import (
    ConstantColoring,
    RandomColoring,
    RefinedColoring,
    TableColoring,
)
from repro.hashing.gf2 import GF2Field
from repro.hashing.kwise import KWiseIndependentHash
from repro.hashing.small_bias import SmallBiasFamily

__all__ = [
    "ConstantColoring",
    "GF2Field",
    "KWiseIndependentHash",
    "RandomColoring",
    "RefinedColoring",
    "SmallBiasFamily",
    "TableColoring",
]
