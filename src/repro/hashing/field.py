"""Arithmetic over the Mersenne-prime field used by the k-wise hash family.

The polynomial hash family of :mod:`repro.hashing.kwise` evaluates degree-
``(k-1)`` polynomials over a prime field.  We use the Mersenne prime
``2^61 - 1``, which comfortably exceeds any vertex-id universe used in the
experiments and allows fast modular reduction.
"""

from __future__ import annotations

#: The Mersenne prime 2^61 - 1.
MERSENNE_PRIME: int = (1 << 61) - 1


def mod_p(value: int) -> int:
    """Reduce ``value`` modulo the Mersenne prime ``2^61 - 1``.

    Python's big integers make a plain ``%`` correct for any input; the
    helper exists to keep the constant in one place and to document intent.
    """
    return value % MERSENNE_PRIME


def poly_eval(coefficients: list[int], x: int) -> int:
    """Evaluate a polynomial with the given coefficients at ``x`` via Horner.

    ``coefficients[0]`` is the constant term.  The result lies in
    ``[0, 2^61 - 1)``.
    """
    accumulator = 0
    for coefficient in reversed(coefficients):
        accumulator = (accumulator * x + coefficient) % MERSENNE_PRIME
    return accumulator
