"""Small-bias (almost k-wise independent) families of binary functions.

Section 4 of the paper derandomizes the cache-aware algorithm by replacing
the random refinement bit ``b : V -> {0, 1}`` with a function chosen from a
small, explicitly enumerable sample space with almost 4-wise independent
bits (Lemma 6, citing Alon, Goldreich, Håstad and Peralta).

This module implements the AGHP *powering* construction over ``GF(2^m)``:
a sample point is a pair ``(x, y)`` of field elements and the bit assigned
to position ``v`` is the GF(2) inner product ``<x^{v+1}, y>``.  The family
has ``2^{2m}`` members and bias ``<= n / 2^m`` over any parity of at most
``n`` positions, hence it is almost k-wise independent for every constant
``k``.

The greedy derandomization enumerates the family, so its size matters for
running time; :meth:`SmallBiasFamily.with_size_at_most` picks the largest
supported ``m`` whose family still fits a caller-supplied budget.  Capping
the family below the size required by Lemma 6 voids the worst-case
guarantee (the algorithm then verifies the potential inequality explicitly
and reports whether it was certified).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.hashing.gf2 import GF2Field


@dataclass(frozen=True)
class BitFunction:
    """One member of the family: ``bit(v) = <x^{v+1}, y>`` over ``GF(2^m)``."""

    field: GF2Field
    x: int
    y: int

    def __call__(self, position: int) -> int:
        """The bit assigned to ``position`` (a vertex id, any non-negative int)."""
        if position < 0:
            raise ValueError(f"positions must be non-negative, got {position}")
        power = self.field.power(self.x, position + 1)
        return self.field.inner_product_bit(power, self.y)


class SmallBiasFamily:
    """The AGHP epsilon-biased family of ``{0,1}``-valued functions."""

    def __init__(self, degree: int) -> None:
        self.field = GF2Field(degree)
        self.degree = degree

    @property
    def size(self) -> int:
        """Number of functions in the family (``2^{2m}``)."""
        return self.field.size * self.field.size

    def bias(self, positions: int) -> float:
        """Upper bound on the bias over parities of at most ``positions`` positions."""
        return positions / self.field.size

    def function(self, index: int) -> BitFunction:
        """Return the ``index``-th function of the family (row-major over ``(x, y)``)."""
        if index < 0 or index >= self.size:
            raise IndexError(f"family has {self.size} functions, index {index} out of range")
        x = index // self.field.size
        y = index % self.field.size
        return BitFunction(self.field, x, y)

    def functions(self) -> Iterator[BitFunction]:
        """Iterate over every function in the family."""
        for x in self.field.elements():
            for y in self.field.elements():
                yield BitFunction(self.field, x, y)

    @classmethod
    def for_universe(cls, universe_size: int, alpha: float) -> "SmallBiasFamily":
        """Family with bias at most ``alpha / 16`` over a universe of vertices.

        This mirrors Lemma 6: with bias ``alpha * 2^{-4}`` over parities of up
        to four positions drawn from a universe of ``universe_size`` vertices,
        every pattern of four bits deviates from uniform by at most a
        ``(1 + alpha)`` factor.
        """
        if universe_size < 1:
            raise ValueError("universe size must be positive")
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        # bias over <=4 positions of the AGHP family is <= 4 / 2^m.
        needed = max(2, math.ceil(math.log2(64.0 / alpha)))
        supported = _largest_supported_degree()
        return cls(min(needed, supported))

    @classmethod
    def with_size_at_most(cls, max_size: int) -> "SmallBiasFamily":
        """The largest supported family whose size does not exceed ``max_size``."""
        if max_size < 16:
            raise ValueError("the smallest supported family has 16 functions (degree 2)")
        degree = 2
        while 1 << (2 * (degree + 1)) <= max_size and degree + 1 <= _largest_supported_degree():
            degree += 1
        return cls(degree)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SmallBiasFamily(degree={self.degree}, size={self.size})"


def _largest_supported_degree() -> int:
    from repro.hashing.gf2 import IRREDUCIBLE_POLYNOMIALS

    return max(IRREDUCIBLE_POLYNOMIALS)
