"""k-wise independent hash families (polynomial construction).

A uniformly random polynomial of degree ``k - 1`` over a prime field is a
k-wise independent function of its argument (Wegman & Carter).  The paper
uses ``k = 4`` both for the colouring ``xi`` of the cache-aware algorithm
(Section 2) and for the refinement bits ``b`` of the cache-oblivious
recursion (Section 3).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.hashing.field import MERSENNE_PRIME, poly_eval


class KWiseIndependentHash:
    """A function drawn from a k-wise independent family.

    Parameters
    ----------
    range_size:
        The hash maps into ``{0, ..., range_size - 1}``.  The mapping from
        the field to the range is by ``mod range_size``; the induced bias is
        at most ``range_size / p`` with ``p = 2^61 - 1``, negligible for the
        ranges used here.
    independence:
        The independence parameter ``k`` (degree ``k - 1`` polynomial);
        defaults to 4 as required by the paper's analysis.
    seed / rng:
        Source of the random coefficients; pass a seed for reproducibility.
    """

    def __init__(
        self,
        range_size: int,
        independence: int = 4,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if range_size < 1:
            raise ValueError(f"range size must be positive, got {range_size}")
        if independence < 1:
            raise ValueError(f"independence must be positive, got {independence}")
        if rng is None:
            rng = random.Random(seed)
        self.range_size = range_size
        self.independence = independence
        # The leading coefficient may be zero without hurting independence;
        # all coefficients are drawn uniformly from the field.
        self.coefficients = [rng.randrange(MERSENNE_PRIME) for _ in range(independence)]

    def __call__(self, value: int) -> int:
        """Hash ``value`` into ``{0, ..., range_size - 1}``."""
        return poly_eval(self.coefficients, value % MERSENNE_PRIME) % self.range_size

    def hash_many(self, values: Iterable[int]) -> list[int]:
        """Hash a batch of values in one call (block-granular fast path).

        Equivalent to ``[self(v) for v in values]`` with the polynomial
        evaluation inlined, so bulk callers (sort keys, colourings) avoid a
        Python call per value.
        """
        coefficients = list(reversed(self.coefficients))
        prime = MERSENNE_PRIME
        range_size = self.range_size
        out: list[int] = []
        append = out.append
        for value in values:
            x = value % prime
            acc = 0
            for coefficient in coefficients:
                acc = (acc * x + coefficient) % prime
            append(acc % range_size)
        return out

    def bit(self, value: int) -> int:
        """Hash ``value`` to a single bit (requires ``range_size == 2``)."""
        if self.range_size != 2:
            raise ValueError("bit() requires a family with range size 2")
        return self(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KWiseIndependentHash(range={self.range_size}, k={self.independence})"
        )
