"""Vertex colourings used by the enumeration algorithms.

A *colouring* maps vertex ids to small integers.  The paper uses three kinds:

* the constant colouring (the top-level ``(1,1,1)``-enumeration problem);
* a 4-wise independent random colouring with ``c = sqrt(E/M)`` colours
  (cache-aware algorithm, Section 2);
* bit-by-bit refinements ``xi'(v) = 2 xi(v) + b(v)`` where ``b`` is either a
  4-wise independent random bit (cache-oblivious recursion, Section 3) or a
  deterministically chosen member of a small-bias family (Section 4).

All colourings implement ``color_of(vertex) -> int`` and expose
``num_colors``; colours are integers ``0 .. num_colors - 1``.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.hashing.kwise import KWiseIndependentHash


class Coloring(Protocol):
    """Structural protocol for vertex colourings."""

    num_colors: int

    def color_of(self, vertex: int) -> int:
        """Colour of ``vertex`` (an integer in ``[0, num_colors)``)."""
        ...


class ConstantColoring:
    """Every vertex gets colour 0; the top-level (1,1,1) problem."""

    def __init__(self) -> None:
        self.num_colors = 1

    def color_of(self, vertex: int) -> int:
        return 0


class RandomColoring:
    """A 4-wise independent random colouring with a given number of colours.

    Colour values are cached per vertex: the model assumes each vertex's
    colour is stored with the vertex anyway, and the algorithms evaluate the
    colouring many times per vertex (sort keys, cone filters), so caching
    only removes redundant recomputation of the polynomial hash.
    """

    def __init__(self, num_colors: int, seed: int | None = None) -> None:
        if num_colors < 1:
            raise ValueError(f"need at least one colour, got {num_colors}")
        self.num_colors = num_colors
        self._hash = KWiseIndependentHash(num_colors, independence=4, seed=seed)
        self._cache: dict[int, int] = {}

    def color_of(self, vertex: int) -> int:
        cached = self._cache.get(vertex)
        if cached is None:
            cached = self._hash(vertex)
            self._cache[vertex] = cached
        return cached


class TableColoring:
    """A colouring backed by an explicit mapping (used by the derandomization).

    Vertices missing from the table default to colour 0, which keeps the
    class convenient for incrementally built colourings.
    """

    def __init__(self, table: dict[int, int], num_colors: int) -> None:
        if num_colors < 1:
            raise ValueError(f"need at least one colour, got {num_colors}")
        bad = [v for v, c in table.items() if c < 0 or c >= num_colors]
        if bad:
            raise ValueError(f"colours out of range for vertices {bad[:5]}")
        self.num_colors = num_colors
        self._table = dict(table)

    def color_of(self, vertex: int) -> int:
        return self._table.get(vertex, 0)


class RefinedColoring:
    """``xi'(v) = 2 xi(v) + b(v)``: append one bit to an existing colouring.

    ``bit`` may be any callable from vertex ids to ``{0, 1}`` -- a
    :class:`repro.hashing.kwise.KWiseIndependentHash` with range 2 for the
    randomized algorithms, or a
    :class:`repro.hashing.small_bias.BitFunction` for the derandomized one.
    """

    def __init__(self, parent: Coloring, bit: Callable[[int], int]) -> None:
        self.parent = parent
        self.bit = bit
        self.num_colors = 2 * parent.num_colors

    def color_of(self, vertex: int) -> int:
        bit = self.bit(vertex)
        if bit not in (0, 1):
            raise ValueError(f"bit function returned {bit!r}, expected 0 or 1")
        return 2 * self.parent.color_of(vertex) + bit


def random_bit_function(seed: int | None = None) -> KWiseIndependentHash:
    """A 4-wise independent random bit function (range 2), for refinements."""
    return KWiseIndependentHash(2, independence=4, seed=seed)
