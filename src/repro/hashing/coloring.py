"""Vertex colourings used by the enumeration algorithms.

A *colouring* maps vertex ids to small integers.  The paper uses three kinds:

* the constant colouring (the top-level ``(1,1,1)``-enumeration problem);
* a 4-wise independent random colouring with ``c = sqrt(E/M)`` colours
  (cache-aware algorithm, Section 2);
* bit-by-bit refinements ``xi'(v) = 2 xi(v) + b(v)`` where ``b`` is either a
  4-wise independent random bit (cache-oblivious recursion, Section 3) or a
  deterministically chosen member of a small-bias family (Section 4).

All colourings implement ``color_of(vertex) -> int`` plus the bulk variant
``colors_of(vertices) -> list[int]`` and expose ``num_colors``; colours are
integers ``0 .. num_colors - 1``.  The bulk variant is the block-granular
fast path: the algorithms colour whole blocks of endpoints with one call
(sort keys, partition boundaries), so the per-vertex Python call overhead
is paid once per block instead of once per endpoint.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from repro.hashing.kwise import KWiseIndependentHash


class Coloring(Protocol):
    """Structural protocol for vertex colourings."""

    num_colors: int

    def color_of(self, vertex: int) -> int:
        """Colour of ``vertex`` (an integer in ``[0, num_colors)``)."""
        ...

    def colors_of(self, vertices: Sequence[int]) -> list[int]:
        """Colours of a batch of vertices (one call per block)."""
        ...


class ConstantColoring:
    """Every vertex gets colour 0; the top-level (1,1,1) problem."""

    def __init__(self) -> None:
        self.num_colors = 1

    def color_of(self, vertex: int) -> int:
        return 0

    def colors_of(self, vertices: Sequence[int]) -> list[int]:
        return [0] * len(vertices)


class RandomColoring:
    """A 4-wise independent random colouring with a given number of colours.

    Colour values are cached per vertex: the model assumes each vertex's
    colour is stored with the vertex anyway, and the algorithms evaluate the
    colouring many times per vertex (sort keys, cone filters), so caching
    only removes redundant recomputation of the polynomial hash.
    """

    def __init__(self, num_colors: int, seed: int | None = None) -> None:
        if num_colors < 1:
            raise ValueError(f"need at least one colour, got {num_colors}")
        self.num_colors = num_colors
        self._hash = KWiseIndependentHash(num_colors, independence=4, seed=seed)
        self._cache: dict[int, int] = {}

    def color_of(self, vertex: int) -> int:
        cached = self._cache.get(vertex)
        if cached is None:
            cached = self._hash(vertex)
            self._cache[vertex] = cached
        return cached

    def colors_of(self, vertices: Sequence[int]) -> list[int]:
        """Colour a batch of vertices, hashing only the cache misses."""
        return bulk_cached_colors(self._cache, vertices, self._hash.hash_many)


class TableColoring:
    """A colouring backed by an explicit mapping (used by the derandomization).

    Vertices missing from the table default to colour 0, which keeps the
    class convenient for incrementally built colourings.
    """

    def __init__(self, table: dict[int, int], num_colors: int) -> None:
        if num_colors < 1:
            raise ValueError(f"need at least one colour, got {num_colors}")
        bad = [v for v, c in table.items() if c < 0 or c >= num_colors]
        if bad:
            raise ValueError(f"colours out of range for vertices {bad[:5]}")
        self.num_colors = num_colors
        self._table = dict(table)

    def color_of(self, vertex: int) -> int:
        return self._table.get(vertex, 0)

    def colors_of(self, vertices: Sequence[int]) -> list[int]:
        get = self._table.get
        return [get(vertex, 0) for vertex in vertices]


class RefinedColoring:
    """``xi'(v) = 2 xi(v) + b(v)``: append one bit to an existing colouring.

    ``bit`` may be any callable from vertex ids to ``{0, 1}`` -- a
    :class:`repro.hashing.kwise.KWiseIndependentHash` with range 2 for the
    randomized algorithms, or a
    :class:`repro.hashing.small_bias.BitFunction` for the derandomized one.
    """

    def __init__(self, parent: Coloring, bit: Callable[[int], int]) -> None:
        self.parent = parent
        self.bit = bit
        self.num_colors = 2 * parent.num_colors

    def color_of(self, vertex: int) -> int:
        bit = self.bit(vertex)
        if bit not in (0, 1):
            raise ValueError(f"bit function returned {bit!r}, expected 0 or 1")
        return 2 * self.parent.color_of(vertex) + bit

    def colors_of(self, vertices: Sequence[int]) -> list[int]:
        parents = colors_of(self.parent, vertices)
        bit = self.bit
        out: list[int] = []
        for vertex, parent_color in zip(vertices, parents):
            b = bit(vertex)
            if b not in (0, 1):
                raise ValueError(f"bit function returned {b!r}, expected 0 or 1")
            out.append(2 * parent_color + b)
        return out


def bulk_cached_colors(
    cache: dict[int, int],
    vertices: Sequence[int],
    resolve_missing: Callable[[list[int]], Sequence[int]],
) -> list[int]:
    """Bulk colour lookup against a per-vertex cache.

    Reads every vertex from ``cache`` first and resolves only the misses
    with one ``resolve_missing(sorted_missing_vertices)`` call, writing the
    results back.  Shared by every caching colouring's ``colors_of``.
    """
    out = [cache.get(vertex) for vertex in vertices]
    if None in out:
        missing = sorted({v for v, c in zip(vertices, out) if c is None})
        for vertex, color in zip(missing, resolve_missing(missing)):
            cache[vertex] = color
        out = [cache[vertex] for vertex in vertices]
    return out


def colors_of(coloring: Coloring, vertices: Sequence[int]) -> list[int]:
    """Bulk colour lookup that tolerates colourings without a bulk method.

    The block-granular algorithm loops call this instead of per-vertex
    ``color_of`` so user-supplied colourings that predate ``colors_of``
    keep working.
    """
    bulk = getattr(coloring, "colors_of", None)
    if bulk is not None:
        return bulk(vertices)
    color_of = coloring.color_of
    return [color_of(vertex) for vertex in vertices]


def random_bit_function(seed: int | None = None) -> KWiseIndependentHash:
    """A 4-wise independent random bit function (range 2), for refinements."""
    return KWiseIndependentHash(2, independence=4, seed=seed)
