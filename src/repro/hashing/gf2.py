"""Arithmetic in the binary extension field ``GF(2^m)``.

The AGHP small-bias construction (:mod:`repro.hashing.small_bias`) works over
``GF(2^m)``: sample-space points are pairs ``(x, y)`` of field elements and
the ``i``-th output bit is ``<x^i, y>`` (inner product of bit vectors).  This
module supplies the required field arithmetic: carry-less multiplication
reduced modulo a fixed irreducible polynomial per degree.
"""

from __future__ import annotations

#: Irreducible polynomials over GF(2), indexed by degree ``m``.  Encoded as
#: integers with bit ``i`` set when ``x^i`` has coefficient 1; taken from
#: standard tables (e.g. Lidl & Niederreiter).
IRREDUCIBLE_POLYNOMIALS: dict[int, int] = {
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10000011,           # x^7 + x + 1
    8: 0b100011011,          # x^8 + x^4 + x^3 + x + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,   # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011, # x^16 + x^12 + x^3 + x + 1
}


def is_irreducible(polynomial: int) -> bool:
    """Brute-force irreducibility test for small GF(2) polynomials.

    Checks divisibility by every polynomial of degree between 1 and half the
    degree of ``polynomial``.  Only intended for the table above (degrees up
    to 16), where the search space is tiny.
    """
    degree = polynomial.bit_length() - 1
    if degree < 1:
        return False
    for candidate in range(2, 1 << (degree // 2 + 1)):
        if candidate.bit_length() - 1 < 1:
            continue
        if poly_mod(polynomial, candidate) == 0:
            return False
    return True


def clmul(a: int, b: int) -> int:
    """Carry-less (polynomial) multiplication of two GF(2) polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_mod(value: int, modulus: int) -> int:
    """Reduce the GF(2) polynomial ``value`` modulo ``modulus``."""
    if modulus == 0:
        raise ZeroDivisionError("polynomial modulus must be nonzero")
    mod_degree = modulus.bit_length() - 1
    while value.bit_length() - 1 >= mod_degree and value:
        shift = (value.bit_length() - 1) - mod_degree
        value ^= modulus << shift
    return value


class GF2Field:
    """The finite field ``GF(2^m)`` with elements encoded as ``m``-bit integers."""

    def __init__(self, degree: int) -> None:
        if degree not in IRREDUCIBLE_POLYNOMIALS:
            raise ValueError(
                f"unsupported field degree {degree}; supported degrees are "
                f"{sorted(IRREDUCIBLE_POLYNOMIALS)}"
            )
        self.degree = degree
        self.modulus = IRREDUCIBLE_POLYNOMIALS[degree]
        self.size = 1 << degree

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR of coefficient vectors)."""
        return a ^ b

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication modulo the irreducible polynomial."""
        self._check(a)
        self._check(b)
        return poly_mod(clmul(a, b), self.modulus)

    def power(self, base: int, exponent: int) -> int:
        """Field exponentiation by repeated squaring."""
        self._check(base)
        if exponent < 0:
            raise ValueError("negative exponents are not supported")
        result = 1
        current = base
        while exponent:
            if exponent & 1:
                result = self.multiply(result, current)
            current = self.multiply(current, current)
            exponent >>= 1
        return result

    def inner_product_bit(self, a: int, b: int) -> int:
        """The GF(2) inner product of the bit vectors of ``a`` and ``b``."""
        return bin(a & b).count("1") & 1

    def elements(self) -> range:
        """All field elements, encoded as integers ``0 .. 2^m - 1``."""
        return range(self.size)

    def _check(self, value: int) -> None:
        if value < 0 or value >= self.size:
            raise ValueError(f"{value} is not an element of GF(2^{self.degree})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF2Field(2^{self.degree})"
