"""Command-line interface.

Nine subcommands cover the everyday uses of the library:

``repro enumerate GRAPH``
    Enumerate the triangles of an edge-list file on a simulated machine and
    print the count, the I/O meter and (optionally) the triangles.

``repro compare GRAPH``
    Run several algorithms on the same file and print an I/O comparison
    table -- a one-command version of experiment EXP1 on your own data.
    The graph is canonicalised once and shared across all algorithms via
    :class:`repro.core.engine.TriangleEngine`.

``repro algorithms``
    Render the algorithm registry: paper section, I/O bound, substrate kind
    and the typed options schema of every registered algorithm.

``repro stats GRAPH``
    Triangle-based statistics: per-vertex counts, clustering coefficients,
    transitivity.

``repro generate KIND``
    Write a synthetic workload (random / clique / tripartite / planted /
    powerlaw / community / bipartite) to an edge-list file, for
    experimentation without external data.

``repro experiments ...``
    Forwarded to :mod:`repro.experiments.run_all` (the parallel experiment
    orchestrator; supports ``--jobs N`` and the ``results/`` artifact store).

``repro serve``
    Run the triangle-analytics HTTP service (:mod:`repro.service`):
    register graphs, submit count/enum jobs, follow them over SSE, page
    through stored triangles.  SIGTERM/SIGINT drain in-flight jobs and
    release the persistent worker pool before exiting.

``repro client ...``
    Talk to a running ``repro serve`` with the bundled zero-dependency
    client: health, stats, register/count/enum an edge-list file, list and
    watch jobs.

``repro lint``
    Run the AST-based invariant analyzer (:mod:`repro.analysis.lint`) over
    the tree: registry-only dispatch, determinism on counted paths,
    spawn-safe pool callables, resource lifecycle, atomic writes and lock
    discipline, with inline suppressions and a checked-in baseline.

The simulated machine is configured with ``--memory`` and ``--block``
(in words, i.e. records); see DESIGN.md for the cost model.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__
from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.core.registry import algorithm_names, algorithm_specs, get_algorithm
from repro.graph.files import read_edge_list, write_edge_list
from repro.graph.generators import (
    chung_lu_power_law,
    clique,
    complete_tripartite,
    erdos_renyi_gnm,
    planted_partition,
    planted_triangles,
    random_bipartite,
)
from repro.graph.metrics import clustering_coefficients, transitivity, triangle_statistics
from repro.poolexec import POOL_MODES


def _default_compare_algorithms() -> list[str]:
    """Default ``compare`` set: the explicit-machine algorithms.

    Matches the historical default: the cache-oblivious algorithm (orders of
    magnitude more simulated work under the LRU cache) and the in-memory
    oracle (no I/O to compare) are opt-in.
    """
    return [spec.name for spec in algorithm_specs() if spec.substrate == "machine"]


def _positive_int(value: str) -> int:
    """argparse type for knobs that must be >= 1 (``--shards``, ``--jobs``)."""
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _positive_float(value: str) -> float:
    """argparse type for knobs that must be > 0 (``--task-timeout``)."""
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}") from None
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return number


def _non_negative_int(value: str) -> int:
    """argparse type for knobs that must be >= 0 (``--max-retries``)."""
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return number


def _algorithm_help(default: str | None = None) -> str:
    """One-line ``--algorithm`` help text derived from the registry."""
    names = ", ".join(algorithm_names())
    suffix = f" (default {default})" if default else ""
    return f"enumeration algorithm: {names}{suffix}; see `repro algorithms`"


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--memory", type=int, default=512, help="internal memory M in words (default 512)")
    parser.add_argument("--block", type=int, default=16, help="block size B in words (default 16)")
    parser.add_argument("--seed", type=int, default=0, help="seed for randomized algorithms")


def _machine_params(arguments: argparse.Namespace) -> MachineParams:
    return MachineParams(memory_words=arguments.memory, block_words=arguments.block)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Triangle enumeration in external memory (Pagh & Silvestri, PODS 2014).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    available = sorted(algorithm_names())

    enumerate_parser = subparsers.add_parser("enumerate", help="enumerate triangles of an edge-list file")
    enumerate_parser.add_argument("graph", help="path to a whitespace-separated edge-list file")
    enumerate_parser.add_argument(
        "--algorithm", choices=available, default="cache_aware", help=_algorithm_help("cache_aware")
    )
    enumerate_parser.add_argument(
        "--print-triangles", action="store_true", help="print every triangle (can be large)"
    )
    _add_machine_arguments(enumerate_parser)

    compare_parser = subparsers.add_parser("compare", help="compare algorithms' simulated I/O on one file")
    compare_parser.add_argument("graph", help="path to a whitespace-separated edge-list file")
    compare_parser.add_argument(
        "--algorithms",
        nargs="+",
        metavar="NAME[,NAME...]",
        default=None,
        help="algorithms to compare, space- and/or comma-separated (e.g. "
        "--algorithms cache_aware,vector_count); default: every "
        "explicit-machine algorithm",
    )
    compare_parser.add_argument(
        "--shards",
        type=_positive_int,
        metavar="C",
        help="colour-shard each run into C-colour triples (default: serial, "
        "or C=N when --jobs N is given)",
    )
    compare_parser.add_argument(
        "--jobs",
        "-j",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes per sharded run (default 1; results are "
        "bit-identical for any N)",
    )
    compare_parser.add_argument(
        "--task-timeout",
        type=_positive_float,
        metavar="SECONDS",
        help="kill and retry a shard whose worker runs longer than this "
        "(requires sharded execution; default: no timeout)",
    )
    compare_parser.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="retries per shard for crashed, hung or failing workers "
        "(requires sharded execution; default 2)",
    )
    compare_parser.add_argument(
        "--pool",
        choices=POOL_MODES,
        default=None,
        help="worker-pool strategy for --jobs > 1: 'persistent' reuses one "
        "warm process-wide pool across the sweep's runs, 'spawn' starts a "
        "fresh pool per run (requires sharded execution; default persistent)",
    )
    _add_machine_arguments(compare_parser)

    algorithms_parser = subparsers.add_parser(
        "algorithms", help="show the algorithm registry (sections, bounds, options)"
    )
    algorithms_parser.add_argument(
        "--verbose", action="store_true", help="also print each algorithm's options schema"
    )

    stats_parser = subparsers.add_parser("stats", help="triangle statistics and clustering coefficients")
    stats_parser.add_argument("graph", help="path to a whitespace-separated edge-list file")
    stats_parser.add_argument("--top", type=int, default=10, help="how many top vertices to print")
    stats_parser.add_argument(
        "--algorithm", choices=available, default="cache_aware", help=_algorithm_help("cache_aware")
    )
    _add_machine_arguments(stats_parser)

    generate_parser = subparsers.add_parser("generate", help="write a synthetic edge-list file")
    generate_parser.add_argument(
        "kind",
        choices=(
            "random",
            "clique",
            "tripartite",
            "planted",
            "powerlaw",
            "community",
            "bipartite",
        ),
        help="workload family",
    )
    generate_parser.add_argument("--output", required=True, help="output edge-list path")
    generate_parser.add_argument(
        "--vertices", type=int, default=300, help="number of vertices (random / powerlaw)"
    )
    generate_parser.add_argument(
        "--edges", type=int, default=900, help="number of edges (random / powerlaw / bipartite)"
    )
    generate_parser.add_argument("--size", type=int, default=30, help="clique size / tripartite part size")
    generate_parser.add_argument("--triangles", type=int, default=50, help="planted triangle count")
    generate_parser.add_argument(
        "--exponent", type=float, default=2.5, help="power-law degree exponent (powerlaw)"
    )
    generate_parser.add_argument(
        "--communities", type=int, default=8, help="number of communities (community)"
    )
    generate_parser.add_argument("--seed", type=int, default=0, help="generator seed")

    experiments_parser = subparsers.add_parser(
        "experiments", help="run the paper-reproduction experiments (see DESIGN.md §5)"
    )
    experiments_parser.add_argument("arguments", nargs=argparse.REMAINDER, help="arguments for run_all")

    serve_parser = subparsers.add_parser("serve", help="run the triangle-analytics HTTP service")
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="port to listen on (0 picks a free port; default 8765)"
    )
    serve_parser.add_argument(
        "--pool",
        choices=POOL_MODES,
        default="persistent",
        help="worker-pool strategy for sharded jobs (default persistent)",
    )
    serve_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=4,
        metavar="N",
        help="job executor threads (default 4)",
    )
    serve_parser.add_argument(
        "--results",
        default="results",
        metavar="DIR",
        help="artifact store directory; completed jobs persist here and "
        "answer repeat queries across restarts (default results/)",
    )
    serve_parser.add_argument(
        "--no-store", action="store_true", help="keep results in memory only (no artifact store)"
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )

    client_parser = subparsers.add_parser("client", help="talk to a running `repro serve`")
    client_parser.add_argument(
        "--url",
        default=None,
        help="server base URL (default $REPRO_SERVICE_URL or http://127.0.0.1:8765)",
    )
    client_parser.add_argument(
        "--timeout", type=_positive_float, default=30.0, help="HTTP timeout in seconds (default 30)"
    )
    client_actions = client_parser.add_subparsers(dest="action", required=True)
    client_actions.add_parser("health", help="liveness probe")
    client_actions.add_parser("stats", help="server counters: jobs, cache hits, segments")
    register_action = client_actions.add_parser("register", help="register an edge-list file")
    register_action.add_argument("graph", help="path to a whitespace-separated edge-list file")
    register_action.add_argument("--name", default=None, help="display name for the graph")
    for mode in ("count", "enum"):
        action = client_actions.add_parser(
            mode,
            help=f"register an edge-list file and run a {mode} query (waits for the result)",
        )
        action.add_argument("graph", help="path to a whitespace-separated edge-list file")
        action.add_argument(
            "--algorithm", choices=available, default="cache_aware", help=_algorithm_help("cache_aware")
        )
        action.add_argument(
            "--shards", type=_positive_int, default=None, metavar="C", help="colour-shard into C colours"
        )
        action.add_argument(
            "--jobs", type=_positive_int, default=1, metavar="N", help="workers per sharded run"
        )
        _add_machine_arguments(action)
        if mode == "enum":
            action.add_argument(
                "--limit", type=_positive_int, default=None, help="triangles per pagination page"
            )
    client_actions.add_parser("jobs", help="list jobs (live and stored)")
    job_action = client_actions.add_parser("job", help="show one job")
    job_action.add_argument("id", help="job id")
    watch_action = client_actions.add_parser("watch", help="follow a job's server-sent events")
    watch_action.add_argument("id", help="job id")

    lint_parser = subparsers.add_parser(
        "lint", help="run the AST-based invariant analyzer over the tree"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    lint_parser.add_argument(
        "--root", default=".", help="repo root that paths and the baseline are relative to"
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (CI gate mode)",
    )
    lint_parser.add_argument(
        "--format",
        dest="output_format",
        choices=("human", "json"),
        default="human",
        help="report format (json is the repro-lint/v1 document CI archives)",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default <root>/.repro-lint-baseline.json)",
    )
    lint_parser.add_argument(
        "--no-baseline", action="store_true", help="report every finding, ignoring the baseline"
    )
    lint_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline file and exit",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )

    return parser


def _command_enumerate(arguments: argparse.Namespace) -> int:
    graph = read_edge_list(arguments.graph)
    params = _machine_params(arguments)
    engine = TriangleEngine(graph, params=params)
    result = engine.run(
        arguments.algorithm,
        seed=arguments.seed,
        collect=arguments.print_triangles,
    )
    print(f"graph: {result.num_vertices} vertices, {result.num_edges} edges")
    print(f"algorithm: {arguments.algorithm}  machine: M={params.memory_words}, B={params.block_words}")
    print(f"triangles: {result.triangle_count}")
    print(f"simulated I/Os: {result.io.total} (reads {result.io.reads}, writes {result.io.writes})")
    print(f"peak disk usage: {result.disk_peak_words} words")
    if arguments.print_triangles and result.triangles is not None:
        for triangle in result.triangles:
            print("\t".join(str(v) for v in triangle))
    return 0


def _parse_algorithm_filter(tokens: Sequence[str] | None) -> list[str]:
    """Resolve the ``compare --algorithms`` filter into registry names.

    Tokens may be space-separated, comma-separated, or both (benchmark and
    CI legs pass one comma-joined token so the whole filter is a single
    shell word).  Unknown names raise :class:`SystemExit` with the
    available registry, mirroring argparse's own choice errors.
    """
    if tokens is None:
        return _default_compare_algorithms()
    names = [name for token in tokens for name in token.split(",") if name]
    known = set(algorithm_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise SystemExit(
            f"error: unknown algorithm(s) {', '.join(map(repr, unknown))}; "
            f"available: {', '.join(sorted(known))}"
        )
    if not names:
        raise SystemExit("error: --algorithms needs at least one algorithm name")
    return names


def _command_compare(arguments: argparse.Namespace) -> int:
    graph = read_edge_list(arguments.graph)
    params = _machine_params(arguments)
    algorithms = _parse_algorithm_filter(arguments.algorithms)
    # ``--jobs N`` without an explicit shard count shards by N colours, so
    # that asking for parallelism alone does something useful; the printed
    # table is bit-identical for any N at a fixed shard count.
    shards = arguments.shards
    if shards is None and arguments.jobs > 1:
        shards = arguments.jobs
    if shards is None and (
        arguments.task_timeout is not None
        or arguments.max_retries is not None
        or arguments.pool is not None
    ):
        raise SystemExit(
            "error: --task-timeout/--max-retries/--pool tune sharded execution; "
            "pass --shards C (or --jobs N) to enable it"
        )
    # One engine: the graph is canonicalised once and shared by every run.
    engine = TriangleEngine(graph, params=params)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"machine: M={params.memory_words}, B={params.block_words}")
    if shards is not None:
        print(f"sharding: {shards} colours ({shards ** 3} colour triples max)")
    print(f"{'algorithm':16s} {'triangles':>10s} {'I/Os':>12s} {'reads':>10s} {'writes':>10s}")
    for algorithm in algorithms:
        # Sharding is only defined for explicit-machine algorithms; an
        # opted-in oblivious/in-memory algorithm simply runs serially
        # instead of aborting the sweep mid-table.
        shardable = get_algorithm(algorithm).substrate == "machine"
        result = engine.run(
            algorithm,
            seed=arguments.seed,
            collect=False,
            shards=shards if shardable else None,
            jobs=arguments.jobs if shardable else 1,
            task_timeout=arguments.task_timeout if shardable else None,
            max_retries=arguments.max_retries if shardable else None,
            pool=arguments.pool if shardable else None,
        )
        suffix = "" if shardable or shards is None else "  (serial: not a machine algorithm)"
        print(
            f"{algorithm:16s} {result.triangle_count:10d} {result.io.total:12d} "
            f"{result.io.reads:10d} {result.io.writes:10d}{suffix}"
        )
    return 0


def _command_algorithms(arguments: argparse.Namespace) -> int:
    specs = algorithm_specs()
    print(f"{'name':16s} {'section':12s} {'substrate':12s} {'seed':5s} I/O bound")
    for spec in specs:
        section = spec.section.split(" ")[0]
        seed_flag = "yes" if spec.accepts_seed else "no"
        print(f"{spec.name:16s} {section:12s} {spec.substrate:12s} {seed_flag:5s} {spec.io_bound}")
    if arguments.verbose:
        for spec in specs:
            print(f"\n{spec.name}: {spec.summary}")
            schema = spec.options_schema()
            if not schema:
                print("  options: (none)")
                continue
            print("  options:")
            for row in schema:
                print(f"    {row['name']}: {row['type']} = {row['default']!r}")
    else:
        print("\nrun `repro algorithms --verbose` for summaries and options schemas")
    return 0


def _command_stats(arguments: argparse.Namespace) -> int:
    graph = read_edge_list(arguments.graph)
    params = _machine_params(arguments)
    statistics = triangle_statistics(
        graph, algorithm=arguments.algorithm, params=params, seed=arguments.seed
    )
    coefficients = clustering_coefficients(graph, statistics)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"triangles: {statistics.triangle_count}")
    print(f"transitivity: {transitivity(graph, statistics):.4f}")
    average = sum(coefficients.values()) / len(coefficients) if coefficients else 0.0
    print(f"average clustering coefficient: {average:.4f}")
    print(f"simulated I/Os: {statistics.simulated_ios}")
    print(f"top {arguments.top} vertices by triangle participation:")
    for vertex, count in statistics.per_vertex.most_common(arguments.top):
        print(f"  {vertex}\t{count} triangles\tC={coefficients.get(vertex, 0.0):.3f}")
    return 0


def _command_generate(arguments: argparse.Namespace) -> int:
    if arguments.kind == "random":
        graph = erdos_renyi_gnm(arguments.vertices, arguments.edges, seed=arguments.seed)
        description = f"Erdos-Renyi G(n={arguments.vertices}, m={arguments.edges}), seed={arguments.seed}"
    elif arguments.kind == "clique":
        graph = clique(arguments.size)
        description = f"clique on {arguments.size} vertices"
    elif arguments.kind == "tripartite":
        graph = complete_tripartite(arguments.size, arguments.size, arguments.size)
        description = f"complete tripartite with parts of {arguments.size}"
    elif arguments.kind == "powerlaw":
        graph = chung_lu_power_law(
            arguments.vertices, arguments.edges, exponent=arguments.exponent, seed=arguments.seed
        )
        description = (
            f"Chung-Lu power law (n={arguments.vertices}, m={arguments.edges}, "
            f"exponent={arguments.exponent}), seed={arguments.seed}"
        )
    elif arguments.kind == "community":
        intra = max(1, (arguments.edges * 4) // 5)
        graph = planted_partition(
            arguments.communities,
            arguments.size,
            intra,
            arguments.edges - intra,
            seed=arguments.seed,
        )
        description = (
            f"planted partition ({arguments.communities} communities of {arguments.size}, "
            f"m={arguments.edges}), seed={arguments.seed}"
        )
    elif arguments.kind == "bipartite":
        side = max(2, int(arguments.edges**0.5) + 1)
        graph = random_bipartite(side, side, arguments.edges, seed=arguments.seed)
        description = f"random bipartite ({side}x{side}, m={arguments.edges}), seed={arguments.seed}"
    else:
        graph = planted_triangles(
            arguments.triangles, filler_bipartite_edges=arguments.edges, seed=arguments.seed
        )
        description = f"{arguments.triangles} planted triangles plus bipartite filler"
    write_edge_list(graph, arguments.output, header=[f"generated by repro: {description}"])
    print(f"wrote {graph.num_edges} edges ({description}) to {arguments.output}")
    return 0


def _command_experiments(arguments: argparse.Namespace) -> int:
    from repro.experiments.run_all import main as run_all_main

    return run_all_main(arguments.arguments)


def _command_serve(arguments: argparse.Namespace) -> int:
    """Run the service until SIGTERM/SIGINT, then shut down gracefully.

    The HTTP loop runs on a background thread while the main thread waits
    on an event the signal handlers set: calling ``httpd.shutdown()`` from
    a handler interrupting ``serve_forever`` on the *same* thread would
    deadlock, so the handler only flags and the main thread does the work.
    Teardown order: stop accepting, drain in-flight jobs, close every
    engine (unlinking its shared-memory segments), shut the process-wide
    persistent worker pool down.
    """
    import signal
    import threading

    from repro.experiments.store import ResultStore
    from repro.poolexec.pool import shared_pool
    from repro.service.server import TriangleService

    store = None if arguments.no_store else ResultStore(arguments.results)
    service = TriangleService(
        host=arguments.host,
        port=arguments.port,
        store=store,
        pool=arguments.pool,
        max_workers=arguments.workers,
        verbose=arguments.verbose,
    )
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        print(f"received {signal.Signals(signum).name}; draining and shutting down", flush=True)
        stop.set()

    previous = {
        signum: signal.signal(signum, _on_signal) for signum in (signal.SIGINT, signal.SIGTERM)
    }
    service.start()
    store_note = "off" if store is None else str(store.root)
    print(
        f"listening on {service.url} "
        f"(pool={arguments.pool}, workers={arguments.workers}, store={store_note})",
        flush=True,
    )
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        service.close()
        shared_pool().shutdown()
    print("shutdown complete", flush=True)
    return 0


def _print_job(job: dict) -> None:
    print(f"job {job['id']}: {job['state']} (source={job['source']}, cache_hit={job['cache_hit']})")
    result = job.get("result")
    if result:
        print(f"  triangles: {result.get('triangles')}")
        if result.get("total_ios") is not None:
            print(
                f"  simulated I/Os: {result['total_ios']} "
                f"(reads {result.get('reads')}, writes {result.get('writes')})"
            )
        if result.get("execution_seconds") is not None:
            print(f"  execution: {result['execution_seconds']}s")
    if job.get("error"):
        print(f"  error: {job['error']}")


def _command_client(arguments: argparse.Namespace) -> int:
    import json as json_module
    import os

    from repro.service.client import DEFAULT_URL, ServiceClient
    from repro.service.protocol import ServiceError

    url = arguments.url or os.environ.get("REPRO_SERVICE_URL") or DEFAULT_URL
    client = ServiceClient(url, timeout=arguments.timeout)

    def _register(path: str, name: str | None = None) -> str:
        graph = read_edge_list(path)
        response = client.register_graph(edges=list(graph.edges()), name=name)
        entry = response["graph"]
        verb = "registered" if response["created"] else "already registered"
        print(
            f"{verb} graph {entry['id']} "
            f"({entry['num_vertices']} vertices, {entry['num_edges']} edges)"
        )
        return entry["id"]

    try:
        if arguments.action == "health":
            print(json_module.dumps(client.health(), indent=2, sort_keys=True))
        elif arguments.action == "stats":
            print(json_module.dumps(client.stats(), indent=2, sort_keys=True))
        elif arguments.action == "register":
            _register(arguments.graph, arguments.name)
        elif arguments.action in ("count", "enum"):
            graph_id = _register(arguments.graph)
            response = client.submit(
                graph_id,
                mode=arguments.action,
                algorithm=arguments.algorithm,
                memory=arguments.memory,
                block=arguments.block,
                seed=arguments.seed,
                shards=arguments.shards,
                jobs=arguments.jobs,
            )
            job = response["job"]
            if job["state"] != "done":
                job = client.wait(job["id"])
            _print_job(job)
            if arguments.action == "enum":
                for triangle in client.triangles(job["id"], limit=arguments.limit):
                    print("\t".join(str(v) for v in triangle))
        elif arguments.action == "jobs":
            listing = client.jobs()
            for job in listing["jobs"]:
                print(f"{job['id']}  {job['state']:9s}  graph={job['graph']}  hits={job['hits']}")
            for job in listing["stored"]:
                print(f"{job['id']}  stored     (from a previous server run)")
            if not listing["jobs"] and not listing["stored"]:
                print("no jobs")
        elif arguments.action == "job":
            _print_job(client.job(arguments.id))
        elif arguments.action == "watch":
            for event, data in client.events(arguments.id):
                print(f"{event}: {json_module.dumps(data, sort_keys=True)}")
        else:  # pragma: no cover - argparse enforces the choices
            raise SystemExit(f"error: unknown client action {arguments.action!r}")
    except ServiceError as error:
        raise SystemExit(f"error: {error} (code={error.code})") from None
    except BrokenPipeError:
        # Piping into `head` closes stdout early; redirect the remaining
        # flush at interpreter exit to devnull instead of tracebacking.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


def _command_lint(arguments: argparse.Namespace) -> int:
    # Imported here so the analyzer stays out of every other subcommand's
    # startup path.
    import json
    from pathlib import Path

    from repro.analysis.lint import (
        Baseline,
        render_human,
        render_json,
        rule_catalog,
        run_lint,
    )
    from repro.analysis.lint.baseline import DEFAULT_BASELINE_NAME

    if arguments.list_rules:
        for rule in rule_catalog():
            print(f"{rule['code']} {rule['name']}: {rule['summary']}")
        return 0
    root = Path(arguments.root)
    baseline_path = (
        Path(arguments.baseline) if arguments.baseline else root / DEFAULT_BASELINE_NAME
    )
    baseline = None if arguments.no_baseline else Baseline.load(baseline_path)
    report = run_lint(arguments.paths, root=root, baseline=baseline)
    if arguments.write_baseline:
        Baseline.from_findings(report.all_findings).write(baseline_path)
        print(f"wrote {len(report.all_findings)} findings to {baseline_path}")
        return 0
    if arguments.output_format == "json":
        print(json.dumps(render_json(report, strict=arguments.strict), indent=2, sort_keys=True))
    else:
        print(render_human(report, strict=arguments.strict))
    return report.exit_code(strict=arguments.strict)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro`` console script."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "experiments":
        # Forward everything after the subcommand verbatim (argparse's
        # REMAINDER handling of options is unreliable across versions).
        from repro.experiments.run_all import main as run_all_main

        return run_all_main(argv[1:])
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "enumerate": _command_enumerate,
        "compare": _command_compare,
        "algorithms": _command_algorithms,
        "stats": _command_stats,
        "generate": _command_generate,
        "experiments": _command_experiments,
        "serve": _command_serve,
        "client": _command_client,
        "lint": _command_lint,
    }
    return handlers[arguments.command](arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
