"""Workload generators for the experiments.

The paper's analysis is parameterised only by the number of edges ``E`` and
the number of triangles ``t``, so the generators below aim to cover the
relevant regimes rather than any particular real-world dataset:

* sparse random graphs (Erdős–Rényi ``G(n, m)``) -- the generic workload;
* cliques -- the triangle-dense extreme (``t = Theta(E^{3/2})``) used by the
  lower-bound and optimality experiments;
* skewed (preferential-attachment) graphs -- exercise the high-degree phase;
* power-law (Chung-Lu) graphs -- tunable degree-tail skew;
* planted-partition (community) graphs -- clustered, triangle-rich structure;
* random bipartite graphs -- triangle-free at arbitrary density;
* triangle-free graphs and planted-triangle graphs -- output-sensitivity
  experiments where ``t`` is controlled exactly;
* tripartite "Sells" instances -- the database join motivation of Section 1.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from repro.graph.graph import Graph


def erdos_renyi_gnm(num_vertices: int, num_edges: int, seed: int | None = None) -> Graph:
    """A uniformly random simple graph with exactly ``num_edges`` edges.

    Sampling is by rejection over vertex pairs, which is efficient whenever
    ``num_edges`` is well below ``C(num_vertices, 2)``.
    """
    if num_vertices < 2 and num_edges > 0:
        raise ValueError("cannot place edges on fewer than two vertices")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError(
            f"{num_edges} edges requested but a simple graph on {num_vertices} "
            f"vertices has at most {max_edges}"
        )
    rng = random.Random(seed)
    graph = Graph(vertices=range(num_vertices))
    chosen: set[tuple[int, int]] = set()
    if num_edges > max_edges // 2:
        # Dense regime: sample the complement of a random subset of all pairs.
        all_pairs = [(u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)]
        rng.shuffle(all_pairs)
        chosen = set(all_pairs[:num_edges])
    else:
        while len(chosen) < num_edges:
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
            if u == v:
                continue
            if u > v:
                u, v = v, u
            chosen.add((u, v))
    for u, v in chosen:
        graph.add_edge(u, v)
    return graph


def clique(num_vertices: int) -> Graph:
    """The complete graph on ``num_vertices`` vertices.

    A clique of ``sqrt(E)`` vertices has ``Theta(E^{3/2})`` triangles, the
    worst case used to show the upper bounds are tight (Theorem 3).
    """
    graph = Graph(vertices=range(num_vertices))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            graph.add_edge(u, v)
    return graph


def complete_bipartite(left: int, right: int) -> Graph:
    """The complete bipartite graph ``K_{left,right}`` (triangle-free)."""
    graph = Graph(vertices=range(left + right))
    for u in range(left):
        for v in range(left, left + right):
            graph.add_edge(u, v)
    return graph


def complete_tripartite(a: int, b: int, c: int) -> Graph:
    """The complete tripartite graph; every cross-part triple is a triangle."""
    graph = Graph(vertices=range(a + b + c))
    first = range(a)
    second = range(a, a + b)
    third = range(a + b, a + b + c)
    for u in first:
        for v in second:
            graph.add_edge(u, v)
    for u in first:
        for w in third:
            graph.add_edge(u, w)
    for v in second:
        for w in third:
            graph.add_edge(v, w)
    return graph


def path_graph(num_vertices: int) -> Graph:
    """A simple path (triangle-free control workload)."""
    graph = Graph(vertices=range(num_vertices))
    for u in range(num_vertices - 1):
        graph.add_edge(u, u + 1)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """A two-dimensional grid (triangle-free control workload)."""
    graph = Graph(vertices=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            if c + 1 < cols:
                graph.add_edge(vertex, vertex + 1)
            if r + 1 < rows:
                graph.add_edge(vertex, vertex + cols)
    return graph


def barabasi_albert(num_vertices: int, edges_per_vertex: int, seed: int | None = None) -> Graph:
    """A preferential-attachment graph with a skewed degree distribution.

    Used to exercise the high-degree phase of the cache-aware algorithm
    (vertices with degree above ``sqrt(E * M)``) and the local high-degree
    removal of the cache-oblivious recursion.
    """
    if edges_per_vertex < 1:
        raise ValueError("each new vertex must attach with at least one edge")
    if num_vertices <= edges_per_vertex:
        raise ValueError("need more vertices than edges per vertex")
    rng = random.Random(seed)
    graph = Graph(vertices=range(num_vertices))
    # Start from a small clique so the first attachments have targets.
    core = edges_per_vertex + 1
    targets: list[int] = []
    for u in range(core):
        for v in range(u + 1, core):
            graph.add_edge(u, v)
            targets.extend((u, v))
    for new_vertex in range(core, num_vertices):
        chosen: set[int] = set()
        while len(chosen) < edges_per_vertex:
            chosen.add(rng.choice(targets))
        for target in chosen:
            graph.add_edge(new_vertex, target)
            targets.extend((new_vertex, target))
    return graph


def planted_triangles(
    num_triangles: int,
    filler_bipartite_edges: int = 0,
    seed: int | None = None,
) -> Graph:
    """A graph with exactly ``num_triangles`` triangles.

    The triangles are vertex-disjoint; optional filler edges form a random
    bipartite (hence triangle-free) graph on a separate set of vertices, so
    the total triangle count stays exactly ``num_triangles`` while the edge
    count can be scaled independently -- the knob the output-sensitivity
    experiment needs.
    """
    rng = random.Random(seed)
    graph = Graph()
    next_vertex = 0
    for _ in range(num_triangles):
        a, b, c = next_vertex, next_vertex + 1, next_vertex + 2
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(a, c)
        next_vertex += 3
    if filler_bipartite_edges > 0:
        side = max(2, int(filler_bipartite_edges**0.5) + 1)
        left = [next_vertex + i for i in range(side)]
        right = [next_vertex + side + i for i in range(side)]
        chosen: set[tuple[int, int]] = set()
        while len(chosen) < min(filler_bipartite_edges, side * side):
            u = rng.choice(left)
            v = rng.choice(right)
            chosen.add((u, v))
        for u, v in chosen:
            graph.add_edge(u, v)
    return graph


def chung_lu_power_law(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.5,
    seed: int | None = None,
) -> Graph:
    """A Chung-Lu random graph whose expected degrees follow a power law.

    Vertex ``i`` gets weight ``(i + 1)^(-1/(exponent - 1))`` and edge
    endpoints are drawn proportionally to weight, which yields a degree
    distribution with tail exponent about ``exponent`` -- heavier-tailed than
    preferential attachment and with tunable skew.  Duplicate edges and
    self-loops are rejected, so the graph is simple with exactly
    ``num_edges`` edges.
    """
    if exponent <= 1:
        raise ValueError(f"power-law exponent must exceed 1, got {exponent}")
    if num_vertices < 2 and num_edges > 0:
        raise ValueError("cannot place edges on fewer than two vertices")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError(
            f"{num_edges} edges requested but a simple graph on {num_vertices} "
            f"vertices has at most {max_edges}"
        )
    rng = random.Random(seed)
    alpha = 1.0 / (exponent - 1.0)
    cumulative: list[float] = []
    total = 0.0
    for index in range(num_vertices):
        total += (index + 1) ** -alpha
        cumulative.append(total)

    def draw() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    graph = Graph(vertices=range(num_vertices))
    chosen: set[tuple[int, int]] = set()
    # Weighted rejection sampling; heavy collisions on the head vertices can
    # stall it near the density limit, so fall back to uniform pairs then.
    attempts = 0
    attempt_budget = 50 * num_edges + 1000
    while len(chosen) < num_edges:
        if attempts < attempt_budget:
            u, v = draw(), draw()
            attempts += 1
        else:
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        chosen.add((u, v))
    for u, v in chosen:
        graph.add_edge(u, v)
    return graph


def planted_partition(
    num_communities: int,
    community_size: int,
    intra_edges: int,
    inter_edges: int,
    seed: int | None = None,
) -> Graph:
    """A community-structured random graph (planted-partition model).

    ``intra_edges`` edges are sampled inside uniformly chosen communities and
    ``inter_edges`` between distinct communities; dense communities make the
    graph triangle-rich while the sparse inter-community edges keep the
    global structure clustered, the typical shape of social networks.
    """
    if num_communities < 1 or community_size < 2:
        raise ValueError("need at least one community of at least two vertices")
    max_intra = num_communities * community_size * (community_size - 1) // 2
    if intra_edges > max_intra:
        raise ValueError(
            f"{intra_edges} intra-community edges requested but the partition "
            f"holds at most {max_intra}"
        )
    if inter_edges > 0 and num_communities < 2:
        raise ValueError("inter-community edges need at least two communities")
    max_inter = community_size * community_size * num_communities * (num_communities - 1) // 2
    if inter_edges > max_inter:
        raise ValueError(
            f"{inter_edges} inter-community edges requested but the partition "
            f"holds at most {max_inter}"
        )
    rng = random.Random(seed)
    graph = Graph(vertices=range(num_communities * community_size))

    def member(community: int) -> int:
        return community * community_size + rng.randrange(community_size)

    chosen: set[tuple[int, int]] = set()
    while len(chosen) < intra_edges:
        community = rng.randrange(num_communities)
        u, v = member(community), member(community)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        chosen.add((u, v))
    placed_inter = 0
    while placed_inter < inter_edges:
        first = rng.randrange(num_communities)
        second = rng.randrange(num_communities)
        if first == second:
            continue
        u, v = member(first), member(second)
        if u > v:
            u, v = v, u
        if (u, v) in chosen:
            continue
        chosen.add((u, v))
        placed_inter += 1
    for u, v in chosen:
        graph.add_edge(u, v)
    return graph


def random_bipartite(
    left: int, right: int, num_edges: int, seed: int | None = None
) -> Graph:
    """A uniformly random bipartite graph (triangle-free by construction)."""
    if left < 1 or right < 1:
        raise ValueError("both sides of a bipartite graph must be non-empty")
    if num_edges > left * right:
        raise ValueError(
            f"{num_edges} edges requested but K_{{{left},{right}}} has only {left * right}"
        )
    rng = random.Random(seed)
    graph = Graph(vertices=range(left + right))
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < num_edges:
        u = rng.randrange(left)
        v = left + rng.randrange(right)
        chosen.add((u, v))
    for u, v in chosen:
        graph.add_edge(u, v)
    return graph


@dataclass(frozen=True)
class SellsInstance:
    """A synthetic instance of the paper's database example.

    The relation ``Sells(salesperson, brand, productType)`` is in 5th normal
    form exactly when it equals the natural join of its three binary
    projections; triangles of the tripartite union graph are the tuples of
    that join.
    """

    graph: Graph
    salespeople: tuple[str, ...]
    brands: tuple[str, ...]
    product_types: tuple[str, ...]
    sells_pairs: tuple[tuple[str, str], ...]
    brand_type_pairs: tuple[tuple[str, str], ...]
    sells_types: tuple[tuple[str, str], ...]


def sells_instance(
    num_salespeople: int,
    num_brands: int,
    num_types: int,
    pair_probability: float = 0.3,
    seed: int | None = None,
) -> SellsInstance:
    """Generate a random ``Sells`` instance as a tripartite graph.

    Each salesperson-brand, brand-type and salesperson-type pair is present
    independently with probability ``pair_probability``; a triangle of the
    union graph corresponds to one tuple of the reconstructed ``Sells``
    relation.
    """
    if not 0 <= pair_probability <= 1:
        raise ValueError(f"pair probability must lie in [0, 1], got {pair_probability}")
    rng = random.Random(seed)
    salespeople = tuple(f"s{i}" for i in range(num_salespeople))
    brands = tuple(f"b{i}" for i in range(num_brands))
    types = tuple(f"t{i}" for i in range(num_types))
    graph = Graph(vertices=salespeople + brands + types)
    sells_pairs = []
    brand_type_pairs = []
    sells_types = []
    for s in salespeople:
        for b in brands:
            if rng.random() < pair_probability:
                graph.add_edge(s, b)
                sells_pairs.append((s, b))
    for b in brands:
        for t in types:
            if rng.random() < pair_probability:
                graph.add_edge(b, t)
                brand_type_pairs.append((b, t))
    for s in salespeople:
        for t in types:
            if rng.random() < pair_probability:
                graph.add_edge(s, t)
                sells_types.append((s, t))
    return SellsInstance(
        graph=graph,
        salespeople=salespeople,
        brands=brands,
        product_types=types,
        sells_pairs=tuple(sells_pairs),
        brand_type_pairs=tuple(brand_type_pairs),
        sells_types=tuple(sells_types),
    )


def tripartite_random(part_size: int, pair_probability: float, seed: int | None = None) -> Graph:
    """A random tripartite graph with equal part sizes (join-style workload)."""
    instance = sells_instance(
        num_salespeople=part_size,
        num_brands=part_size,
        num_types=part_size,
        pair_probability=pair_probability,
        seed=seed,
    )
    return instance.graph
