"""Reading and writing edge lists as plain text files.

The format is the de-facto standard used by SNAP / DIMACS-style edge lists:
one edge per line, two whitespace-separated vertex labels, ``#`` starting a
comment line.  Labels that look like integers are converted to ``int`` so
that synthetic graphs round-trip exactly; everything else stays a string.

These helpers exist for the command-line interface (:mod:`repro.cli`) and
for users who want to run the algorithms on their own graph files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph


def _parse_label(token: str):
    """Convert an edge-list token to ``int`` when possible, else keep the string."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(
    path: str | Path,
    comment_prefix: str = "#",
    extra_columns: str = "ignore",
) -> Graph:
    """Read a whitespace-separated edge-list file into a :class:`Graph`.

    Lines starting with ``comment_prefix`` (after stripping) and blank lines
    are ignored.  Duplicate edges are merged; self-loops raise
    :class:`repro.exceptions.GraphFormatError` with the offending line number.

    ``extra_columns`` says what to do with lines carrying more than two
    tokens (SNAP exports often append weights or timestamps): ``"ignore"``
    (the default) keeps only the two endpoint labels, ``"error"`` raises
    :class:`~repro.exceptions.GraphFormatError` with the line number.

    An empty ``comment_prefix`` is rejected: ``line.startswith("")`` is true
    for *every* line, so it would silently skip the whole file and return an
    empty graph.
    """
    if not comment_prefix:
        raise GraphFormatError(
            "comment_prefix must be a non-empty string (an empty prefix matches "
            "every line and would silently produce an empty graph)"
        )
    if extra_columns not in ("ignore", "error"):
        raise ValueError(f"extra_columns must be 'ignore' or 'error', got {extra_columns!r}")
    graph = Graph()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(comment_prefix):
                continue
            tokens = line.split()
            if len(tokens) < 2:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected two vertex labels, got {line!r}"
                )
            if len(tokens) > 2 and extra_columns == "error":
                raise GraphFormatError(
                    f"{path}:{line_number}: expected exactly two vertex labels, got "
                    f"{line!r} (pass extra_columns='ignore' to drop trailing columns)"
                )
            u, v = _parse_label(tokens[0]), _parse_label(tokens[1])
            if u == v:
                raise GraphFormatError(f"{path}:{line_number}: self-loop on {u!r}")
            graph.add_edge(u, v)
    return graph


def write_edge_list(
    graph: Graph, path: str | Path, header: Iterable[str] = ()
) -> None:
    """Write ``graph`` as a whitespace-separated edge-list file.

    ``header`` lines are written first as ``#`` comments.  Edges are written
    once each, sorted by their string representation so output is stable.
    """
    path = Path(path)
    lines: list[str] = [f"# {entry}" for entry in header]
    edges = sorted((str(u), str(v)) if str(u) <= str(v) else (str(v), str(u)) for u, v in graph.edges())
    lines.extend(f"{u}\t{v}" for u, v in edges)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
