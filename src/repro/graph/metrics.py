"""Triangle-based graph statistics built on the enumeration API.

The applications that motivate the paper (community detection, social
network analysis) rarely want the raw list of triangles; they want
aggregates: per-vertex triangle counts, local clustering coefficients, the
global transitivity, per-edge support (used by truss decompositions).  This
module computes all of these by *streaming* the triangles of any enumeration
algorithm through an accumulating sink -- i.e. with the memory footprint of
the aggregate, never materialising the triangle list, which is exactly the
enumeration-vs-listing distinction the paper draws.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.graph.graph import Graph

Vertex = Hashable


@dataclass
class TriangleStatistics:
    """Aggregated triangle statistics of one graph."""

    triangle_count: int
    per_vertex: Counter = field(default_factory=Counter)
    per_edge: Counter = field(default_factory=Counter)
    simulated_ios: int = 0

    def triangles_of(self, vertex: Vertex) -> int:
        """Number of triangles the vertex participates in."""
        return self.per_vertex.get(vertex, 0)

    def support_of(self, u: Vertex, v: Vertex) -> int:
        """Number of triangles containing the edge ``{u, v}`` (its *support*)."""
        return self.per_edge.get(frozenset((u, v)), 0)


class _StatisticsSink:
    """Sink accumulating per-vertex and per-edge triangle counts."""

    def __init__(self) -> None:
        self.count = 0
        self.per_vertex: Counter = Counter()
        self.per_edge: Counter = Counter()

    def emit(self, a: Any, b: Any, c: Any) -> None:
        self.count += 1
        self.per_vertex[a] += 1
        self.per_vertex[b] += 1
        self.per_vertex[c] += 1
        self.per_edge[frozenset((a, b))] += 1
        self.per_edge[frozenset((b, c))] += 1
        self.per_edge[frozenset((a, c))] += 1


def triangle_statistics(
    graph: Graph,
    algorithm: str = "cache_aware",
    params: MachineParams | None = None,
    seed: int = 0,
    engine: TriangleEngine | None = None,
) -> TriangleStatistics:
    """Stream all triangles of ``graph`` and return the aggregated statistics.

    Pass a prepared ``engine`` (built from the same graph) to reuse its
    canonicalisation across several statistics runs; otherwise a throwaway
    engine is built here.
    """
    sink = _StatisticsSink()
    engine = engine if engine is not None else TriangleEngine(graph, params=params)
    result = engine.run(algorithm, params=params, seed=seed, sink=sink, collect=False)
    return TriangleStatistics(
        triangle_count=sink.count,
        per_vertex=sink.per_vertex,
        per_edge=sink.per_edge,
        simulated_ios=result.io.total,
    )


def local_clustering_coefficient(graph: Graph, vertex: Vertex, statistics: TriangleStatistics) -> float:
    """The local clustering coefficient ``2T(v) / (deg(v) (deg(v) - 1))``."""
    degree = graph.degree(vertex)
    if degree < 2:
        return 0.0
    return 2.0 * statistics.triangles_of(vertex) / (degree * (degree - 1))


def clustering_coefficients(
    graph: Graph, statistics: TriangleStatistics | None = None, **enumeration_options: Any
) -> dict[Vertex, float]:
    """Local clustering coefficients of every vertex."""
    if statistics is None:
        statistics = triangle_statistics(graph, **enumeration_options)
    return {
        vertex: local_clustering_coefficient(graph, vertex, statistics)
        for vertex in graph.vertices()
    }


def transitivity(graph: Graph, statistics: TriangleStatistics | None = None, **enumeration_options: Any) -> float:
    """The global transitivity ``3 * triangles / open wedges``."""
    if statistics is None:
        statistics = triangle_statistics(graph, **enumeration_options)
    wedges = sum(
        degree * (degree - 1) // 2
        for degree in (graph.degree(v) for v in graph.vertices())
    )
    if wedges == 0:
        return 0.0
    return 3.0 * statistics.triangle_count / wedges


def average_clustering(graph: Graph, **enumeration_options: Any) -> float:
    """The average of the local clustering coefficients (0 for an empty graph)."""
    coefficients = clustering_coefficients(graph, **enumeration_options)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)
