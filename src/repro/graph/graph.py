"""Simple undirected graphs and the paper's canonical degree ordering.

The paper assumes the input graph is simple (no self-loops, no parallel
edges) and that vertices are totally ordered by degree, with ties broken in
an arbitrary but consistent way.  Each edge ``{v1, v2}`` is represented as
the tuple ``(v1, v2)`` with ``v1 < v2`` in that order, and the edge list is
sorted lexicographically -- so for each vertex the neighbours that follow it
in the ordering are stored consecutively.  :class:`DegreeOrder` realises this
representation by relabelling vertices with their *rank* in the degree order,
which turns the ordering into plain integer comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.exceptions import GraphFormatError

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class Graph:
    """A simple undirected graph over hashable vertex labels."""

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        vertices: Iterable[Vertex] = (),
    ) -> None:
        self._adjacency: dict[Vertex, set[Vertex]] = {}
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add an isolated vertex (a no-op if it already exists)."""
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``.

        Self-loops are rejected (the paper assumes a simple graph); adding an
        existing edge is a no-op, so edge lists with duplicates are merged
        silently.
        """
        if u == v:
            raise GraphFormatError(f"self-loop on vertex {u!r} is not allowed in a simple graph")
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add many undirected edges (bulk construction path).

        Same semantics as calling :meth:`add_edge` per pair; the adjacency
        dictionary is looked up once per endpoint with ``setdefault`` inside
        a single loop, which is what the join layer uses to build its union
        graphs from whole relations at a time.
        """
        adjacency = self._adjacency
        for u, v in edges:
            if u == v:
                raise GraphFormatError(
                    f"self-loop on vertex {u!r} is not allowed in a simple graph"
                )
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (including isolated ones)."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return sum(len(neighbours) for neighbours in self._adjacency.values()) // 2

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adjacency)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        return v in self._adjacency.get(u, ())

    def degree(self, vertex: Vertex) -> int:
        """Degree of ``vertex`` (0 for unknown vertices)."""
        return len(self._adjacency.get(vertex, ()))

    def neighbors(self, vertex: Vertex) -> set[Vertex]:
        """The neighbour set of ``vertex`` (a copy)."""
        return set(self._adjacency.get(vertex, ()))

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once with endpoints in label order.

        Label order is only used for deduplication; the canonical order used
        by the algorithms is the *degree* order provided by
        :meth:`degree_order`.
        """
        seen: set[frozenset[Vertex]] = set()
        for u, neighbours in self._adjacency.items():
            for v in neighbours:
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                yield (u, v)

    # ------------------------------------------------------------------
    # canonical representation
    # ------------------------------------------------------------------
    def degree_order(self) -> "DegreeOrder":
        """Compute the canonical degree ordering of this graph."""
        ranked = sorted(self._adjacency, key=lambda v: (len(self._adjacency[v]), repr(v), str(v)))
        rank_of = {vertex: rank for rank, vertex in enumerate(ranked)}
        edges: list[tuple[int, int]] = []
        for u, v in self.edges():
            ru, rv = rank_of[u], rank_of[v]
            if ru > rv:
                ru, rv = rv, ru
            edges.append((ru, rv))
        edges.sort()
        return DegreeOrder(vertex_of=tuple(ranked), rank_of=rank_of, edges=edges)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an edge list, merging duplicates."""
        return cls(edges=edges)

    def copy(self) -> "Graph":
        """Return an independent copy of the graph."""
        clone = Graph()
        clone._adjacency = {v: set(ns) for v, ns in self._adjacency.items()}
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(V={self.num_vertices}, E={self.num_edges})"


@dataclass(frozen=True)
class DegreeOrder:
    """The canonical ranked representation of a graph.

    Attributes
    ----------
    vertex_of:
        ``vertex_of[rank]`` is the original vertex label of the given rank.
    rank_of:
        Inverse mapping from label to rank.
    edges:
        Canonical edge list: tuples ``(u, v)`` of ranks with ``u < v``,
        sorted lexicographically.
    """

    vertex_of: tuple[Vertex, ...]
    rank_of: dict[Vertex, int]
    edges: list[tuple[int, int]]

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.vertex_of)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def degree(self, rank: int) -> int:
        """Degree of the vertex with the given rank (linear scan; for tests)."""
        return sum(1 for u, v in self.edges if u == rank or v == rank)

    def to_labels(self, triangle: tuple[int, int, int]) -> tuple[Vertex, Vertex, Vertex]:
        """Translate a ranked triangle back to original vertex labels."""
        a, b, c = triangle
        return (self.vertex_of[a], self.vertex_of[b], self.vertex_of[c])
