"""Moving edge lists between graphs, the explicit machine and the oblivious VM.

The input of every external-memory algorithm is an edge file already resident
on disk, so these constructors charge no I/Os; every subsequent access by the
algorithms is charged by the machine or the cache simulator.
"""

from __future__ import annotations

from typing import Sequence

from repro.extmem.disk import ExtFile
from repro.extmem.machine import Machine
from repro.extmem.oblivious import ExtVector, ObliviousVM
from repro.graph.graph import DegreeOrder, Graph
from repro.graph.validation import RankedEdge, check_canonical_edges


def edges_to_file(machine: Machine, edges: Sequence[RankedEdge], name: str = "edges") -> ExtFile:
    """Place a canonical edge list on the machine's disk as the input file."""
    check_canonical_edges(edges)
    return machine.file_from_records(edges, name=name)


def edges_to_vector(vm: ObliviousVM, edges: Sequence[RankedEdge], name: str = "edges") -> ExtVector:
    """Place a canonical edge list on the oblivious VM's disk as the input vector."""
    check_canonical_edges(edges)
    return vm.input_vector(edges, name=name)


def graph_to_file(machine: Machine, graph: Graph, name: str = "edges") -> tuple[ExtFile, DegreeOrder]:
    """Canonicalise ``graph`` and place its edge list on the machine's disk."""
    order = graph.degree_order()
    return edges_to_file(machine, order.edges, name=name), order


def graph_to_vector(vm: ObliviousVM, graph: Graph, name: str = "edges") -> tuple[ExtVector, DegreeOrder]:
    """Canonicalise ``graph`` and place its edge list on the VM's disk."""
    order = graph.degree_order()
    return edges_to_vector(vm, order.edges, name=name), order


def file_to_edges(file: ExtFile) -> list[RankedEdge]:
    """Read an edge file back into a Python list (tests/oracles only)."""
    from repro.extmem.disk import iter_records

    return list(iter_records(file))
