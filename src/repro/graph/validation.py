"""Validation and normalisation of edge lists.

The enumeration algorithms operate on the canonical representation produced
by :meth:`repro.graph.graph.Graph.degree_order`: integer-ranked edges
``(u, v)`` with ``u < v`` sorted lexicographically.  These helpers check and
produce that form for callers who start from raw edge lists.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import GraphFormatError

RankedEdge = tuple[int, int]


def normalize_edges(edges: Iterable[tuple[int, int]]) -> list[RankedEdge]:
    """Orient, deduplicate and sort an integer edge list.

    Raises :class:`repro.exceptions.GraphFormatError` on self-loops or
    negative vertex ids.
    """
    seen: set[RankedEdge] = set()
    for u, v in edges:
        if u == v:
            raise GraphFormatError(f"self-loop on vertex {u} is not allowed")
        if u < 0 or v < 0:
            raise GraphFormatError(f"vertex ids must be non-negative, got ({u}, {v})")
        if u > v:
            u, v = v, u
        seen.add((u, v))
    return sorted(seen)


def check_canonical_edges(edges: Sequence[RankedEdge]) -> None:
    """Verify that ``edges`` is in canonical form; raise otherwise.

    Canonical form means: every edge is a pair of non-negative integers
    ``(u, v)`` with ``u < v``, there are no duplicates and the list is sorted
    lexicographically.
    """
    previous: RankedEdge | None = None
    for edge in edges:
        if len(edge) != 2:
            raise GraphFormatError(f"edge {edge!r} is not a pair")
        u, v = edge
        if not isinstance(u, int) or not isinstance(v, int):
            raise GraphFormatError(f"edge {edge!r} has non-integer endpoints")
        if u < 0 or v < 0:
            raise GraphFormatError(f"edge {edge!r} has negative endpoints")
        if u >= v:
            raise GraphFormatError(f"edge {edge!r} is not oriented with u < v")
        if previous is not None:
            if edge == previous:
                raise GraphFormatError(f"duplicate edge {edge!r}")
            if edge < previous:
                raise GraphFormatError(
                    f"edge list is not sorted: {edge!r} follows {previous!r}"
                )
        previous = edge


def max_vertex(edges: Sequence[RankedEdge]) -> int:
    """Largest vertex id appearing in ``edges`` (-1 for an empty list)."""
    largest = -1
    for u, v in edges:
        if v > largest:
            largest = v
    return largest
