"""Graph representation, canonical degree ordering and workload generators."""

from repro.graph.graph import DegreeOrder, Graph
from repro.graph.generators import (
    barabasi_albert,
    clique,
    complete_bipartite,
    complete_tripartite,
    erdos_renyi_gnm,
    grid_graph,
    path_graph,
    planted_triangles,
    sells_instance,
    tripartite_random,
)
from repro.graph.io import edges_to_file, edges_to_vector
from repro.graph.validation import check_canonical_edges, normalize_edges

__all__ = [
    "DegreeOrder",
    "Graph",
    "barabasi_albert",
    "check_canonical_edges",
    "clique",
    "complete_bipartite",
    "complete_tripartite",
    "edges_to_file",
    "edges_to_vector",
    "erdos_renyi_gnm",
    "grid_graph",
    "normalize_edges",
    "path_graph",
    "planted_triangles",
    "sells_instance",
    "tripartite_random",
]
