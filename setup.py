"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in fully offline environments (pip falls back to
the legacy editable-install path, which needs no network access to fetch a
build backend).
"""

from setuptools import setup

setup()
