"""Tests for the workload generators (repro.graph.generators)."""

import math

import pytest

from repro.core.baselines.in_memory import count_triangles_in_memory
from repro.graph.generators import (
    barabasi_albert,
    clique,
    complete_bipartite,
    complete_tripartite,
    erdos_renyi_gnm,
    grid_graph,
    path_graph,
    planted_triangles,
    sells_instance,
    tripartite_random,
)


def triangles_of(graph) -> int:
    return count_triangles_in_memory(graph.degree_order().edges)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        graph = erdos_renyi_gnm(100, 300, seed=0)
        assert graph.num_edges == 300
        assert graph.num_vertices == 100

    def test_deterministic_given_seed(self):
        a = erdos_renyi_gnm(50, 120, seed=5)
        b = erdos_renyi_gnm(50, 120, seed=5)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_different_seeds_differ(self):
        a = erdos_renyi_gnm(50, 120, seed=5)
        b = erdos_renyi_gnm(50, 120, seed=6)
        assert set(map(frozenset, a.edges())) != set(map(frozenset, b.edges()))

    def test_dense_regime_uses_all_pairs(self):
        graph = erdos_renyi_gnm(10, 44, seed=1)
        assert graph.num_edges == 44

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(5, 11, seed=0)

    def test_no_vertices_no_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(1, 1, seed=0)


class TestStructuredGraphs:
    def test_clique_edge_and_triangle_counts(self):
        graph = clique(10)
        assert graph.num_edges == 45
        assert triangles_of(graph) == math.comb(10, 3)

    def test_complete_bipartite_is_triangle_free(self):
        graph = complete_bipartite(5, 7)
        assert graph.num_edges == 35
        assert triangles_of(graph) == 0

    def test_complete_tripartite_triangle_count(self):
        graph = complete_tripartite(3, 4, 5)
        assert graph.num_edges == 3 * 4 + 3 * 5 + 4 * 5
        assert triangles_of(graph) == 3 * 4 * 5

    def test_path_and_grid_are_triangle_free(self):
        assert triangles_of(path_graph(30)) == 0
        assert triangles_of(grid_graph(5, 6)) == 0
        assert path_graph(30).num_edges == 29
        assert grid_graph(5, 6).num_edges == 5 * 5 + 4 * 6

    def test_clique_of_sqrt_e_has_e_to_three_halves_triangles(self):
        """The lower-bound witness: a sqrt(E)-clique has Theta(E^{3/2}) triangles."""
        graph = clique(20)
        edges = graph.num_edges
        triangles = triangles_of(graph)
        assert triangles >= 0.2 * edges**1.5
        assert triangles <= edges**1.5


class TestBarabasiAlbert:
    def test_edge_count_and_skew(self):
        graph = barabasi_albert(200, 3, seed=0)
        assert graph.num_vertices == 200
        # m edges per new vertex beyond the initial clique
        expected = math.comb(4, 2) + (200 - 4) * 3
        assert graph.num_edges == expected
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0, seed=0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3, seed=0)


class TestPlantedTriangles:
    def test_exact_triangle_count(self):
        graph = planted_triangles(17, seed=0)
        assert triangles_of(graph) == 17
        assert graph.num_edges == 51

    def test_filler_edges_do_not_add_triangles(self):
        graph = planted_triangles(5, filler_bipartite_edges=100, seed=3)
        assert triangles_of(graph) == 5
        assert graph.num_edges >= 5 * 3 + 50

    def test_zero_triangles(self):
        graph = planted_triangles(0, filler_bipartite_edges=20, seed=1)
        assert triangles_of(graph) == 0


class TestSellsInstance:
    def test_tripartite_structure(self):
        instance = sells_instance(4, 5, 6, pair_probability=0.5, seed=2)
        graph = instance.graph
        assert graph.num_vertices == 15
        # no edges within a part
        for part in (instance.salespeople, instance.brands, instance.product_types):
            for a in part:
                for b in part:
                    if a != b:
                        assert not graph.has_edge(a, b)

    def test_edge_lists_match_graph(self):
        instance = sells_instance(3, 3, 3, pair_probability=0.7, seed=9)
        for s, b in instance.sells_pairs:
            assert instance.graph.has_edge(s, b)
        total_pairs = (
            len(instance.sells_pairs)
            + len(instance.brand_type_pairs)
            + len(instance.sells_types)
        )
        assert instance.graph.num_edges == total_pairs

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            sells_instance(2, 2, 2, pair_probability=1.5)

    def test_tripartite_random_wrapper(self):
        graph = tripartite_random(6, 0.4, seed=1)
        assert graph.num_vertices == 18
