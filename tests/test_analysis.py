"""Tests for the cost model, bounds and verification helpers (repro.analysis)."""

import math

import pytest

from repro.analysis.bounds import (
    bnlj_io,
    cache_aware_io,
    cache_oblivious_io,
    colour_count,
    dementiev_io,
    enumeration_lower_bound_for_clique,
    expected_colour_collisions,
    high_degree_threshold,
    hu_tao_chung_io,
    improvement_factor,
    lower_bound_io,
    scan_io,
    sort_io,
    work_upper_bound,
)
from repro.analysis.model import MachineParams
from repro.analysis.verification import (
    bounded_ratio_band,
    fit_power_law,
    geometric_mean,
    ratio_series,
)
from repro.exceptions import InvalidConfigurationError


class TestMachineParams:
    def test_valid_configuration(self):
        params = MachineParams(memory_words=512, block_words=16)
        assert params.blocks_in_memory == 32
        assert params.is_tall_cache

    def test_block_must_be_positive(self):
        with pytest.raises(InvalidConfigurationError):
            MachineParams(memory_words=16, block_words=0)

    def test_memory_must_hold_two_blocks(self):
        with pytest.raises(InvalidConfigurationError):
            MachineParams(memory_words=16, block_words=16)

    def test_tall_cache_detection(self):
        assert not MachineParams(memory_words=64, block_words=16).is_tall_cache

    def test_scaled_memory(self):
        params = MachineParams(memory_words=128, block_words=16)
        doubled = params.scaled_memory(2)
        assert doubled.memory_words == 256
        assert doubled.block_words == 16
        floor = params.scaled_memory(0.01)
        assert floor.memory_words == 32  # never below 2 blocks

    def test_default_is_valid_and_tall(self):
        assert MachineParams.default().is_tall_cache


class TestBounds:
    def setup_method(self):
        self.params = MachineParams(memory_words=256, block_words=16)

    def test_scan_io(self):
        assert scan_io(0, self.params) == 0
        assert scan_io(1, self.params) == 1
        assert scan_io(1600, self.params) == 100

    def test_sort_io_in_memory_regime(self):
        assert sort_io(100, self.params) == pytest.approx(100 / 16)

    def test_sort_io_grows_superlinearly_but_gently(self):
        small = sort_io(10_000, self.params)
        large = sort_io(20_000, self.params)
        assert 2.0 <= large / small <= 3.0

    def test_algorithm_ordering_in_the_large_e_regime(self):
        """For E >> M the paper's ordering must hold:
        cache-aware < Hu-Tao-Chung < BNLJ, and cache-aware < Dementiev."""
        edges = 100_000
        ours = cache_aware_io(edges, self.params)
        assert ours < hu_tao_chung_io(edges, self.params)
        assert hu_tao_chung_io(edges, self.params) < bnlj_io(edges, self.params)
        assert ours < dementiev_io(edges, self.params)

    def test_cache_oblivious_matches_cache_aware(self):
        assert cache_oblivious_io(5000, self.params) == cache_aware_io(5000, self.params)

    def test_improvement_factor_formula(self):
        edges = 64 * 256
        assert improvement_factor(edges, 256) == pytest.approx(
            min(math.sqrt(edges / 256), math.sqrt(256))
        )

    def test_lower_bound_monotone_in_t(self):
        values = [lower_bound_io(t, self.params) for t in (0, 10, 1000, 10_000)]
        assert values[0] == 0
        assert values == sorted(values)

    def test_lower_bound_for_clique(self):
        assert enumeration_lower_bound_for_clique(30, self.params) == pytest.approx(
            lower_bound_io(math.comb(30, 3), self.params)
        )

    def test_colour_count(self):
        assert colour_count(100, 200) == 1
        assert colour_count(256 * 16, 256) == 4
        assert colour_count(0, 256) == 1

    def test_high_degree_threshold(self):
        assert high_degree_threshold(1024, 256) == pytest.approx(512.0)

    def test_expected_colour_collisions_is_em(self):
        assert expected_colour_collisions(1000, 256) == 256_000

    def test_work_upper_bound(self):
        assert work_upper_bound(100) == pytest.approx(1000.0)


class TestVerification:
    def test_fit_power_law_recovers_exponent(self):
        xs = [2**k for k in range(5, 12)]
        ys = [3.7 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.scale == pytest.approx(3.7, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_power_law_with_noise(self):
        xs = [100, 200, 400, 800, 1600]
        ys = [x**2 * (1.0 + 0.05 * ((i % 2) * 2 - 1)) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 1.9 <= fit.exponent <= 2.1

    def test_fit_power_law_input_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1, 2])

    def test_ratio_series_and_band(self):
        ratios = ratio_series([10, 20, 40], [5, 8, 10])
        assert ratios == [2.0, 2.5, 4.0]
        assert bounded_ratio_band(ratios) == pytest.approx(2.0)

    def test_ratio_series_handles_zero_prediction(self):
        ratios = ratio_series([1.0], [0.0])
        assert math.isinf(ratios[0])
        assert math.isinf(bounded_ratio_band([]))

    def test_ratio_series_length_mismatch(self):
        with pytest.raises(ValueError):
            ratio_series([1, 2], [1])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([4, 4, 4]) == pytest.approx(4.0)


# ----------------------------------------------------------------------
# repro lint: the AST-based invariant analyzer
# ----------------------------------------------------------------------
import json
import textwrap
from pathlib import Path

from repro.analysis.lint import (
    Baseline,
    Finding,
    lint_source,
    render_human,
    render_json,
    rule_catalog,
    run_lint,
)
from repro.analysis.lint.runner import PARSE_ERROR_CODE
from repro.analysis.lint.suppressions import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default virtual path: on RPR102's counted paths, no rule exemptions.
CORE_PATH = "src/repro/core/module.py"


def lint_codes(source: str, path: str = CORE_PATH) -> list[str]:
    return [finding.code for finding in lint_source(textwrap.dedent(source), path)]


class TestRegistryDispatchRule:
    def test_branch_on_algorithm_name_is_flagged(self):
        assert "RPR101" in lint_codes(
            """
            def run(algorithm):
                if algorithm == "cache_aware":
                    return 1
                return 2
            """
        )

    def test_membership_test_on_algorithm_names_is_flagged(self):
        assert "RPR101" in lint_codes(
            """
            def run(algorithm):
                return 1 if algorithm in ("bnlj", "dementiev") else 2
            """
        )

    def test_dispatch_table_of_callables_is_flagged(self):
        assert "RPR101" in lint_codes(
            """
            TABLE = {"cache_aware": run_a, "bnlj": run_b}
            """
        )

    def test_config_map_of_values_is_not_dispatch(self):
        # Mapping algorithm names to specs/results is configuration, the
        # exact shape of the experiment sweep cells.
        assert lint_codes(
            """
            cells = {"cache_aware": make_spec(1), "bnlj": make_spec(2)}
            """
        ) == []

    def test_non_algorithm_string_comparison_is_fine(self):
        assert lint_codes(
            """
            def run(kind):
                if kind == "edges":
                    return 1
                return 2
            """
        ) == []

    def test_registry_module_is_exempt(self):
        source = """
        def dispatch(algorithm):
            if algorithm == "cache_aware":
                return 1
        """
        assert lint_codes(source, path="src/repro/core/registry.py") == []
        assert "RPR101" in lint_codes(source)

    def test_suppression_silences_the_finding(self):
        assert lint_codes(
            """
            def run(algorithm):
                # repro-lint: ignore[RPR101] -- test helper mirrors the registry
                if algorithm == "cache_aware":
                    return 1
            """
        ) == []


class TestDeterminismRule:
    def test_for_loop_over_set_is_flagged(self):
        assert "RPR102" in lint_codes(
            """
            def total(edges):
                seen = set(edges)
                acc = []
                for e in seen:
                    acc.append(e)
                return acc
            """
        )

    def test_sorted_iteration_is_fine(self):
        assert lint_codes(
            """
            def total(edges):
                seen = set(edges)
                acc = []
                for e in sorted(seen):
                    acc.append(e)
                return acc
            """
        ) == []

    def test_order_insensitive_consumer_is_fine(self):
        assert lint_codes(
            """
            def total(edges):
                seen = set(edges)
                return sum(e for e in seen)
            """
        ) == []

    def test_list_comprehension_over_set_is_flagged(self):
        assert "RPR102" in lint_codes(
            """
            def collect(edges):
                seen = set(edges)
                return [e for e in seen]
            """
        )

    def test_only_counted_paths_are_in_scope(self):
        source = """
        def collect(edges):
            seen = set(edges)
            return [e for e in seen]
        """
        assert lint_codes(source, path="src/repro/service/helper.py") == []

    def test_global_rng_is_flagged_seeded_rng_is_fine(self):
        assert "RPR102" in lint_codes(
            """
            import random

            def pick():
                return random.random()
            """
        )
        assert lint_codes(
            """
            import random

            def pick(seed):
                return random.Random(seed).random()
            """
        ) == []

    def test_wall_clock_is_flagged_perf_counter_is_fine(self):
        assert "RPR102" in lint_codes(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert lint_codes(
            """
            import time

            def stamp():
                return time.perf_counter()
            """
        ) == []

    def test_suppression_silences_the_finding(self):
        assert lint_codes(
            """
            def total(edges):
                seen = set(edges)
                acc = 0
                # repro-lint: ignore[RPR102] -- integer addition commutes
                for e in seen:
                    acc += e
                return acc
            """
        ) == []


class TestSpawnSafetyRule:
    def test_lambda_to_submit_is_flagged(self):
        assert "RPR103" in lint_codes(
            """
            def run(pool):
                return pool.submit(lambda: 1)
            """
        )

    def test_nested_function_to_submit_is_flagged(self):
        assert "RPR103" in lint_codes(
            """
            def run(pool):
                def work():
                    return 1
                return pool.submit(work)
            """
        )

    def test_bound_method_to_supervised_map_is_flagged(self):
        assert "RPR103" in lint_codes(
            """
            class Runner:
                def run(self, shards):
                    return supervised_map_unordered(self._work, shards)
            """
        )

    def test_module_level_callable_is_fine(self):
        assert lint_codes(
            """
            def work(shard):
                return shard

            def run(pool, shards):
                return [pool.submit(work, shard) for shard in shards]
            """
        ) == []

    def test_suppression_silences_the_finding(self):
        assert lint_codes(
            """
            class Runner:
                def run(self, pool):
                    # repro-lint: ignore[RPR103] -- thread pool, same process
                    return pool.submit(self._work)
            """
        ) == []


class TestResourceLifecycleRule:
    def test_bare_shared_memory_create_is_flagged(self):
        assert "RPR104" in lint_codes(
            """
            def make():
                shm = SharedMemory(create=True, size=64)
                shm.buf[:1] = b"x"
                return shm.name
            """
        )

    def test_attach_without_create_is_fine(self):
        assert lint_codes(
            """
            def attach(name):
                shm = SharedMemory(name=name)
                return shm
            """
        ) == []

    def test_with_block_is_fine(self):
        assert lint_codes(
            """
            def make():
                with closing(SharedMemory(create=True, size=64)) as shm:
                    return bytes(shm.buf[:1])
            """
        ) == []

    def test_acquire_then_try_is_fine(self):
        assert lint_codes(
            """
            def make():
                shm = SharedMemory(create=True, size=64)
                try:
                    shm.buf[:1] = b"x"
                finally:
                    shm.close()
            """
        ) == []

    def test_returned_acquisition_transfers_ownership(self):
        assert lint_codes(
            """
            def make():
                return SharedMemory(create=True, size=64)
            """
        ) == []

    def test_bare_lock_acquire_is_flagged(self):
        assert "RPR104" in lint_codes(
            """
            def hold(self):
                self._lock.acquire()
                self.value += 1
                self._lock.release()
            """
        )

    def test_tempfile_delete_false_is_flagged(self):
        assert "RPR104" in lint_codes(
            """
            def scratch():
                handle = NamedTemporaryFile(delete=False)
                handle.write(b"x")
            """
        )


class TestAtomicWriteRule:
    def test_json_dump_is_flagged(self):
        assert "RPR105" in lint_codes(
            """
            def save(path, data):
                with open(path) as fh:
                    json.dump(data, fh)
            """
        )

    def test_write_text_of_json_dumps_is_flagged(self):
        assert "RPR105" in lint_codes(
            """
            def save(path, data):
                path.write_text(json.dumps(data))
            """
        )

    def test_open_json_path_for_write_is_flagged(self):
        assert "RPR105" in lint_codes(
            """
            def save(data):
                with open("results/out.json", "w") as fh:
                    fh.write(str(data))
            """
        )

    def test_atomic_writer_and_plain_text_are_fine(self):
        assert lint_codes(
            """
            def save(path, data):
                atomic_write_json(path, data)
                path.write_text("plain text, not json")
            """
        ) == []

    def test_store_module_is_exempt(self):
        source = """
        def save(path, data):
            path.write_text(json.dumps(data))
        """
        assert lint_codes(source, path="src/repro/experiments/store.py") == []


class TestLockDisciplineRule:
    SEGMENTS_PATH = "src/repro/poolexec/segments.py"

    def test_unguarded_global_mutation_is_flagged(self):
        source = """
        _STATS = {"published_segments": 0}

        def bump():
            _STATS["published_segments"] += 1
        """
        codes = lint_codes(source, path=self.SEGMENTS_PATH)
        assert "RPR106" in codes

    def test_guarded_mutation_is_fine(self):
        source = """
        _STATS = {"published_segments": 0}

        def bump():
            with _LOCK:
                _STATS["published_segments"] += 1
        """
        assert lint_codes(source, path=self.SEGMENTS_PATH) == []

    def test_init_may_bind_guarded_attributes(self):
        source = """
        class SegmentHandle:
            def __init__(self):
                self._refs = 1

            def bump(self):
                self._refs += 1
        """
        findings = lint_source(textwrap.dedent(source), self.SEGMENTS_PATH)
        assert [finding.code for finding in findings] == ["RPR106"]
        assert findings[0].line == 7  # the bump, not the __init__

    def test_other_files_have_no_contract(self):
        source = """
        _STATS = {"x": 0}

        def bump():
            _STATS["x"] += 1
        """
        assert lint_codes(source, path="src/repro/graph/other.py") == []


class TestSuppressions:
    def test_own_line_comment_targets_next_code_line(self):
        source = textwrap.dedent(
            """
            # repro-lint: ignore[RPR101]
            value = 1
            """
        )
        (suppression,) = parse_suppressions(source)
        assert suppression.target_line == 3
        assert suppression.matches("RPR101")
        assert not suppression.matches("RPR102")

    def test_marker_inside_string_literal_is_not_a_suppression(self):
        source = 'text = "# repro-lint: ignore[RPR101]"\n'
        assert parse_suppressions(source) == []

    def test_wildcard_matches_every_code(self):
        source = "value = 1  # repro-lint: ignore[*]\n"
        (suppression,) = parse_suppressions(source)
        assert suppression.matches("RPR104")

    def test_unused_suppressions_are_reported(self, tmp_path):
        clean = tmp_path / "src" / "clean.py"
        clean.parent.mkdir()
        clean.write_text("value = 1  # repro-lint: ignore[RPR105]\n")
        report = run_lint(["src"], root=tmp_path)
        assert report.new == []
        assert len(report.unused_suppressions) == 1
        assert report.unused_suppressions[0].codes == ("RPR105",)


class TestBaseline:
    def finding(self, line=3, source="x = 1"):
        return Finding(
            file="src/a.py", line=line, column=0, code="RPR105", message="m", source=source
        )

    def test_round_trip_through_disk(self, tmp_path):
        baseline = Baseline.from_findings([self.finding()])
        path = tmp_path / ".repro-lint-baseline.json"
        baseline.write(path)
        loaded = Baseline.load(path)
        assert [entry.to_json() for entry in loaded.entries] == [
            entry.to_json() for entry in baseline.entries
        ]

    def test_missing_file_is_empty_and_wrong_schema_raises(self, tmp_path):
        assert len(Baseline.load(tmp_path / "missing.json")) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            Baseline.load(bad)

    def test_baselined_findings_do_not_fail_new_ones_do(self):
        baseline = Baseline.from_findings([self.finding()])
        match = baseline.match([self.finding(line=30)])  # moved: still matched
        assert match.new == [] and len(match.baselined) == 1 and match.stale == []
        match = baseline.match([self.finding(line=30), self.finding(line=40, source="y = 2")])
        assert len(match.new) == 1 and match.new[0].source == "y = 2"

    def test_fixed_finding_leaves_a_stale_entry(self):
        baseline = Baseline.from_findings([self.finding()])
        match = baseline.match([])
        assert match.stale == baseline.entries
        report = run_lint([], root=".", baseline=baseline)
        report.stale = match.stale
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1


class TestRunnerAndReporters:
    def test_unparseable_file_is_a_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = run_lint([bad.name], root=tmp_path)
        assert [finding.code for finding in report.new] == [PARSE_ERROR_CODE]

    def test_json_report_round_trips_findings(self, tmp_path):
        offender = tmp_path / "src" / "save.py"
        offender.parent.mkdir()
        offender.write_text("def save(path, data):\n    path.write_text(json.dumps(data))\n")
        report = run_lint(["src"], root=tmp_path)
        document = json.loads(json.dumps(render_json(report, strict=True)))
        assert document["schema"] == "repro-lint/v1"
        assert document["summary"]["new"] == 1
        assert document["summary"]["exit_code"] == 1
        restored = [Finding.from_json(entry) for entry in document["findings"]]
        assert restored == report.new
        expected = {"RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106"}
        assert {rule["code"] for rule in document["rules"]} == expected

    def test_human_report_names_the_finding(self, tmp_path):
        offender = tmp_path / "src" / "save.py"
        offender.parent.mkdir()
        offender.write_text("def save(path, data):\n    path.write_text(json.dumps(data))\n")
        report = run_lint(["src"], root=tmp_path)
        rendered = render_human(report)
        assert "src/save.py:2:" in rendered and "RPR105" in rendered

    def test_rule_catalog_is_complete(self):
        catalog = rule_catalog()
        expected = ["RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106"]
        assert [rule["code"] for rule in catalog] == expected
        assert all(rule["rationale"] for rule in catalog)


class TestSelfCheck:
    def test_repo_tree_is_clean_under_strict(self):
        """`repro lint --strict` over the actual tree: the gate CI enforces."""
        baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
        report = run_lint(["src", "benchmarks"], root=REPO_ROOT, baseline=baseline)
        assert report.files_checked > 100
        problems = [finding.render() for finding in report.new]
        assert problems == [], "\n".join(problems)
        assert report.exit_code(strict=True) == 0

    def test_cli_lint_subcommand_strict_exit_zero(self, capsys):
        from repro.cli import main

        status = main(["lint", "--strict", "--root", str(REPO_ROOT)])
        captured = capsys.readouterr()
        assert status == 0, captured.out
        assert "clean" in captured.out

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR101" in out and "RPR106" in out

    def test_benchmark_writers_are_atomic(self):
        """Regression: the report/trajectory writers must stay on atomic_write_json."""
        targets = ["benchmarks/load_test.py", "benchmarks/run_benchmarks.py"]
        report = run_lint(targets, root=REPO_ROOT)
        atomicity = [finding.render() for finding in report.new if finding.code == "RPR105"]
        assert atomicity == []
