"""Tests for the cost model, bounds and verification helpers (repro.analysis)."""

import math

import pytest

from repro.analysis.bounds import (
    bnlj_io,
    cache_aware_io,
    cache_oblivious_io,
    colour_count,
    dementiev_io,
    enumeration_lower_bound_for_clique,
    expected_colour_collisions,
    high_degree_threshold,
    hu_tao_chung_io,
    improvement_factor,
    lower_bound_io,
    scan_io,
    sort_io,
    work_upper_bound,
)
from repro.analysis.model import MachineParams
from repro.analysis.verification import (
    bounded_ratio_band,
    fit_power_law,
    geometric_mean,
    ratio_series,
)
from repro.exceptions import InvalidConfigurationError


class TestMachineParams:
    def test_valid_configuration(self):
        params = MachineParams(memory_words=512, block_words=16)
        assert params.blocks_in_memory == 32
        assert params.is_tall_cache

    def test_block_must_be_positive(self):
        with pytest.raises(InvalidConfigurationError):
            MachineParams(memory_words=16, block_words=0)

    def test_memory_must_hold_two_blocks(self):
        with pytest.raises(InvalidConfigurationError):
            MachineParams(memory_words=16, block_words=16)

    def test_tall_cache_detection(self):
        assert not MachineParams(memory_words=64, block_words=16).is_tall_cache

    def test_scaled_memory(self):
        params = MachineParams(memory_words=128, block_words=16)
        doubled = params.scaled_memory(2)
        assert doubled.memory_words == 256
        assert doubled.block_words == 16
        floor = params.scaled_memory(0.01)
        assert floor.memory_words == 32  # never below 2 blocks

    def test_default_is_valid_and_tall(self):
        assert MachineParams.default().is_tall_cache


class TestBounds:
    def setup_method(self):
        self.params = MachineParams(memory_words=256, block_words=16)

    def test_scan_io(self):
        assert scan_io(0, self.params) == 0
        assert scan_io(1, self.params) == 1
        assert scan_io(1600, self.params) == 100

    def test_sort_io_in_memory_regime(self):
        assert sort_io(100, self.params) == pytest.approx(100 / 16)

    def test_sort_io_grows_superlinearly_but_gently(self):
        small = sort_io(10_000, self.params)
        large = sort_io(20_000, self.params)
        assert 2.0 <= large / small <= 3.0

    def test_algorithm_ordering_in_the_large_e_regime(self):
        """For E >> M the paper's ordering must hold:
        cache-aware < Hu-Tao-Chung < BNLJ, and cache-aware < Dementiev."""
        edges = 100_000
        ours = cache_aware_io(edges, self.params)
        assert ours < hu_tao_chung_io(edges, self.params)
        assert hu_tao_chung_io(edges, self.params) < bnlj_io(edges, self.params)
        assert ours < dementiev_io(edges, self.params)

    def test_cache_oblivious_matches_cache_aware(self):
        assert cache_oblivious_io(5000, self.params) == cache_aware_io(5000, self.params)

    def test_improvement_factor_formula(self):
        edges = 64 * 256
        assert improvement_factor(edges, 256) == pytest.approx(
            min(math.sqrt(edges / 256), math.sqrt(256))
        )

    def test_lower_bound_monotone_in_t(self):
        values = [lower_bound_io(t, self.params) for t in (0, 10, 1000, 10_000)]
        assert values[0] == 0
        assert values == sorted(values)

    def test_lower_bound_for_clique(self):
        assert enumeration_lower_bound_for_clique(30, self.params) == pytest.approx(
            lower_bound_io(math.comb(30, 3), self.params)
        )

    def test_colour_count(self):
        assert colour_count(100, 200) == 1
        assert colour_count(256 * 16, 256) == 4
        assert colour_count(0, 256) == 1

    def test_high_degree_threshold(self):
        assert high_degree_threshold(1024, 256) == pytest.approx(512.0)

    def test_expected_colour_collisions_is_em(self):
        assert expected_colour_collisions(1000, 256) == 256_000

    def test_work_upper_bound(self):
        assert work_upper_bound(100) == pytest.approx(1000.0)


class TestVerification:
    def test_fit_power_law_recovers_exponent(self):
        xs = [2**k for k in range(5, 12)]
        ys = [3.7 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.scale == pytest.approx(3.7, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_power_law_with_noise(self):
        xs = [100, 200, 400, 800, 1600]
        ys = [x**2 * (1.0 + 0.05 * ((i % 2) * 2 - 1)) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 1.9 <= fit.exponent <= 2.1

    def test_fit_power_law_input_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1, 2])

    def test_ratio_series_and_band(self):
        ratios = ratio_series([10, 20, 40], [5, 8, 10])
        assert ratios == [2.0, 2.5, 4.0]
        assert bounded_ratio_band(ratios) == pytest.approx(2.0)

    def test_ratio_series_handles_zero_prediction(self):
        ratios = ratio_series([1.0], [0.0])
        assert math.isinf(ratios[0])
        assert math.isinf(bounded_ratio_band([]))

    def test_ratio_series_length_mismatch(self):
        with pytest.raises(ValueError):
            ratio_series([1, 2], [1])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([4, 4, 4]) == pytest.approx(4.0)
