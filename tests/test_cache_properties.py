"""Hypothesis property tests on the cache simulators.

These properties are what make the I/O measurements of the experiments
trustworthy: LRU's inclusion ("stack") property -- a larger cache never
misses more -- plus exactness of sequential-scan accounting and agreement
between the multilevel replay and dedicated single-level simulations.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extmem.cache import LRUBlockCache
from repro.extmem.multilevel import CacheLevel, MultiLevelBlockCache
from repro.extmem.stats import IOStats

#: A random access trace: (storage id, block index, is_write) triples.
traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=40),
        st.booleans(),
    ),
    max_size=300,
)


def replay(trace, capacity_blocks: int) -> IOStats:
    """Replay a trace against a fresh single-level LRU cache and flush it."""
    stats = IOStats()
    cache = LRUBlockCache(capacity_blocks, stats)
    for storage, block, write in trace:
        cache.access(storage, block, write=write)
    cache.flush()
    return stats


class TestLRUInclusionProperty:
    @settings(max_examples=60, deadline=None)
    @given(trace=traces, small=st.integers(1, 8), extra=st.integers(1, 16))
    def test_property_larger_cache_never_reads_more(self, trace, small, extra):
        """The stack property of LRU: misses are monotone in the capacity."""
        small_stats = replay(trace, small)
        large_stats = replay(trace, small + extra)
        assert large_stats.reads <= small_stats.reads

    @settings(max_examples=60, deadline=None)
    @given(trace=traces, small=st.integers(1, 8), extra=st.integers(1, 16))
    def test_property_larger_cache_never_transfers_more(self, trace, small, extra):
        """Including dirty write-backs (after a final flush), bigger is never worse."""
        small_stats = replay(trace, small)
        large_stats = replay(trace, small + extra)
        assert large_stats.total <= small_stats.total

    @settings(max_examples=60, deadline=None)
    @given(trace=traces, capacity=st.integers(1, 16))
    def test_property_reads_bounded_by_accesses_and_distinct_blocks(self, trace, capacity):
        stats = replay(trace, capacity)
        distinct = len({(s, b) for s, b, _ in trace})
        assert stats.reads >= distinct if capacity >= distinct and trace else True
        assert stats.reads <= len(trace)
        # Write-backs can never exceed the number of write accesses.
        assert stats.writes <= sum(1 for _, _, w in trace if w)

    @settings(max_examples=60, deadline=None)
    @given(trace=traces, capacity=st.integers(1, 12))
    def test_property_infinite_cache_reads_equal_distinct_blocks(self, trace, capacity):
        """With a cache larger than the footprint, only compulsory misses remain."""
        distinct = len({(s, b) for s, b, _ in trace})
        stats = replay(trace, max(1, distinct + capacity))
        assert stats.reads == distinct

    @settings(max_examples=40, deadline=None)
    @given(
        trace=traces,
        capacities=st.lists(st.integers(1, 20), min_size=2, max_size=4, unique=True),
    )
    def test_property_multilevel_replay_matches_single_level_runs(self, trace, capacities):
        """The multilevel simulator is exactly 'several single-level LRUs in parallel'."""
        stats = IOStats()
        levels = [CacheLevel(f"l{c}", c) for c in capacities]
        multi = MultiLevelBlockCache(levels, stats)
        for storage, block, write in trace:
            multi.access(storage, block, write=write)
        multi.flush()
        totals = multi.total_by_level()
        for capacity in capacities:
            assert totals[f"l{capacity}"] == replay(trace, capacity).total


class TestScanExactness:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(0, 500), block=st.sampled_from([1, 2, 4, 8, 16]), capacity=st.integers(1, 8))
    def test_property_sequential_scan_costs_exactly_ceil_n_over_b(self, n, block, capacity):
        """A single sequential pass misses exactly once per block, regardless of
        the cache size -- the invariant behind every scan bound in the paper."""
        stats = IOStats()
        cache = LRUBlockCache(capacity, stats)
        for index in range(n):
            cache.access(0, index // block)
        assert stats.reads == math.ceil(n / block) if n else stats.reads == 0
