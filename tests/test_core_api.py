"""Tests for the public API (repro.core.api)."""

import math

import pytest

import repro
from repro.analysis.model import MachineParams
from repro.core.api import ALGORITHMS, count_triangles, enumerate_triangles, list_algorithms
from repro.core.emit import CollectingSink
from repro.exceptions import AlgorithmError
from repro.graph.generators import clique, erdos_renyi_gnm, sells_instance
from repro.graph.graph import Graph

SMALL_PARAMS = MachineParams(memory_words=64, block_words=8)


class TestDispatch:
    def test_list_algorithms_matches_registry(self):
        assert set(list_algorithms()) == set(ALGORITHMS)
        assert "cache_aware" in list_algorithms()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(AlgorithmError):
            enumerate_triangles(clique(4), algorithm="quantum")

    def test_top_level_reexports(self):
        assert repro.enumerate_triangles is enumerate_triangles
        assert repro.count_triangles is count_triangles

    def test_unknown_algorithm_fails_before_canonicalisation(self, monkeypatch):
        def explode(self):
            raise AssertionError("canonicalised before algorithm validation")

        monkeypatch.setattr(Graph, "degree_order", explode)
        with pytest.raises(AlgorithmError):
            enumerate_triangles(clique(4), algorithm="quantum")
        with pytest.raises(AlgorithmError):
            count_triangles(clique(4), algorithm="quantum")

    def test_algorithms_view_comparisons(self):
        assert ALGORITHMS == dict(ALGORITHMS.items())
        assert (ALGORITHMS != None) is True  # noqa: E711 - exercising __ne__
        assert (ALGORITHMS == None) is False  # noqa: E711
        assert ALGORITHMS.get("cache_aware") is not None
        assert ALGORITHMS.get("quantum") is None

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm_agrees_with_oracle(self, algorithm):
        graph = erdos_renyi_gnm(40, 150, seed=3)
        expected = count_triangles(graph, algorithm="in_memory")
        result = enumerate_triangles(graph, algorithm=algorithm, params=SMALL_PARAMS, seed=1)
        assert result.triangle_count == expected
        assert result.triangles is not None
        assert len(result.triangles) == expected

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_clique_counts(self, algorithm):
        result = enumerate_triangles(clique(9), algorithm=algorithm, params=SMALL_PARAMS)
        assert result.triangle_count == math.comb(9, 3)


class TestInputsAndOutputs:
    def test_accepts_raw_edge_iterables(self):
        result = enumerate_triangles([(1, 2), (2, 3), (1, 3)], params=SMALL_PARAMS)
        assert result.triangle_count == 1
        assert set(result.triangles[0]) == {1, 2, 3}

    def test_accepts_string_labels(self):
        graph = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        result = enumerate_triangles(graph, params=SMALL_PARAMS)
        assert result.triangle_count == 1
        assert set(result.triangles[0]) == {"a", "b", "c"}

    def test_triangles_reported_in_original_labels(self):
        instance = sells_instance(3, 3, 3, pair_probability=0.8, seed=0)
        result = enumerate_triangles(instance.graph, algorithm="hu_tao_chung", params=SMALL_PARAMS)
        for triangle in result.triangles:
            labels = {str(v)[0] for v in triangle}
            assert labels == {"s", "b", "t"}

    def test_collect_false_omits_triangles(self):
        result = enumerate_triangles(clique(8), params=SMALL_PARAMS, collect=False)
        assert result.triangles is None
        assert result.triangle_count == math.comb(8, 3)

    def test_custom_sink_receives_translated_labels(self):
        sink = CollectingSink()
        graph = Graph(edges=[(10, 20), (20, 30), (10, 30)])
        result = enumerate_triangles(graph, params=SMALL_PARAMS, sink=sink)
        assert sink.as_set() == {(10, 20, 30)}
        assert result.triangle_count == 1

    def test_count_triangles_wrapper(self):
        assert count_triangles(clique(10), algorithm="dementiev", params=SMALL_PARAMS) == math.comb(10, 3)

    def test_result_metadata(self):
        graph = erdos_renyi_gnm(30, 90, seed=2)
        result = enumerate_triangles(graph, algorithm="cache_aware", params=SMALL_PARAMS, seed=4)
        assert result.algorithm == "cache_aware"
        assert result.params == SMALL_PARAMS
        assert result.num_vertices == 30
        assert result.num_edges == 90
        assert result.io.total == result.total_ios
        assert result.wall_time_seconds >= 0
        assert result.report is not None

    def test_in_memory_algorithm_charges_no_io(self):
        result = enumerate_triangles(clique(8), algorithm="in_memory")
        assert result.io.total == 0

    def test_external_algorithms_charge_io(self):
        result = enumerate_triangles(clique(12), algorithm="cache_aware", params=SMALL_PARAMS)
        assert result.io.total > 0
        assert result.disk_peak_words > 0

    def test_algorithm_options_forwarded(self):
        result = enumerate_triangles(
            clique(10), algorithm="cache_aware", params=SMALL_PARAMS, num_colors=2
        )
        assert result.report.num_colors == 2
        oblivious = enumerate_triangles(
            clique(10), algorithm="cache_oblivious", params=SMALL_PARAMS, max_depth=1
        )
        assert oblivious.report.max_depth == 1

    def test_default_params_used_when_omitted(self):
        result = enumerate_triangles(clique(6))
        assert result.params == MachineParams.default()

    def test_empty_graph(self):
        result = enumerate_triangles(Graph(), params=SMALL_PARAMS)
        assert result.triangle_count == 0
        assert result.triangles == []
