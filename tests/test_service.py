"""Tests for the triangle-analytics service (``repro serve`` / ``repro client``).

Most tests run an in-process :class:`TriangleService` on a free port and
talk to it over real HTTP through the bundled :class:`ServiceClient` --
the full wire path (routing, JSON envelopes, SSE framing, pagination
cursors) is exercised, not the manager in isolation.  The graceful
shutdown path runs the actual ``repro serve`` CLI in a subprocess and
SIGTERMs it, extending the poolexec teardown guarantees (no leaked
``/dev/shm`` segments, no resource_tracker complaints) to the server.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.parse

import pytest

from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.experiments.store import ResultStore
from repro.experiments.workloads import build_workload
from repro.graph.generators import erdos_renyi_gnm
from repro.service.client import ServiceClient
from repro.service.jobs import JobManager, normalize_graph_payload, normalize_query, query_spec
from repro.service.protocol import (
    ServiceError,
    as_int,
    decode_cursor,
    encode_cursor,
    parse_sse,
    sse_event,
)
from repro.service.server import TriangleService

WORKLOAD = ["sparse_random", {"num_edges": 240, "seed": 5}]


@pytest.fixture()
def service(tmp_path):
    """An in-process service on a free port, with a store under tmp_path."""
    svc = TriangleService(port=0, store=ResultStore(tmp_path / "results"))
    svc.start()
    try:
        yield svc
    finally:
        svc.close()


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout=30.0)


def register(client: ServiceClient) -> str:
    return client.register_graph(workload=WORKLOAD)["graph"]["id"]


# ----------------------------------------------------------------------
# protocol: cursors, SSE framing, validation helpers
# ----------------------------------------------------------------------
class TestProtocol:
    def test_cursor_round_trip(self):
        cursor = encode_cursor("a" * 16, 1234)
        assert decode_cursor(cursor, "a" * 16) == 1234

    def test_cursor_rejects_other_jobs(self):
        cursor = encode_cursor("a" * 16, 10)
        with pytest.raises(ServiceError) as excinfo:
            decode_cursor(cursor, "b" * 16)
        assert excinfo.value.code == "bad_cursor"

    @pytest.mark.parametrize("cursor", ["", "!!!", "bm90anNvbg", encode_cursor("a" * 16, 3)[:-4]])
    def test_malformed_cursors(self, cursor):
        with pytest.raises(ServiceError):
            decode_cursor(cursor, "a" * 16)

    def test_sse_round_trip(self):
        frames = sse_event("status", {"state": "running"}, event_id=0)
        frames += sse_event("done", {"triangles": 3}, event_id=1)
        parsed = list(parse_sse(frames.decode().splitlines(keepends=True)))
        assert parsed == [
            ("status", 0, {"state": "running"}),
            ("done", 1, {"triangles": 3}),
        ]

    def test_parse_sse_skips_heartbeats(self):
        lines = [": heartbeat\n", "\n", "event: done\n", "data: {}\n", "\n"]
        assert list(parse_sse(lines)) == [("done", None, {})]

    def test_as_int_accepts_strings_rejects_bools(self):
        assert as_int("42", "x") == 42
        assert as_int(None, "x", default=7) == 7
        assert as_int(99, "x", maximum=10) == 10
        with pytest.raises(ServiceError):
            as_int(True, "x")
        with pytest.raises(ServiceError):
            as_int("nope", "x")
        with pytest.raises(ServiceError):
            as_int(0, "x", minimum=1)


# ----------------------------------------------------------------------
# graph / query normalisation (no HTTP)
# ----------------------------------------------------------------------
class TestNormalisation:
    def test_graph_id_ignores_display_name(self):
        _, plain = normalize_graph_payload({"edges": [[1, 2]]})
        _, named = normalize_graph_payload({"edges": [[1, 2]], "name": "mine"})
        assert plain == named

    def test_graph_payload_shapes_rejected(self):
        for bad in (
            None,
            [],
            {},
            {"edges": [[1, 2]], "workload": WORKLOAD},
            {"edges": "nope"},
            {"edges": [[1]]},
            {"edges": [[1, 2.5]]},
            {"edges": [[1, True]]},
            {"workload": ["clique"]},
            {"workload": [3, {}]},
            {"edges": [[1, 2]], "name": 7},
        ):
            with pytest.raises(ServiceError):
                normalize_graph_payload(bad)

    def test_query_defaults_and_jobs_excluded_from_hash(self):
        query = normalize_query({})
        assert query["algorithm"] == "cache_aware" and query["mode"] == "count"
        serial = query_spec("g" * 16, normalize_query({"shards": 2, "jobs": 1}))
        parallel = query_spec("g" * 16, normalize_query({"shards": 2, "jobs": 4}))
        assert serial.spec_hash == parallel.spec_hash  # results are bit-identical

    def test_query_validation_errors(self):
        for bad in (
            {"algorithm": "no_such"},
            {"mode": "sing"},
            {"memory": 1, "block": 16},  # M < B fails MachineParams validation
            {"memory": "many"},
            {"surprise": 1},
            {"options": {"no_such_option": 3}},
            {"shards": 0},
        ):
            with pytest.raises(ServiceError):
                normalize_query(bad)


# ----------------------------------------------------------------------
# HTTP endpoints end to end
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_health_and_stats(self, client):
        assert client.health()["status"] == "ok"
        stats = client.stats()
        assert stats["manager"]["jobs"] == 0
        assert "segments" in stats

    def test_register_is_idempotent_and_content_addressed(self, client):
        first = client.register_graph(workload=WORKLOAD, name="one")
        second = client.register_graph(workload=WORKLOAD, name="two")
        assert first["created"] is True and second["created"] is False
        assert first["graph"]["id"] == second["graph"]["id"]
        workload = build_workload(WORKLOAD)
        assert first["graph"]["num_edges"] == workload.num_edges

    def test_register_edge_list_and_string_labels(self, client):
        response = client.register_graph(edges=[["a", "b"], ["b", "c"], ["a", "c"]])
        graph_id = response["graph"]["id"]
        job = client.count(graph_id)
        assert job["result"]["triangles"] == 1

    def test_register_rejects_self_loops(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.register_graph(edges=[[1, 1]])
        assert excinfo.value.status == 400

    def test_unknown_ids_are_404(self, client):
        for call in (
            lambda: client.graph("0" * 16),
            lambda: client.job("0" * 16),
            lambda: client.submit("0" * 16),
            lambda: client._request("GET", f"/v1/jobs/{'0' * 16}/triangles"),
        ):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_bad_json_body_is_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/v1/graphs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_count_matches_direct_engine_run(self, client):
        graph_id = register(client)
        job = client.count(graph_id, algorithm="cache_aware", memory=512, block=16, seed=0)
        result = job["result"]
        with TriangleEngine(build_workload(WORKLOAD).graph) as engine:
            direct = engine.run(
                "cache_aware", params=MachineParams(512, 16), seed=0, collect=False
            )
        assert result["triangles"] == direct.triangle_count
        assert result["total_ios"] == direct.io.total
        assert result["reads"] == direct.io.reads
        assert result["writes"] == direct.io.writes

    def test_repeat_query_is_memo_cache_hit(self, client):
        graph_id = register(client)
        first = client.count(graph_id)
        executed = client.stats()["manager"]["jobs_executed"]
        second = client.count(graph_id)
        stats = client.stats()["manager"]
        assert second["id"] == first["id"]
        assert second["cache_hit"] is True
        assert stats["jobs_executed"] == executed  # nothing re-ran
        assert stats["cache_hits_memo"] >= 1

    def test_store_answers_across_restart(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        with TriangleService(port=0, store=store) as svc:
            client = ServiceClient(svc.url)
            graph_id = register(client)
            first = client.count(graph_id)
        with TriangleService(port=0, store=store) as svc:
            client = ServiceClient(svc.url)
            graph_id = register(client)
            job = client.count(graph_id)
            stats = client.stats()["manager"]
        assert job["id"] == first["id"]
        assert job["source"] == "store"
        assert job["result"]["triangles"] == first["result"]["triangles"]
        assert stats["jobs_executed"] == 0 and stats["cache_hits_store"] == 1

    def test_sharded_count_on_persistent_pool(self, client):
        graph_id = register(client)
        serial = client.count(graph_id)
        sharded = client.count(graph_id, shards=2, jobs=2)
        assert sharded["id"] != serial["id"]  # shard count is result-affecting
        assert sharded["result"]["triangles"] == serial["result"]["triangles"]

    def test_drop_graph_releases_it(self, client):
        graph_id = register(client)
        client.drop_graph(graph_id)
        with pytest.raises(ServiceError) as excinfo:
            client.graph(graph_id)
        assert excinfo.value.status == 404

    def test_failed_job_is_reported_not_crashed(self, service, client, monkeypatch):
        graph_id = register(client)
        entry = service.manager._graphs[graph_id]

        def boom(*args, **kwargs):
            raise RuntimeError("simulated mid-run failure")

        monkeypatch.setattr(entry.engine, "run", boom)
        response = client.submit(graph_id)
        with pytest.raises(ServiceError) as excinfo:
            client.wait(response["job"]["id"], timeout=30.0)
        assert excinfo.value.code == "job_failed"
        assert "simulated mid-run failure" in str(excinfo.value)
        assert client.stats()["manager"]["jobs_failed"] == 1


class TestEventsAndPagination:
    def test_enum_events_stream_to_terminal(self, client):
        graph_id = register(client)
        job_id = client.submit(graph_id, mode="enum")["job"]["id"]
        events = list(client.events(job_id))
        names = [name for name, _ in events]
        assert names[0] == "status" and names[-1] == "done"
        assert "progress" in names
        done = dict(events)["done"]
        assert done["result"]["triangles"] == done["result"]["num_stored_triangles"]

    def test_events_replay_for_finished_job(self, client):
        graph_id = register(client)
        job_id = client.submit(graph_id, mode="enum")["job"]["id"]
        client.wait(job_id)
        first = list(client.events(job_id))
        second = list(client.events(job_id))  # replay is repeatable
        assert [name for name, _ in first] == [name for name, _ in second]

    def test_events_resume_after_last_event_id(self, client):
        graph_id = register(client)
        job_id = client.submit(graph_id, mode="enum")["job"]["id"]
        client.wait(job_id)
        full = list(client.events(job_id))
        resumed = list(client.events(job_id, after=len(full) - 2))
        assert [name for name, _ in resumed] == ["done"]

    def test_pagination_walks_all_triangles_once(self, client):
        graph_id = register(client)
        job_id = client.submit(graph_id, mode="enum")["job"]["id"]
        client.wait(job_id)
        paged = list(client.triangles(job_id, limit=7))
        with TriangleEngine(build_workload(WORKLOAD).graph) as engine:
            direct = engine.run("cache_aware", params=MachineParams(512, 16), seed=0, collect=True)
        assert paged == list(direct.triangles)

    def test_triangles_percent_encodes_cursor_params(self):
        """The pagination walker urlencodes its query string (no raw splicing).

        Regression: ``triangles`` used to hand-concatenate ``cursor=<raw>``,
        which breaks the moment a cursor carries ``=`` padding or any other
        reserved character.  Pin the exact encoded URLs against a canned
        transport.
        """
        stub = ServiceClient("http://example.invalid")
        paths: list[str] = []
        pages = [
            {"triangles": [[0, 1, 2]], "next_cursor": "abc+/=="},
            {"triangles": [[3, 4, 5]], "next_cursor": None},
        ]

        def canned(method, path, **_kwargs):
            paths.append(path)
            return pages[len(paths) - 1]

        stub._request = canned  # type: ignore[method-assign]
        assert list(stub.triangles("job-1", limit=7)) == [(0, 1, 2), (3, 4, 5)]
        assert paths[0] == "/v1/jobs/job-1/triangles?limit=7"
        assert paths[1] == "/v1/jobs/job-1/triangles?limit=7&cursor=abc%2B%2F%3D%3D"

    def test_padded_cursor_round_trips_through_client(self, client):
        """A cursor carrying explicit ``=`` padding survives the wire encoded.

        The server mints cursors with padding stripped, but ``decode_cursor``
        accepts the padded form too -- so a padded cursor is a valid client
        input and must arrive intact through the percent-encoded query.
        """
        graph_id = register(client)
        job_id = client.submit(graph_id, mode="enum")["job"]["id"]
        client.wait(job_id)
        expected = list(client.triangles(job_id))
        padded = None
        for offset in (1, 10, 100):  # json lengths differ, one needs padding
            cursor = encode_cursor(job_id, offset)
            if len(cursor) % 4:
                padded = cursor + "=" * (-len(cursor) % 4)
                break
        assert padded is not None and padded.endswith("=")
        query = urllib.parse.urlencode({"cursor": padded, "limit": 5})
        page = client._request("GET", f"/v1/jobs/{job_id}/triangles?{query}")
        assert [tuple(t) for t in page["triangles"]] == expected[offset : offset + 5]

    def test_pagination_cursor_errors(self, client):
        graph_id = register(client)
        job_id = client.submit(graph_id, mode="enum")["job"]["id"]
        client.wait(job_id)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", f"/v1/jobs/{job_id}/triangles?cursor=garbage")
        assert excinfo.value.code == "bad_cursor"
        foreign = encode_cursor("f" * 16, 0)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", f"/v1/jobs/{job_id}/triangles?cursor={foreign}")
        assert excinfo.value.code == "bad_cursor"

    def test_count_job_has_no_triangle_pages(self, client):
        graph_id = register(client)
        job_id = client.count(graph_id)["id"]
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", f"/v1/jobs/{job_id}/triangles")
        assert excinfo.value.code == "no_triangles"

    def test_jobs_index_merges_live_and_stored(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        with TriangleService(port=0, store=store) as svc:
            client = ServiceClient(svc.url)
            client.count(register(client))
        # Sidecar files must not pollute the stored listing.
        (tmp_path / "results" / "results.json").write_text('{"summary": true}')
        (tmp_path / "results" / "deadbeef.json.corrupt").write_text("{broken")
        (tmp_path / "results" / "feedface.failed").write_text("{}")
        with TriangleService(port=0, store=store) as svc:
            client = ServiceClient(svc.url)
            listing = client.jobs()
        assert listing["jobs"] == []
        assert [job["state"] for job in listing["stored"]] == ["done"]


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_eight_concurrent_clients_warm_cache(self, client):
        graph_id = register(client)
        client.count(graph_id)  # warm the one distinct query
        executed = client.stats()["manager"]["jobs_executed"]
        errors: list[str] = []

        def hammer(index: int) -> None:
            local = ServiceClient(client.base_url, timeout=30.0)
            for _ in range(5):
                try:
                    job = local.count(graph_id)
                    assert job["state"] == "done"
                except Exception as error:  # noqa: BLE001 - collected for the assert
                    errors.append(f"client {index}: {error}")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = client.stats()["manager"]
        assert not errors, errors
        assert stats["jobs_executed"] == executed  # every repeat was a cache hit
        assert stats["cache_hits_memo"] >= 40

    def test_concurrent_identical_submissions_collapse(self, service):
        manager = service.manager
        entry, _ = manager.register_graph({"workload": WORKLOAD})
        results: list[str] = []

        def submit() -> None:
            job, _created = manager.submit(entry.graph_id, {"mode": "count"})
            results.append(job.id)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == 1  # one job, many submitters
        assert manager.counters["jobs_submitted"] == 1


# ----------------------------------------------------------------------
# manager lifecycle (no HTTP)
# ----------------------------------------------------------------------
class TestManagerLifecycle:
    def test_close_is_idempotent_and_cancels_nothing_running(self):
        manager = JobManager(store=None)
        entry, _ = manager.register_graph({"workload": WORKLOAD})
        job, _ = manager.submit(entry.graph_id, {"mode": "count"})
        assert manager.drain(timeout=30.0)
        manager.close()
        manager.close()
        assert job.state == "done"

    def test_submit_after_close_is_refused(self):
        manager = JobManager(store=None)
        entry, _ = manager.register_graph({"workload": WORKLOAD})
        manager.close()
        with pytest.raises(ServiceError) as excinfo:
            manager.submit(entry.graph_id, {"mode": "count"})
        assert excinfo.value.status == 503


# ----------------------------------------------------------------------
# the CLI client against a live server
# ----------------------------------------------------------------------
class TestClientCli:
    def test_count_and_jobs_round_trip(self, service, tmp_path, capsys, monkeypatch):
        from repro.cli import main as cli_main
        from repro.graph.files import write_edge_list

        graph = erdos_renyi_gnm(40, 120, seed=2)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        monkeypatch.setenv("REPRO_SERVICE_URL", service.url)
        assert cli_main(["client", "count", str(path)]) == 0
        first = capsys.readouterr().out
        assert "registered graph" in first and "triangles:" in first
        assert cli_main(["client", "count", str(path)]) == 0
        second = capsys.readouterr().out
        assert "cache_hit=True" in second
        assert cli_main(["client", "jobs"]) == 0
        assert "done" in capsys.readouterr().out
        assert cli_main(["client", "stats"]) == 0
        assert '"cache_hits_memo": 1' in capsys.readouterr().out

    def test_enum_prints_triangles(self, service, tmp_path, capsys, monkeypatch):
        from repro.cli import main as cli_main

        monkeypatch.setenv("REPRO_SERVICE_URL", service.url)
        path = tmp_path / "triangle.txt"
        path.write_text("1 2\n2 3\n1 3\n")
        assert cli_main(["client", "enum", str(path)]) == 0
        out = capsys.readouterr().out
        assert "num_stored_triangles" not in out  # human format, not raw JSON
        assert len([line for line in out.splitlines() if line.count("\t") == 2]) == 1

    def test_unreachable_server_is_a_clean_error(self, tmp_path, monkeypatch):
        from repro.cli import main as cli_main

        monkeypatch.setenv("REPRO_SERVICE_URL", "http://127.0.0.1:9")  # discard port
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["client", "health"])
        assert "error:" in str(excinfo.value)


# ----------------------------------------------------------------------
# graceful shutdown of the real CLI server (extends poolexec teardown)
# ----------------------------------------------------------------------
def _wait_for_line(stream, needle: str, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = stream.readline()
        if needle in line:
            return line
        if line == "":
            time.sleep(0.05)
    raise TimeoutError(f"server never printed {needle!r}")


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform")
def test_serve_sigterm_drains_and_unlinks_segments(tmp_path):
    """``repro serve`` + SIGTERM: exit 0, drained jobs, no /dev/shm leaks.

    The sharded job makes the server publish shared-memory segments and
    boot persistent pool workers; after SIGTERM neither may survive --
    the same guarantee the poolexec teardown tests pin for direct engine
    use, extended to the server path.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    command = [sys.executable, "-m", "repro.cli", "serve", "--port", "0"]
    command += ["--results", str(tmp_path / "results")]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=os.getcwd(),
    )
    try:
        banner = _wait_for_line(process.stdout, "listening on")
        url = banner.split()[2]
        client = ServiceClient(url, timeout=30.0)
        graph_id = client.register_graph(workload=WORKLOAD)["graph"]["id"]
        job = client.count(graph_id, shards=2, jobs=2)
        assert job["state"] == "done"
        segments = glob.glob(f"/dev/shm/repro-seg-{process.pid}-*")
        assert segments, "sharded run should have published a segment"
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, f"stdout: {stdout}\nstderr: {stderr}"
    assert "shutdown complete" in stdout
    assert "resource_tracker" not in stderr, stderr
    leaked = glob.glob(f"/dev/shm/repro-seg-{process.pid}-*")
    assert not leaked, f"leaked segments: {leaked}"


def test_store_persists_across_serve_restarts_via_cli(tmp_path):
    """Artifacts written by one server process answer the next (the
    restart path of the ISSUE's 'near-free cache hits' requirement),
    exercised through the real CLI server rather than in-process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )

    def run_once() -> dict:
        command = [sys.executable, "-m", "repro.cli", "serve", "--port", "0"]
        command += ["--results", str(tmp_path / "results")]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=os.getcwd(),
        )
        try:
            banner = _wait_for_line(process.stdout, "listening on")
            client = ServiceClient(banner.split()[2], timeout=30.0)
            graph_id = client.register_graph(workload=WORKLOAD)["graph"]["id"]
            job = client.count(graph_id)
            stats = client.stats()["manager"]
            process.send_signal(signal.SIGTERM)
            process.communicate(timeout=60)
            return {"job": job, "stats": stats}
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    first = run_once()
    second = run_once()
    assert first["job"]["result"]["triangles"] == second["job"]["result"]["triangles"]
    assert first["stats"]["jobs_executed"] == 1
    assert second["stats"]["jobs_executed"] == 0
    assert second["job"]["source"] == "store"
    artifact_path = tmp_path / "results" / f"{first['job']['id']}.json"
    assert json.loads(artifact_path.read_text())["schema"] == "repro-run/v1"
