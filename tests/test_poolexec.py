"""Tests for the persistent execution tier (:mod:`repro.poolexec`).

Three layers, matching the module's promises:

Segments
    Publish/attach round trips, content-hash deduplication, refcounted
    unlink, slice bounds -- and the lifecycle guarantees: a sharded engine
    owns segments only until ``close()``, repeated runs on the same graph
    re-transfer nothing, and a full engine run in a subprocess leaves no
    ``/dev/shm`` entry and no resource-tracker complaint behind.

Pools
    Provider idempotence (the historical double-``terminate()`` between
    the orchestrator and the supervisor is now a structural no-op), warm
    worker reuse across back-to-back ``engine.run`` calls and orchestrator
    runs, and pool selection plumbing (engine knob, runner knob).

Faults
    A fault-injected run on the persistent pool stays bit-identical to
    serial: crashed workers are replaced by the pool, replacements
    re-attach the warm segments, and the retried shards fold to the same
    counters.
"""

import glob
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
from contextlib import contextmanager

import pytest

from repro.analysis.model import MachineParams
from repro.core.engine import TriangleEngine
from repro.exceptions import OptionsError
from repro.experiments.parallel import ParallelRunner
from repro.experiments.specs import make_spec, workload_ref
from repro.graph.generators import erdos_renyi_gnm
from repro.poolexec import (
    EphemeralPoolProvider,
    PersistentPoolProvider,
    SegmentSlice,
    SharedWorkerPool,
    provider_for,
    publish_edges,
    resolve_edges,
    segment_stats,
)
from repro.poolexec.pool import shared_pool
from repro.poolexec.segments import SEGMENT_PREFIX, attached_edges
from repro.resilience import FaultPlan, FaultRule

PARAMS = MachineParams(memory_words=64, block_words=8)


@contextmanager
def watchdog(seconds: float):
    """Fail the test (instead of hanging the suite) after ``seconds``."""

    def alarm(signum, frame):
        raise TimeoutError(f"watchdog: test exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def owned_segment_files() -> list[str]:
    """``/dev/shm`` entries published by *this* process (by name prefix)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux host
        pytest.skip("no /dev/shm on this platform")
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-{os.getpid()}-*"))


def make_engine(seed: int = 3) -> TriangleEngine:
    graph = erdos_renyi_gnm(60, 240, seed=seed)
    return TriangleEngine(graph, params=PARAMS)


# ----------------------------------------------------------------------
# segments: publish / attach / dedup / unlink
# ----------------------------------------------------------------------
class TestSegments:
    def test_publish_empty_returns_none(self):
        assert publish_edges([]) is None

    def test_round_trip_through_shared_memory(self):
        edges = [(1, 2), (2, 3), (1, 3), (7, 9)]
        handle = publish_edges(edges)
        try:
            assert handle.length == len(edges)
            assert attached_edges(handle.ref()) == edges
            assert resolve_edges(handle.slice(1, 3)) == edges[1:3]
            assert resolve_edges(edges) == edges  # inline fallback
        finally:
            handle.close()
        assert handle.closed

    def test_slice_bounds_are_checked(self):
        handle = publish_edges([(1, 2), (3, 4)])
        try:
            piece = handle.slice(0, 2)
            assert isinstance(piece, SegmentSlice) and len(piece) == 2
            with pytest.raises(ValueError, match="out of bounds"):
                handle.slice(0, 3)
            with pytest.raises(ValueError, match="out of bounds"):
                handle.slice(-1, 1)
        finally:
            handle.close()

    def test_publish_is_deduplicated_by_content(self):
        edges = [(5, 6), (6, 7), (5, 7)]
        before = segment_stats()
        first = publish_edges(edges)
        second = publish_edges(list(edges))  # same content, fresh object
        try:
            assert second is first
            after = segment_stats()
            assert after["published_segments"] == before["published_segments"] + 1
            assert after["deduplicated_publishes"] == before["deduplicated_publishes"] + 1
        finally:
            # Two holders: the first close must keep the segment alive.
            first.close()
            assert not first.closed
            second.close()
        assert first.closed

    def test_unlink_removes_the_shm_file(self):
        files_before = set(owned_segment_files())
        handle = publish_edges([(11, 12), (12, 13)])
        created = set(owned_segment_files()) - files_before
        assert len(created) == 1
        handle.close()
        assert set(owned_segment_files()) == files_before

    def test_close_is_idempotent_past_zero(self):
        handle = publish_edges([(21, 22)])
        handle.close()
        handle.close()  # double teardown: no-op, no error
        assert handle.closed


# ----------------------------------------------------------------------
# pool providers: idempotent teardown (the double-terminate regression)
# ----------------------------------------------------------------------
class TestPoolProviders:
    def test_provider_for_selects_the_strategy(self):
        assert isinstance(provider_for("spawn", 2), EphemeralPoolProvider)
        assert isinstance(provider_for("persistent", 2), PersistentPoolProvider)
        with pytest.raises(ValueError, match="unknown pool strategy"):
            provider_for("bogus", 2)

    def test_ephemeral_release_is_idempotent(self):
        provider = EphemeralPoolProvider(2)
        with watchdog(120):
            lease = provider.lease()
            assert lease.pool is not None and not lease.persistent
            provider.release(lease)
            assert lease.pool is None and lease.started_queue is None
            # The historical crash: supervisor ``finally`` + an outer
            # teardown both releasing the same reaped pool.
            provider.release(lease)
            provider.invalidate(lease)

    def test_persistent_release_keeps_the_pool_warm(self):
        shared = SharedWorkerPool()
        provider = PersistentPoolProvider(2, shared=shared)
        try:
            with watchdog(120):
                lease = provider.lease()
                assert lease.persistent
                pids = shared.worker_pids()
                assert len(pids) == 2
                provider.release(lease)
                provider.release(lease)  # idempotent
                # Released, not terminated: same workers on the next lease.
                assert shared.worker_pids() == pids
                # Invalidating an already-released lease must NOT rebuild.
                provider.invalidate(lease)
                assert shared.worker_pids() == pids
        finally:
            shared.shutdown()
            shared.shutdown()  # idempotent
        assert shared.size == 0 and shared.worker_pids() == []

    def test_persistent_invalidate_rebuilds_the_pool(self):
        shared = SharedWorkerPool()
        provider = PersistentPoolProvider(2, shared=shared)
        try:
            with watchdog(120):
                lease = provider.lease()
                pids = shared.worker_pids()
                provider.invalidate(lease)
                assert lease.pool is None
                rebuilt = shared.worker_pids()
                assert rebuilt and set(rebuilt).isdisjoint(pids)
                # A second invalidate of the same lease is a no-op.
                provider.invalidate(lease)
                assert shared.worker_pids() == rebuilt
        finally:
            shared.shutdown()

    def test_runner_rejects_unknown_pool(self):
        with pytest.raises(ValueError, match="pool must be one of"):
            ParallelRunner(pool="bogus")

    def test_engine_rejects_unknown_pool(self):
        engine = make_engine()
        with pytest.raises(OptionsError, match="pool"):
            engine.run("cache_aware", seed=1, shards=2, jobs=2, pool="bogus")
        with pytest.raises(OptionsError, match="requires shards"):
            engine.run("cache_aware", seed=1, pool="persistent")


# ----------------------------------------------------------------------
# engine lifecycle: segment ownership, zero re-transfer, warm workers
# ----------------------------------------------------------------------
class TestEngineLifecycle:
    def test_engine_close_unlinks_its_segments(self):
        files_before = set(owned_segment_files())
        engine = make_engine()
        with watchdog(300):
            result = engine.run("cache_aware", seed=1, shards=2, jobs=2)
        assert result.triangle_count > 0
        # The run published at least one segment, retained by the engine.
        assert set(owned_segment_files()) - files_before
        engine.close()
        assert set(owned_segment_files()) == files_before
        engine.close()  # idempotent

    def test_engine_context_manager_closes(self):
        files_before = set(owned_segment_files())
        with watchdog(300):
            with make_engine() as engine:
                engine.run("cache_aware", seed=1, shards=2, jobs=2)
        assert set(owned_segment_files()) == files_before

    def test_repeated_runs_transfer_nothing(self):
        engine = make_engine()
        try:
            with watchdog(300):
                first = engine.run("cache_aware", seed=1, shards=2, jobs=2, collect=True)
                stats_after_first = segment_stats()
                second = engine.run("cache_aware", seed=1, shards=2, jobs=2, collect=True)
            stats_after_second = segment_stats()
            # Bit-identical results...
            assert second.io == first.io
            assert second.triangles == first.triangles
            # ...and zero new bytes published: the second run deduplicated
            # against the segment the engine kept warm.
            assert (
                stats_after_second["published_segments"]
                == stats_after_first["published_segments"]
            )
            assert (
                stats_after_second["published_bytes"]
                == stats_after_first["published_bytes"]
            )
            assert (
                stats_after_second["deduplicated_publishes"]
                > stats_after_first["deduplicated_publishes"]
            )
        finally:
            engine.close()

    def test_persistent_pool_reuses_workers_across_runs(self):
        engine = make_engine()
        try:
            with watchdog(300):
                engine.run("cache_aware", seed=1, shards=2, jobs=2, pool="persistent")
                pids_first = shared_pool().worker_pids()
                engine.run("cache_aware", seed=2, shards=2, jobs=2, pool="persistent")
                pids_second = shared_pool().worker_pids()
            assert pids_first and pids_first == pids_second
        finally:
            engine.close()

    def test_spawn_pool_leaves_no_children_behind(self):
        engine = make_engine()
        persistent = set(shared_pool().worker_pids())
        try:
            with watchdog(300):
                result = engine.run("cache_aware", seed=1, shards=2, jobs=2, pool="spawn")
            assert result.triangle_count > 0
            leftover = {
                child.pid for child in multiprocessing.active_children()
            } - persistent
            assert not leftover, f"spawn pool leaked workers: {leftover}"
        finally:
            engine.close()

    def test_orchestrator_runs_share_the_persistent_pool(self):
        specs = [
            make_spec(
                "edges",
                workload=workload_ref("sparse_random", num_edges=60),
                algorithm="hu_tao_chung",
                memory=64,
                block=8,
                seed=seed,
            )
            for seed in (1, 2, 3)
        ]
        runner = ParallelRunner(store=None, jobs=2, pool="persistent")
        with watchdog(300):
            first = runner.run(specs)
            pids_first = shared_pool().worker_pids()
            second = runner.run(specs)
            pids_second = shared_pool().worker_pids()
        assert len(first) == len(second) == len(specs)
        assert not first.errors and not second.errors
        assert pids_first and pids_first == pids_second


# ----------------------------------------------------------------------
# faults: crashed persistent workers, bit-identical recovery
# ----------------------------------------------------------------------
class TestPersistentPoolUnderFaults:
    def test_faulted_persistent_run_matches_serial_bit_for_bit(self):
        files_before = set(owned_segment_files())
        engine = make_engine()
        try:
            serial = engine.run(
                "cache_aware", seed=1, options={"num_colors": 2}, collect=True
            )
            plan = FaultPlan(
                rules=(FaultRule(kind="crash", match="shard:*", rate=0.5, seed=3),)
            )
            faulted = [k for k in (f"shard:{i}" for i in range(8)) if plan.rule_for(k, 0)]
            assert len(faulted) >= 2, "plan must actually crash some shards"
            with watchdog(300), plan.activate():
                sharded = engine.run(
                    "cache_aware", seed=1, shards=2, jobs=2, collect=True,
                    pool="persistent",
                )
            assert sharded.io == serial.io
            assert sharded.phases == serial.phases
            assert sharded.triangles == serial.triangles
            # The crashes did not tear down the warm pool or its segments.
            assert shared_pool().size >= 2
            assert set(owned_segment_files()) - files_before
        finally:
            engine.close()
        assert (
            set(owned_segment_files()) == files_before
        ), "worker crashes must not leak coordinator segments"


# ----------------------------------------------------------------------
# whole-process hygiene: no /dev/shm leak, no resource_tracker noise
# ----------------------------------------------------------------------
SUBPROCESS_SCRIPT = textwrap.dedent(
    """
    import glob, os, sys

    from repro.analysis.model import MachineParams
    from repro.core.engine import TriangleEngine
    from repro.graph.generators import erdos_renyi_gnm
    from repro.poolexec.segments import SEGMENT_PREFIX

    graph = erdos_renyi_gnm(60, 240, seed=3)
    engine = TriangleEngine(graph, params=MachineParams(memory_words=64, block_words=8))
    first = engine.run("cache_aware", seed=1, shards=2, jobs=2)
    second = engine.run("cache_aware", seed=1, shards=2, jobs=2)
    assert first.io == second.io
    engine.close()
    pattern = f"/dev/shm/{SEGMENT_PREFIX}-{os.getpid()}-*"
    leaked = glob.glob(pattern)
    assert not leaked, f"leaked segments: {leaked}"
    print("CLEAN-EXIT")
    """
)


def test_full_run_leaves_no_shm_entry_and_no_tracker_warning():
    """End to end, warnings-as-errors: a sharded run in a fresh interpreter
    exits clean -- no leaked ``/dev/shm`` entry, no resource_tracker
    complaint about shared_memory objects on stderr."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux host
        pytest.skip("no /dev/shm on this platform")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    completed = subprocess.run(
        [sys.executable, "-W", "error::UserWarning", "-c", SUBPROCESS_SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=os.getcwd(),
    )
    assert completed.returncode == 0, (
        f"subprocess failed\nstdout: {completed.stdout}\nstderr: {completed.stderr}"
    )
    assert "CLEAN-EXIT" in completed.stdout
    assert "resource_tracker" not in completed.stderr, completed.stderr
    assert "leaked" not in completed.stderr, completed.stderr
