"""Tests for the deterministic cache-aware algorithm (repro.core.derandomized)."""

import math

import pytest

from repro.analysis.bounds import expected_colour_collisions
from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.derandomized import (
    _round_up_to_power_of_two,
    deterministic_cache_aware,
    greedy_coloring,
)
from repro.core.emit import DedupCheckingSink
from repro.extmem.machine import Machine
from repro.extmem.stats import IOStats
from repro.graph.generators import clique, erdos_renyi_gnm
from repro.hashing.coloring import TableColoring


def make_machine(memory=128, block=8):
    return Machine(MachineParams(memory, block), IOStats())


class TestHelpers:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (17, 32), (64, 64)],
    )
    def test_round_up_to_power_of_two(self, value, expected):
        assert _round_up_to_power_of_two(value) == expected


class TestGreedyColoring:
    def test_produces_requested_number_of_colors(self):
        edges = erdos_renyi_gnm(60, 250, seed=0).degree_order().edges
        machine = make_machine()
        edge_file = machine.file_from_records(edges)
        coloring, levels, family_size = greedy_coloring(
            machine, edge_file, num_colors=4, total_edges=len(edges), max_family_size=64
        )
        assert isinstance(coloring, TableColoring)
        assert coloring.num_colors == 4
        assert len(levels) == 2
        assert family_size == 64
        assert all(0 <= coloring.color_of(v) < 4 for v in range(60))

    def test_single_color_needs_no_levels(self):
        machine = make_machine()
        edge_file = machine.file_from_records([(0, 1)])
        coloring, levels, family_size = greedy_coloring(
            machine, edge_file, num_colors=1, total_edges=1
        )
        assert coloring.num_colors == 1
        assert levels == []
        assert family_size == 0

    def test_deterministic_across_runs(self):
        edges = erdos_renyi_gnm(50, 200, seed=1).degree_order().edges
        colorings = []
        for _ in range(2):
            machine = make_machine()
            edge_file = machine.file_from_records(edges)
            coloring, _, _ = greedy_coloring(
                machine, edge_file, num_colors=4, total_edges=len(edges), max_family_size=64
            )
            colorings.append([coloring.color_of(v) for v in range(50)])
        assert colorings[0] == colorings[1]

    def test_balance_guarantee_x_xi_below_e_times_em(self):
        """The greedy construction should certify X_xi <= e * E * M (Section 4)."""
        edges = erdos_renyi_gnm(100, 1200, seed=2).degree_order().edges
        machine = make_machine(memory=64, block=8)
        edge_file = machine.file_from_records(edges)
        num_colors = 4
        coloring, levels, _ = greedy_coloring(
            machine, edge_file, num_colors=num_colors, total_edges=len(edges), max_family_size=64
        )
        class_sizes: dict[tuple[int, int], int] = {}
        for u, v in edges:
            pair = (coloring.color_of(u), coloring.color_of(v))
            class_sizes[pair] = class_sizes.get(pair, 0) + 1
        x_xi = sum(size * (size - 1) // 2 for size in class_sizes.values())
        bound = math.e * expected_colour_collisions(len(edges), machine.memory_size)
        assert x_xi <= bound
        assert all(level.certified for level in levels)


class TestFullAlgorithm:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_oracle_on_random_graphs(self, seed):
        graph = erdos_renyi_gnm(60, 260, seed=seed)
        edges = graph.degree_order().edges
        machine = make_machine(memory=64)
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        report = deterministic_cache_aware(machine, edge_file, sink, max_family_size=64)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert report.triangles_emitted == sink.count

    def test_matches_oracle_on_clique(self):
        edges = clique(14).degree_order().edges
        machine = make_machine(memory=64)
        edge_file = machine.file_from_records(edges)
        sink = DedupCheckingSink()
        deterministic_cache_aware(machine, edge_file, sink, max_family_size=64)
        assert sink.count == math.comb(14, 3)

    def test_is_fully_deterministic(self):
        """Two runs on the same input must produce identical I/O counts and
        identical reports -- there is no randomness left."""
        edges = erdos_renyi_gnm(70, 400, seed=5).degree_order().edges
        outcomes = []
        for _ in range(2):
            machine = make_machine(memory=64)
            edge_file = machine.file_from_records(edges)
            sink = DedupCheckingSink()
            report = deterministic_cache_aware(machine, edge_file, sink, max_family_size=64)
            outcomes.append((machine.stats.total, sink.as_set(), report.partition_sizes))
        assert outcomes[0] == outcomes[1]

    def test_number_of_colors_is_a_power_of_two(self):
        edges = erdos_renyi_gnm(80, 600, seed=3).degree_order().edges
        machine = make_machine(memory=64)
        edge_file = machine.file_from_records(edges)
        report = deterministic_cache_aware(
            machine, edge_file, DedupCheckingSink(), max_family_size=64
        )
        assert report.num_colors & (report.num_colors - 1) == 0

    def test_empty_graph(self):
        machine = make_machine()
        report = deterministic_cache_aware(machine, machine.empty_file(), DedupCheckingSink())
        assert report.triangles_emitted == 0

    def test_report_certification_flag(self):
        edges = erdos_renyi_gnm(60, 300, seed=9).degree_order().edges
        machine = make_machine(memory=64)
        edge_file = machine.file_from_records(edges)
        report = deterministic_cache_aware(
            machine, edge_file, DedupCheckingSink(), max_family_size=64
        )
        assert isinstance(report.certified, bool)
        assert report.family_size in (0, 64)
