"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.graph.files import read_edge_list, write_edge_list
from repro.graph.generators import clique, erdos_renyi_gnm


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(erdos_renyi_gnm(30, 90, seed=1), path)
    return path


@pytest.fixture
def clique_file(tmp_path):
    path = tmp_path / "clique.txt"
    write_edge_list(clique(8), path)
    return path


class TestEnumerate:
    def test_basic_run(self, graph_file, capsys):
        assert main(["enumerate", str(graph_file), "--memory", "64", "--block", "8"]) == 0
        output = capsys.readouterr().out
        assert "triangles:" in output
        assert "simulated I/Os:" in output

    def test_counts_match_known_graph(self, clique_file, capsys):
        main(["enumerate", str(clique_file)])
        output = capsys.readouterr().out
        assert "triangles: 56" in output

    def test_print_triangles(self, clique_file, capsys):
        main(["enumerate", str(clique_file), "--print-triangles", "--algorithm", "in_memory"])
        output = capsys.readouterr().out
        # 56 triangles printed as tab-separated lines
        triangle_lines = [line for line in output.splitlines() if line.count("\t") == 2]
        assert len(triangle_lines) == 56

    def test_algorithm_choice_validated(self, graph_file):
        with pytest.raises(SystemExit):
            main(["enumerate", str(graph_file), "--algorithm", "nope"])


class TestCompare:
    def test_compare_prints_one_row_per_algorithm(self, graph_file, capsys):
        assert (
            main(
                [
                    "compare",
                    str(graph_file),
                    "--algorithms",
                    "cache_aware",
                    "hu_tao_chung",
                    "--memory",
                    "64",
                    "--block",
                    "8",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "cache_aware" in output
        assert "hu_tao_chung" in output
        # Both algorithms must agree on the triangle count.
        counts = {
            line.split()[1]
            for line in output.splitlines()
            if line.startswith(("cache_aware", "hu_tao_chung"))
        }
        assert len(counts) == 1

    def _compare_table(self, graph_file, capsys, *extra):
        arguments = [
            "compare",
            str(graph_file),
            "--algorithms",
            "cache_aware",
            "hu_tao_chung",
            "--memory",
            "64",
            "--block",
            "8",
            *extra,
        ]
        assert main(arguments) == 0
        return capsys.readouterr().out

    def test_sharded_compare_matches_serial_sharding(self, graph_file, capsys):
        # The CI parity leg in miniature: same shard count, different jobs,
        # identical table (jobs only moves *where* shards execute).
        sharded = self._compare_table(graph_file, capsys, "--shards", "2")
        serial = self._compare_table(graph_file, capsys, "--shards", "2", "--jobs", "1")
        assert sharded == serial
        assert "sharding: 2 colours" in sharded

    def test_jobs_alone_implies_matching_shard_count(self, graph_file, capsys):
        # ``--jobs N`` without ``--shards`` shards by N colours; jobs=1
        # keeps the historical serial table (no sharding banner).
        pooled = self._compare_table(graph_file, capsys, "--jobs", "2")
        assert "sharding: 2 colours" in pooled
        inline = self._compare_table(graph_file, capsys, "--shards", "2")
        assert pooled == inline
        serial = self._compare_table(graph_file, capsys)
        assert "sharding" not in serial


class TestCompareCanonicalisesOnce:
    def test_compare_uses_one_engine(self, graph_file, capsys, monkeypatch):
        from repro.graph.graph import Graph

        calls = {"count": 0}
        original = Graph.degree_order

        def counting(self):
            calls["count"] += 1
            return original(self)

        monkeypatch.setattr(Graph, "degree_order", counting)
        assert (
            main(
                [
                    "compare",
                    str(graph_file),
                    "--algorithms",
                    "cache_aware",
                    "hu_tao_chung",
                    "dementiev",
                    "--memory",
                    "64",
                    "--block",
                    "8",
                ]
            )
            == 0
        )
        assert calls["count"] == 1
        capsys.readouterr()


class TestAlgorithms:
    def test_renders_every_registered_algorithm(self, capsys):
        from repro.core.registry import algorithm_names

        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        for name in algorithm_names():
            assert name in output
        assert "oblivious-vm" in output
        assert "I/O bound" in output

    def test_verbose_prints_options_schema(self, capsys):
        assert main(["algorithms", "--verbose"]) == 0
        output = capsys.readouterr().out
        assert "num_colors" in output
        assert "max_family_size" in output
        assert "max_depth" in output
        assert "options: (none)" in output  # the option-less baselines

    def test_help_mentions_registry_command(self, capsys):
        with pytest.raises(SystemExit):
            main(["enumerate", "--help"])
        output = " ".join(capsys.readouterr().out.split())
        assert "repro algorithms" in output


class TestStats:
    def test_stats_output(self, clique_file, capsys):
        assert main(["stats", str(clique_file), "--top", "3", "--memory", "64", "--block", "8"]) == 0
        output = capsys.readouterr().out
        assert "transitivity: 1.0000" in output
        assert "average clustering coefficient: 1.0000" in output
        assert "triangles: 56" in output


class TestGenerate:
    @pytest.mark.parametrize(
        "arguments,expected_edges",
        [
            (["generate", "clique", "--size", "10"], 45),
            (["generate", "tripartite", "--size", "4"], 48),
            (["generate", "random", "--vertices", "50", "--edges", "120"], 120),
        ],
    )
    def test_generate_kinds(self, tmp_path, capsys, arguments, expected_edges):
        output_path = tmp_path / "out.txt"
        assert main(arguments + ["--output", str(output_path)]) == 0
        graph = read_edge_list(output_path)
        assert graph.num_edges == expected_edges

    def test_generate_planted_then_enumerate_round_trip(self, tmp_path, capsys):
        output_path = tmp_path / "planted.txt"
        main(["generate", "planted", "--triangles", "9", "--edges", "40", "--output", str(output_path)])
        capsys.readouterr()
        main(["enumerate", str(output_path), "--memory", "64", "--block", "8"])
        output = capsys.readouterr().out
        assert "triangles: 9" in output


class TestExperimentsPassthrough:
    def test_experiments_subcommand(self, capsys, tmp_path):
        output_file = tmp_path / "exp.txt"
        assert main(["experiments", "--quick", "--output", str(output_file), "EXP4"]) == 0
        assert "EXP4" in capsys.readouterr().out
        assert output_file.exists()


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out
