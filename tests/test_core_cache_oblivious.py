"""Tests for the cache-oblivious algorithm (repro.core.cache_oblivious)."""

import math

import pytest

from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import triangles_in_memory
from repro.core.cache_oblivious import cache_oblivious_randomized
from repro.core.emit import DedupCheckingSink
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.generators import (
    barabasi_albert,
    clique,
    complete_tripartite,
    erdos_renyi_gnm,
    planted_triangles,
)
from repro.graph.io import edges_to_vector


def run(edges, memory=64, block=8, seed=0, **kwargs):
    vm = ObliviousVM(MachineParams(memory, block), IOStats())
    vector = edges_to_vector(vm, edges)
    sink = DedupCheckingSink()
    report = cache_oblivious_randomized(vm, vector, sink, seed=seed, **kwargs)
    return vm, sink, report


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_oracle_on_random_graphs(self, seed):
        edges = erdos_renyi_gnm(40, 150, seed=seed).degree_order().edges
        _, sink, report = run(edges, seed=seed)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert report.triangles_emitted == sink.count

    def test_matches_oracle_on_clique(self):
        edges = clique(12).degree_order().edges
        _, sink, _ = run(edges, seed=1)
        assert sink.count == math.comb(12, 3)

    def test_matches_oracle_on_tripartite(self):
        edges = complete_tripartite(4, 4, 4).degree_order().edges
        _, sink, _ = run(edges, seed=2)
        assert sink.count == 64

    def test_matches_oracle_on_skewed_graph(self):
        edges = barabasi_albert(80, 3, seed=1).degree_order().edges
        _, sink, report = run(edges, seed=3)
        assert sink.as_set() == set(triangles_in_memory(edges))
        # Skewed graphs should exercise the local high-degree removal.
        assert report.local_high_degree_processed > 0

    def test_triangle_free_graph(self):
        edges = planted_triangles(0, filler_bipartite_edges=60, seed=0).degree_order().edges
        _, sink, report = run(edges, seed=0)
        assert report.triangles_emitted == 0

    def test_planted_triangles_exact_count(self):
        edges = planted_triangles(9, filler_bipartite_edges=40, seed=2).degree_order().edges
        _, sink, _ = run(edges, seed=5)
        assert sink.count == 9

    def test_empty_graph(self):
        _, sink, report = run([], seed=0)
        assert report.triangles_emitted == 0
        assert report.num_edges == 0

    def test_small_graph_below_base_case(self):
        edges = [(0, 1), (0, 2), (1, 2)]
        _, sink, _ = run(edges, seed=0)
        assert sink.as_set() == {(0, 1, 2)}

    def test_different_seeds_same_triangles(self):
        edges = erdos_renyi_gnm(35, 130, seed=7).degree_order().edges
        expected = set(triangles_in_memory(edges))
        for seed in range(4):
            _, sink, _ = run(edges, seed=seed)
            assert sink.as_set() == expected

    def test_input_vector_unchanged(self):
        edges = clique(8).degree_order().edges
        vm = ObliviousVM(MachineParams(64, 8), IOStats())
        vector = edges_to_vector(vm, edges)
        cache_oblivious_randomized(vm, vector, DedupCheckingSink(), seed=0)
        assert vector.to_list() == edges

    def test_forced_shallow_depth_still_correct(self):
        """Stopping the recursion early just makes the base case do more work;
        correctness must not depend on the depth limit."""
        edges = erdos_renyi_gnm(30, 120, seed=3).degree_order().edges
        _, sink, report = run(edges, seed=1, max_depth=1)
        assert sink.as_set() == set(triangles_in_memory(edges))
        assert report.max_depth == 1

    def test_depth_zero_is_pure_base_case(self):
        edges = clique(9).degree_order().edges
        _, sink, report = run(edges, seed=1, max_depth=0)
        assert sink.count == math.comb(9, 3)
        assert report.base_case_invocations == 1


class TestRecursionBehaviour:
    def test_subproblem_sizes_decay_geometrically(self):
        """Lemma 4: expected subproblem size at level i is E / 4^i."""
        edges = erdos_renyi_gnm(200, 1200, seed=0).degree_order().edges
        _, _, report = run(edges, memory=128, block=8, seed=4)
        level_zero = report.subproblems_at(0)
        assert level_zero == [len(edges)]
        level_one = report.subproblems_at(1)
        assert level_one, "the recursion should have produced children"
        mean_child = sum(level_one) / len(level_one)
        # At the first level the parent colours coincide, so an edge is
        # compatible with a child with probability 1/2; the expected child
        # size is therefore about E/2 and must certainly not exceed it by
        # much.  Deeper levels then decay towards the 1/4 rate of Lemma 4.
        assert mean_child <= 0.65 * len(edges)
        level_two = report.subproblems_at(2)
        if level_two:
            assert sum(level_two) / len(level_two) <= 0.6 * mean_child

    def test_report_counts_subproblems(self):
        edges = erdos_renyi_gnm(60, 240, seed=2).degree_order().edges
        _, _, report = run(edges, seed=0)
        total_subproblems = sum(len(sizes) for sizes in report.subproblem_sizes.values())
        assert total_subproblems >= 9  # root plus at least one full level

    def test_size_recorder_callback(self):
        edges = clique(10).degree_order().edges
        recorded = []
        vm = ObliviousVM(MachineParams(64, 8), IOStats())
        vector = edges_to_vector(vm, edges)
        cache_oblivious_randomized(
            vm, vector, DedupCheckingSink(), seed=0, size_recorder=lambda d, s: recorded.append((d, s))
        )
        assert recorded[0] == (0, len(edges))


class TestObliviousness:
    def test_more_memory_means_fewer_ios_same_answer(self):
        """The algorithm never sees M; only the cache simulator changes."""
        edges = erdos_renyi_gnm(60, 300, seed=5).degree_order().edges
        expected = set(triangles_in_memory(edges))
        totals = {}
        for memory in (32, 128, 512):
            vm = ObliviousVM(MachineParams(memory, 8), IOStats())
            vector = edges_to_vector(vm, edges)
            sink = DedupCheckingSink()
            cache_oblivious_randomized(vm, vector, sink, seed=9)
            assert sink.as_set() == expected
            totals[memory] = vm.stats.total
        assert totals[128] < totals[32]
        assert totals[512] <= totals[128]

    def test_io_sequence_independent_of_cache_parameters(self):
        """Cache-obliviousness, operationally: the *operation count* (element
        accesses) must be identical whatever (M, B) the simulator uses."""
        edges = erdos_renyi_gnm(40, 160, seed=6).degree_order().edges
        operations = []
        for memory, block in ((32, 4), (256, 16), (1024, 32)):
            vm = ObliviousVM(MachineParams(memory, block), IOStats())
            vector = edges_to_vector(vm, edges)
            cache_oblivious_randomized(vm, vector, DedupCheckingSink(), seed=11)
            operations.append(vm.stats.operations)
        assert operations[0] == operations[1] == operations[2]

    def test_disk_space_stays_linear_in_e(self):
        """Theorem 1 claims O(E) words on disk (expected)."""
        edges = erdos_renyi_gnm(150, 900, seed=1).degree_order().edges
        vm = ObliviousVM(MachineParams(128, 8), IOStats())
        vector = edges_to_vector(vm, edges)
        cache_oblivious_randomized(vm, vector, DedupCheckingSink(), seed=2)
        assert vm.peak_words <= 20 * len(edges)
