"""Unit tests for I/O accounting (repro.extmem.stats)."""

import pytest

from repro.extmem.stats import IOSnapshot, IOStats


class TestCharging:
    def test_new_stats_start_at_zero(self):
        stats = IOStats()
        assert stats.reads == 0
        assert stats.writes == 0
        assert stats.operations == 0
        assert stats.total == 0

    def test_charge_read_accumulates(self):
        stats = IOStats()
        stats.charge_read()
        stats.charge_read(4)
        assert stats.reads == 5
        assert stats.total == 5

    def test_charge_write_accumulates(self):
        stats = IOStats()
        stats.charge_write(3)
        stats.charge_write()
        assert stats.writes == 4

    def test_charge_operations_does_not_affect_io(self):
        stats = IOStats()
        stats.charge_operations(100)
        assert stats.operations == 100
        assert stats.total == 0

    @pytest.mark.parametrize("method", ["charge_read", "charge_write", "charge_operations"])
    def test_negative_charges_rejected(self, method):
        stats = IOStats()
        with pytest.raises(ValueError):
            getattr(stats, method)(-1)


class TestSnapshots:
    def test_snapshot_is_immutable_copy(self):
        stats = IOStats()
        stats.charge_read(2)
        snap = stats.snapshot()
        stats.charge_read(10)
        assert snap.reads == 2
        assert stats.reads == 12

    def test_since_reports_delta(self):
        stats = IOStats()
        stats.charge_read(2)
        stats.charge_write(1)
        snap = stats.snapshot()
        stats.charge_read(3)
        stats.charge_write(4)
        delta = stats.since(snap)
        assert delta.reads == 3
        assert delta.writes == 4
        assert delta.total == 7

    def test_snapshot_subtraction(self):
        a = IOSnapshot(reads=10, writes=5, operations=100)
        b = IOSnapshot(reads=4, writes=2, operations=60)
        delta = a - b
        assert (delta.reads, delta.writes, delta.operations) == (6, 3, 40)

    def test_snapshot_total(self):
        snap = IOSnapshot(reads=7, writes=3, operations=0)
        assert snap.total == 10


class TestPhasesAndMerge:
    def test_record_phase_accumulates_by_name(self):
        stats = IOStats()
        first = stats.snapshot()
        stats.charge_read(5)
        stats.record_phase("scan", first)
        second = stats.snapshot()
        stats.charge_write(2)
        stats.record_phase("scan", second)
        assert stats.phases == {"scan": 7}

    def test_reset_clears_everything(self):
        stats = IOStats()
        stats.charge_read(1)
        stats.charge_write(1)
        stats.charge_operations(1)
        stats.record_phase("p", IOSnapshot(0, 0, 0))
        stats.reset()
        assert stats.total == 0
        assert stats.operations == 0
        assert stats.phases == {}

    def test_charge_phase_adds_pre_measured_totals(self):
        # The sharded-merge path: fold another machine's already-measured
        # phase totals without bracketing a local region with snapshots.
        stats = IOStats()
        first = stats.snapshot()
        stats.charge_read(5)
        stats.record_phase("triples", first)
        stats.charge_phase("triples", 7)
        stats.charge_phase("partition", 2)
        assert stats.phases == {"triples": 12, "partition": 2}
        with pytest.raises(ValueError):
            stats.charge_phase("triples", -1)

    def test_merge_folds_counters_and_phases(self):
        a = IOStats()
        a.charge_read(1)
        a.record_phase("x", IOSnapshot(0, 0, 0))
        b = IOStats()
        b.charge_read(2)
        b.charge_write(3)
        b.record_phase("x", IOSnapshot(0, 0, 0))
        a.merge(b)
        assert a.reads == 3
        assert a.writes == 3
        assert a.phases["x"] == 1 + 5
