"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis.model import MachineParams
from repro.core.baselines.in_memory import triangles_in_memory
from repro.extmem.machine import Machine
from repro.extmem.oblivious import ObliviousVM
from repro.extmem.stats import IOStats
from repro.graph.graph import Graph


@pytest.fixture
def small_params() -> MachineParams:
    """A deliberately tiny machine so that even small inputs exceed memory."""
    return MachineParams(memory_words=64, block_words=8)


@pytest.fixture
def default_params() -> MachineParams:
    """The default machine used by most integration-style tests."""
    return MachineParams(memory_words=256, block_words=16)


@pytest.fixture
def machine_factory():
    """Factory building a fresh machine (and stats) for a given parameter set."""

    def build(params: MachineParams | None = None) -> Machine:
        return Machine(params if params is not None else MachineParams(64, 8), IOStats())

    return build


@pytest.fixture
def vm_factory():
    """Factory building a fresh cache-oblivious VM for a given parameter set."""

    def build(params: MachineParams | None = None) -> ObliviousVM:
        return ObliviousVM(params if params is not None else MachineParams(64, 8), IOStats())

    return build


def canonical_edges(graph: Graph) -> list[tuple[int, int]]:
    """Canonical ranked edge list of a graph (shared helper, not a fixture)."""
    return graph.degree_order().edges


def oracle_triangles(edges) -> set[tuple[int, int, int]]:
    """Ground-truth triangle set of a canonical edge list."""
    return set(triangles_in_memory(edges))
